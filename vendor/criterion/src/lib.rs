//! Vendored, API-compatible subset of the `criterion` benchmarking crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the surface the SEC workspace's `benches/` use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! [`measurement::WallTime`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up
//! briefly, then timed over a fixed wall-clock window, and the mean
//! time per iteration (plus derived throughput, when set) is printed.
//! There is no statistical analysis, outlier rejection, or HTML report.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement kinds (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement marker.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration (binary units).
    Bytes(u64),
    /// Bytes processed per iteration (decimal units).
    BytesDecimal(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered via `Display`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter (grouped under the group name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts both
/// string literals and explicit ids.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~20ms have passed to fill caches and tables.
        let warmup_end = Instant::now() + Duration::from_millis(20);
        while Instant::now() < warmup_end {
            std::hint::black_box(routine());
        }
        // Measurement window.
        let window = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= window {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let ns = bencher.ns_per_iter();
    let time = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / ns * 1_000.0)
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  ({:.2} MB/s)", n as f64 / ns * 1_000.0)
        }
        None => String::new(),
    };
    println!("{id:<60} {time:>12}/iter{rate}  [{} iters]", bencher.iters);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<M> {
    name: String,
    throughput: Option<Throughput>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<M> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&id, &bencher, self.throughput);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&id, &bencher, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<measurement::WallTime> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            _measurement: PhantomData,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id().id;
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&id, &bencher, None);
        self
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
