//! Vendored, deterministic, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! exactly the property-testing surface the SEC workspace uses: the
//! [`proptest!`] macro, the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, [`Just`], integer-range and tuple strategies,
//! `prop::collection::{vec, btree_set}`, [`prop_oneof!`], the
//! `prop_assert*` / [`prop_assume!`] macros and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics are simplified relative to real proptest:
//!
//! * inputs are drawn from a deterministic SplitMix64 stream seeded from
//!   the test's module path and name, so runs are reproducible;
//! * failing inputs are **not shrunk** — the failing case's values are
//!   reported as generated;
//! * `prop_assume!` skips the case instead of drawing a replacement.
//!
//! See `vendor/README.md` for the swap-back-to-crates.io story.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Everything the `use proptest::prelude::*;` idiom is expected to bring
/// into scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Namespace mirror of the `prop` module re-exported by the prelude
/// (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic SplitMix64 stream used to drive every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Creates the generator for case number `case` of the test named
    /// `name` (an FNV-1a hash of the name keeps distinct tests on distinct
    /// streams).
    pub fn from_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot draw from an empty range");
        self.next_u64() % n
    }

    /// Uniform draw from `[lo, hi]` (inclusive).
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty size range");
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

/// A generator of random values — the (greatly simplified) analogue of
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second-stage strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes this strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy trait object.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives — the engine of
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from at least one alternative.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies (`prop::collection::vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// An inclusive range of collection sizes, mirroring
    /// `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.in_range(self.min, self.max)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with a random length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>` with a random target size in `size`.
    ///
    /// The element domain must be at least as large as the requested size
    /// or generation panics after exhausting its insertion attempts.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Output of [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target {
                out.insert(self.element.generate(rng));
                attempts += 1;
                assert!(
                    attempts < 100 * target + 1000,
                    "btree_set strategy could not reach size {target}; element domain too small?"
                );
            }
            out
        }
    }
}

/// Defines property tests. Subset of real proptest's grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(a in strategy_a(), b in 0u64..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                let strategies = ($(&($strat),)+);
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::from_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    #[allow(non_snake_case)]
                    let ($($arg,)+) = strategies;
                    $(let $arg = $crate::Strategy::generate($arg, &mut rng);)+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(message) = outcome {
                        ::core::panic!(
                            "proptest property {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            message
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                ::std::format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// `assert_ne!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
/// (Real proptest redraws; this subset just passes the case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}
