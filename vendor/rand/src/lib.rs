//! Vendored, deterministic, API-compatible subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! exactly the surface the SEC workspace uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] backed by a SplitMix64 core. See `vendor/README.md`.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore`
/// (stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator with a SplitMix64 core — the stand-in for
    /// `rand::rngs::StdRng`. Not cryptographically secure; fine for the
    /// simulations and tests in this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}
