//! Vendored, API-compatible subset of the `bytes` crate.
//!
//! Provides an owned, cheaply clonable byte container with the handful of
//! methods the SEC workspace uses. Unlike the real crate this is a plain
//! `Arc<[u8]>` wrapper — no buffer pooling or split operations — but the
//! construction/accessor surface matches, so swapping the real crate back
//! in requires no source changes. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// An immutable, cheaply clonable contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a static/borrowed slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data: data.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Self::copy_from_slice(data.as_bytes())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        *self.data == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        *self.data == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.data == other[..]
    }
}
