//! Fig. 2 — probability of losing the 1-sparse difference object `z_2` as a
//! function of the node-failure probability `p`, for systematic and
//! non-systematic SEC with a (6, 3) code.
//!
//! Run with `cargo run -p sec-bench --bin fig2`.

use sec_analysis::resilience::{
    paper_eq18_non_systematic_loss, paper_eq20_systematic_loss, prob_lose_sparse_exact,
};
use sec_bench::{fmt_float, probability_grid, ExperimentArgs, ResultTable};
use sec_erasure::{GeneratorForm, SecCode};
use sec_gf::Gf1024;

fn main() -> std::io::Result<()> {
    let args = ExperimentArgs::from_env();
    let systematic: SecCode<Gf1024> =
        SecCode::cauchy(6, 3, GeneratorForm::Systematic).expect("(6,3) fits in GF(1024)");
    let non_systematic: SecCode<Gf1024> =
        SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).expect("(6,3) fits in GF(1024)");

    let mut table = ResultTable::new(
        "Fig. 2: probability of losing z2 (1-sparse), (6,3) code",
        &[
            "p",
            "systematic_sec",
            "non_systematic_sec",
            "paper_eq20_systematic",
            "paper_eq18_non_systematic",
        ],
    );
    for p in probability_grid() {
        let sys = prob_lose_sparse_exact(&systematic, 1, p);
        let ns = prob_lose_sparse_exact(&non_systematic, 1, p);
        table.push_row(vec![
            fmt_float(p, 2),
            fmt_float(sys, 10),
            fmt_float(ns, 10),
            fmt_float(paper_eq20_systematic_loss(p), 10),
            fmt_float(paper_eq18_non_systematic_loss(p), 10),
        ]);
    }
    table.emit(&args)?;
    println!(
        "\nExpected shape: systematic SEC loses z2 with higher probability than non-systematic SEC\n\
         (12 extra unrecoverable 4-failure patterns), matching eqs. (18) and (20)."
    );
    Ok(())
}
