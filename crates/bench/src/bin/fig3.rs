//! Fig. 3 — joint availability of both versions (`x_1`, `x_2`) in "nines"
//! format for colocated vs dispersed placement, for the three schemes
//! (non-systematic SEC, systematic SEC, non-differential), (6, 3) code.
//!
//! Run with `cargo run -p sec-bench --bin fig3`.

use sec_analysis::availability::{availability_sweep, nines};
use sec_bench::{fmt_float, probability_grid, ExperimentArgs, ResultTable};
use sec_erasure::{GeneratorForm, SecCode};
use sec_gf::Gf1024;

fn main() -> std::io::Result<()> {
    let args = ExperimentArgs::from_env();
    let non_systematic: SecCode<Gf1024> =
        SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).expect("(6,3) fits in GF(1024)");
    let systematic: SecCode<Gf1024> =
        SecCode::cauchy(6, 3, GeneratorForm::Systematic).expect("(6,3) fits in GF(1024)");
    // Two versions, second delta 1-sparse (the §IV-C example).
    let sparsity = [1usize];

    let sweep = availability_sweep(&non_systematic, &systematic, &sparsity, &probability_grid());
    let mut table = ResultTable::new(
        "Fig. 3: availability of both versions in nines (-log10(1 - P))",
        &[
            "p",
            "colocated_all_schemes",
            "dispersed_non_systematic",
            "dispersed_systematic",
            "dispersed_non_differential",
        ],
    );
    for point in &sweep {
        table.push_row(vec![
            fmt_float(point.p, 2),
            fmt_float(nines(point.colocated), 4),
            fmt_float(nines(point.dispersed_non_systematic), 4),
            fmt_float(nines(point.dispersed_systematic), 4),
            fmt_float(nines(point.dispersed_non_differential), 4),
        ]);
    }
    table.emit(&args)?;
    println!(
        "\nExpected shape: colocated placement dominates every dispersed variant; among dispersed,\n\
         non-systematic SEC >= systematic SEC >= non-differential (paper Fig. 3)."
    );
    Ok(())
}
