//! Fig. 9 and the §III-D example — number of I/O reads to retrieve the l-th
//! version and the first l versions, for the (20, 10) code with sparsity
//! profile {3, 8, 3, 6}, under Basic SEC, Optimized SEC and the
//! non-differential baseline. The numbers are produced twice: analytically
//! from the I/O model and operationally by building and reading an actual
//! archive, to show they coincide.
//!
//! Run with `cargo run -p sec-bench --bin fig9`.

use sec_bench::{ExperimentArgs, ResultTable};
use sec_erasure::{CodeParams, GeneratorForm};
use sec_gf::{GaloisField, Gf1024};
use sec_versioning::{ArchiveConfig, EncodingStrategy, IoModel, VersionedArchive};

const PROFILE: [usize; 4] = [3, 8, 3, 6];

/// Builds a concrete version sequence realizing the paper's sparsity profile.
fn paper_versions() -> Vec<Vec<Gf1024>> {
    let k = 10usize;
    let base: Vec<Gf1024> = (0..k as u64).map(|v| Gf1024::from_u64(v + 1)).collect();
    let mut versions = vec![base];
    let edits: [&[usize]; 4] = [
        &[0, 1, 2],
        &[0, 1, 2, 3, 4, 5, 6, 7],
        &[3, 4, 5],
        &[0, 2, 4, 6, 8, 9],
    ];
    for positions in edits {
        let mut next = versions.last().expect("non-empty").clone();
        for &p in positions {
            next[p] += Gf1024::from_u64(700);
        }
        versions.push(next);
    }
    versions
}

fn operational_reads(strategy: EncodingStrategy, l: usize, prefix: bool) -> usize {
    let config = ArchiveConfig::new(20, 10, GeneratorForm::NonSystematic, strategy)
        .expect("valid (20,10) configuration");
    let mut archive: VersionedArchive<Gf1024> =
        VersionedArchive::new(config).expect("GF(1024) is large enough for (20,10)");
    archive.append_all(&paper_versions()).expect("append succeeds");
    assert_eq!(archive.sparsity_profile(), PROFILE);
    if prefix {
        archive.retrieve_prefix(l).expect("retrieval succeeds").io_reads
    } else {
        archive.retrieve_version(l).expect("retrieval succeeds").io_reads
    }
}

fn main() -> std::io::Result<()> {
    let args = ExperimentArgs::from_env();
    let model = IoModel::new(
        CodeParams::new(20, 10).expect("valid (20,10)"),
        GeneratorForm::NonSystematic,
    );

    let mut table = ResultTable::new(
        "Fig. 9 / §III-D: I/O reads, (20,10) code, sparsity profile {3,8,3,6}",
        &[
            "l",
            "basic_lth_version",
            "optimized_lth_version",
            "non_diff_lth_version",
            "basic_first_l",
            "non_diff_first_l",
            "basic_lth_measured",
            "optimized_lth_measured",
        ],
    );
    for l in 1..=5usize {
        table.push_row(vec![
            l.to_string(),
            model
                .version_reads(EncodingStrategy::BasicSec, &PROFILE, l)
                .to_string(),
            model
                .version_reads(EncodingStrategy::OptimizedSec, &PROFILE, l)
                .to_string(),
            model
                .version_reads(EncodingStrategy::NonDifferential, &PROFILE, l)
                .to_string(),
            model
                .prefix_reads(EncodingStrategy::BasicSec, &PROFILE, l)
                .to_string(),
            model
                .prefix_reads(EncodingStrategy::NonDifferential, &PROFILE, l)
                .to_string(),
            operational_reads(EncodingStrategy::BasicSec, l, false).to_string(),
            operational_reads(EncodingStrategy::OptimizedSec, l, false).to_string(),
        ]);
    }
    table.emit(&args)?;

    let total_sec = model.prefix_reads(EncodingStrategy::BasicSec, &PROFILE, 5);
    let total_nd = model.prefix_reads(EncodingStrategy::NonDifferential, &PROFILE, 5);
    println!(
        "\nTotal reads for all 5 versions: SEC = {total_sec}, non-differential = {total_nd} \
         ({:.1}% fewer reads; 8 of 50 saved — the paper headlines this as a 20% saving).",
        (total_nd - total_sec) as f64 / total_nd as f64 * 100.0
    );
    println!(
        "Expected per-version numbers (paper §III-D): basic {{10,16,26,32,42}}, optimized {{10,16,10,16,10}}."
    );
    Ok(())
}
