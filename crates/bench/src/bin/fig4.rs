//! Fig. 4 — average I/O reads `μ_1` to retrieve the 1-sparse object `z_2`
//! versus the node-failure probability, for the (6, 3) code: systematic SEC,
//! non-systematic SEC and the non-differential baseline.
//!
//! Run with `cargo run -p sec-bench --bin fig4` (add `--trials N` to also
//! print the Monte-Carlo estimate of eq. 21 next to the exact value).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sec_analysis::io::{average_io_exact, average_io_monte_carlo, IoScheme};
use sec_bench::{fmt_float, probability_grid, ExperimentArgs, ResultTable};
use sec_erasure::{GeneratorForm, SecCode};
use sec_gf::Gf1024;

fn main() -> std::io::Result<()> {
    let args = ExperimentArgs::from_env();
    let systematic: SecCode<Gf1024> =
        SecCode::cauchy(6, 3, GeneratorForm::Systematic).expect("(6,3) fits in GF(1024)");
    let non_systematic: SecCode<Gf1024> =
        SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).expect("(6,3) fits in GF(1024)");
    let trials = args.trials.unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(2015);

    let mut table = ResultTable::new(
        "Fig. 4: average I/O reads mu_1 for z2 (gamma = 1), (6,3) code",
        &[
            "p",
            "systematic_sec",
            "non_systematic_sec",
            "non_differential",
            "systematic_mc",
        ],
    );
    for p in probability_grid() {
        let sys = average_io_exact(&systematic, IoScheme::Sec(GeneratorForm::Systematic), 1, p);
        let ns = average_io_exact(&non_systematic, IoScheme::Sec(GeneratorForm::NonSystematic), 1, p);
        let nd = average_io_exact(&non_systematic, IoScheme::NonDifferential, 1, p);
        let mc = if trials > 0 {
            fmt_float(
                average_io_monte_carlo(
                    &systematic,
                    IoScheme::Sec(GeneratorForm::Systematic),
                    1,
                    p,
                    trials,
                    &mut rng,
                )
                .average_reads,
                4,
            )
        } else {
            "-".to_string()
        };
        table.push_row(vec![
            fmt_float(p, 2),
            fmt_float(sys.average_reads, 4),
            fmt_float(ns.average_reads, 4),
            fmt_float(nd.average_reads, 4),
            mc,
        ]);
    }
    table.emit(&args)?;
    println!(
        "\nExpected shape: non-systematic SEC flat at 2 reads, non-differential flat at 3 reads,\n\
         systematic SEC starts at 2 and rises slowly with p (paper Fig. 4)."
    );
    Ok(())
}
