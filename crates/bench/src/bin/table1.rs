//! Table I — differential vs non-differential erasure coding for the §IV-C
//! example: (6, 3) code over GF(1024), second version with a 1-sparse delta.
//!
//! Run with `cargo run -p sec-bench --bin table1`.

use sec_analysis::tables::{render_table1, table1};
use sec_bench::{ExperimentArgs, ResultTable};
use sec_erasure::CodeParams;

fn main() -> std::io::Result<()> {
    let args = ExperimentArgs::from_env();
    let params = CodeParams::new(6, 3).expect("valid (6,3) parameters");
    let columns = table1(params, 1);

    println!("Table I: differential vs non-differential erasure coding ((6,3), gamma = 1)\n");
    println!("{}", render_table1(&columns));

    // Also emit a compact numeric table (and CSV) of the I/O-read rows.
    let mut table = ResultTable::new(
        "Table I (I/O reads)",
        &["scheme", "nodes", "io_reads_v1", "io_reads_v2"],
    );
    for c in &columns {
        table.push_row(vec![
            c.scheme.to_string(),
            c.nodes.to_string(),
            c.io_reads_v1.to_string(),
            c.io_reads_v2.to_string(),
        ]);
    }
    table.emit(&args)
}
