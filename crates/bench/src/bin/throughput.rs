//! Byte-shard pipeline throughput: encode, full decode and `2γ` sparse
//! recovery in MB/s, emitted as `BENCH_throughput.json` so later PRs have a
//! perf trajectory to beat.
//!
//! Three implementations are measured for each `(n, k) = (2k, k)` Cauchy
//! code, `k ∈ {3, 6, 12}`:
//!
//! * `byte` — the batched [`ByteCodec`] pipeline (split-table `GF(2^8)`
//!   kernels over contiguous shards);
//! * `generic-bulk` — the field-generic `Vec<Gf256>` shard path
//!   (`shards::encode_shards` / `decode_shards`), the reference
//!   implementation;
//! * `per-symbol` — one `code.encode` / `code.decode_full` /
//!   `code.decode_sparse` call per byte position, i.e. how the pre-fast-path
//!   archive layers processed large objects. Only measured where it finishes
//!   in reasonable time.
//!
//! A fourth series measures *read scaling*: a [`sec_engine::SecEngine`]
//! serving `get_version` retrievals from `threads ∈ {1, 4, 8}` concurrent
//! readers, reported as aggregate retrievals/s and MB/s. On a multi-core
//! host the sharded-lock engine scales reads near-linearly; the series
//! exists so the trajectory is tracked either way.
//!
//! A fifth series measures *shard scaling*: a [`sec_engine::SecCluster`]
//! routing a fixed 16-object workload across `shards ∈ {1, 4, 8}` while 8
//! reader threads retrieve mixed objects — more shards spread the same
//! objects over more independent lock domains (archive locks, node locks,
//! object maps), so aggregate throughput should hold or rise as S grows.
//!
//! A sixth series measures *placement scaling*: the same archive served by a
//! colocated engine (`n` shared nodes) vs a dispersed engine (`n` fresh
//! nodes per entry) under an **identical failure rate** (one node in six
//! down). Colocated loses one codeword position of every entry; dispersed
//! loses one position of each entry independently — read counts match, so
//! the comparison isolates the layout's lock/liveness topology.
//!
//! A seventh series measures *kernel dispatch*: the byte pipeline forced
//! onto each `GF(2^8)` SIMD kernel the host supports (`scalar`, `ssse3`,
//! `avx2`, `neon`) via [`sec_gf::force_kernel`], across shard sizes from
//! 4 KiB to 4 MiB. Rows carry the kernel name, the JSON reports the
//! auto-detected kernel as `active_kernel`, and the headline print shows
//! each SIMD kernel's speedup over scalar for the (6, 3) encode.
//!
//! An eighth series measures *cache scaling*: a (6, 3) Basic-SEC engine
//! holding a 64-version chain of PMF-driven sparse edits (alternating the
//! paper's truncated-exponential and truncated-Poisson sparsity models),
//! checkpointed every `c` deltas, read with version targets drawn Zipf-by-
//! recency. Rows report exact- and nearest-base hit rates of the delta
//! cache and the mean read amplification, which the checkpoint policy
//! bounds by `1 + c` (in units of `k` block reads).
//!
//! A ninth series measures *server scaling*: the [`sec_net::Server`] TCP
//! front-end on loopback under the closed-loop load generator, swept over
//! connection counts (1 → 10k), pipeline depths (1 vs 16 outstanding
//! `GET`s), and cache modes (exact delta-cache hits vs capacity-zero full
//! decodes). Rows report sustained req/s plus p50/p99/max microseconds —
//! the end-to-end reactor + parser + batched-dispatch cost around the same
//! engine the other series measure in isolation.
//!
//! Run with `cargo run --release -p sec-bench --bin throughput`. Pass
//! `--smoke` for a quick CI-sized run (4 KiB shards only) and `--out <path>`
//! to change the JSON destination.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use sec_engine::{ObjectId, PlacementStrategy, SecCluster, SecEngine};
use sec_erasure::{shards, ByteCodec, ByteShards, GeneratorForm, SecCode, Share};
use sec_gf::{GaloisField, Gf256, Kernel};
use sec_versioning::{ArchiveConfig, CheckpointPolicy, EncodingStrategy};
use sec_workload::{SparsityPmf, ZipfPmf};

/// One measured data point.
struct Sample {
    op: &'static str,
    path: &'static str,
    n: usize,
    k: usize,
    shard_bytes: usize,
    ns_per_op: f64,
    mb_per_s: f64,
}

/// One kernel-dispatch data point: the byte pipeline forced onto a specific
/// `GF(2^8)` kernel.
struct KernelSample {
    kernel: &'static str,
    op: &'static str,
    n: usize,
    k: usize,
    shard_bytes: usize,
    ns_per_op: f64,
    mb_per_s: f64,
}

/// One read-scaling data point: aggregate engine throughput at a thread
/// count.
struct ScalingSample {
    threads: usize,
    shard_bytes: usize,
    retrievals: u64,
    retrievals_per_s: f64,
    mb_per_s: f64,
}

/// One placement-scaling data point: aggregate engine throughput for a
/// placement strategy under a fixed failure rate.
struct PlacementScalingSample {
    placement: PlacementStrategy,
    threads: usize,
    shard_bytes: usize,
    nodes: usize,
    failed_nodes: usize,
    retrievals: u64,
    retrievals_per_s: f64,
    mb_per_s: f64,
}

/// Measures `SecEngine::get_version` throughput under `placement` with
/// `threads` concurrent readers and one-in-six nodes failed: node 0 of the
/// shared group (colocated), or position 0 of every entry's private node set
/// (dispersed) — the same failure *rate* in both layouts, and read plans of
/// identical cost.
fn measure_placement_scaling(
    shard_bytes: usize,
    versions: usize,
    placement: PlacementStrategy,
    threads: usize,
    min_total: Duration,
) -> PlacementScalingSample {
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("(6,3) fits in GF(256)");
    let engine = SecEngine::with_placement(config, placement, 0).expect("engine builds");
    let mut object = vec![0u8; 3 * shard_bytes];
    fill(&mut object, shard_bytes as u64 + 29);
    engine.append_version(&object).expect("append v1");
    for v in 1..versions {
        object[(v * 131) % shard_bytes] ^= 0xA5;
        engine.append_version(&object).expect("append delta");
    }
    let nodes = engine.node_count();
    let mut failed_nodes = 0usize;
    for node in (0..nodes).step_by(6) {
        engine.fail_node(node).expect("in range");
        failed_nodes += 1;
    }
    let engine = Arc::new(engine);

    let calibrate = Instant::now();
    let mut calibration_rounds = 0u64;
    while calibrate.elapsed() < min_total / 4 {
        let l = (calibration_rounds as usize) % versions + 1;
        std::hint::black_box(engine.get_version(l).expect("retrieval"));
        calibration_rounds += 1;
    }
    let per_thread = calibration_rounds.max(1);

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let l = (t + i as usize) % versions + 1;
                    std::hint::black_box(engine.get_version(l).expect("retrieval"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let retrievals = per_thread * threads as u64;
    let object_bytes = 3 * shard_bytes;
    PlacementScalingSample {
        placement,
        threads,
        shard_bytes,
        nodes,
        failed_nodes,
        retrievals,
        retrievals_per_s: retrievals as f64 / elapsed,
        mb_per_s: (retrievals as f64 * object_bytes as f64 / 1e6) / elapsed,
    }
}

/// One cache-scaling data point: delta-cache hit rates and read
/// amplification for one checkpoint-spacing × cache-capacity pair.
struct CacheScalingSample {
    spacing: usize,
    cache_capacity: usize,
    versions: usize,
    retrievals: u64,
    hit_rate: f64,
    base_hit_rate: f64,
    deltas_applied: u64,
    checkpoints_written: u64,
    read_amplification: f64,
    retrievals_per_s: f64,
}

/// Measures delta-cache effectiveness on a (6, 3) Basic-SEC engine holding
/// a `versions`-long chain whose per-version sparsity alternates between
/// the paper's truncated-exponential and truncated-Poisson PMFs, with a
/// checkpoint every `spacing` deltas. The read phase draws `reads` version
/// targets Zipf-by-recency (rank 1 = the newest version) and reports the
/// cache's exact- and nearest-base hit rates plus the mean read
/// amplification: block reads per retrieval over `k`, which the checkpoint
/// policy bounds by `1 + spacing`.
fn measure_cache_scaling(
    shard_bytes: usize,
    versions: usize,
    spacing: usize,
    cache_capacity: usize,
    reads: u64,
) -> CacheScalingSample {
    let k = 3usize;
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("(6,3) fits in GF(256)")
        .with_checkpoints(CheckpointPolicy::every(spacing));
    let engine = SecEngine::with_cache(config, cache_capacity).expect("engine builds");

    let mut rng = StdRng::seed_from_u64(0x5EC5_CA1E ^ (spacing as u64) << 8 ^ cache_capacity as u64);
    let exponential = SparsityPmf::truncated_exponential(1.0, k).expect("valid PMF");
    let poisson = SparsityPmf::truncated_poisson(1.2, k).expect("valid PMF");
    let mut object = vec![0u8; k * shard_bytes];
    fill(&mut object, shard_bytes as u64 + 71);
    engine.append_version(&object).expect("append v1");
    for v in 1..versions {
        // One-byte edits in γ distinct blocks: the stored delta's sparsity
        // is exactly the PMF draw.
        let pmf = if v % 2 == 0 { &exponential } else { &poisson };
        let gamma = pmf.sample(&mut rng);
        for block in 0..gamma {
            object[block * shard_bytes + (v * 131) % shard_bytes] ^= 0xA5;
        }
        engine.append_version(&object).expect("append delta");
    }

    let zipf = ZipfPmf::new(1.1, versions).expect("valid PMF");
    let before = engine.metrics_snapshot().cache;
    let mut io_reads = 0u64;
    let start = Instant::now();
    for _ in 0..reads {
        let l = versions + 1 - zipf.sample(&mut rng);
        let r = engine.get_version(l).expect("retrieval");
        io_reads += r.io_reads as u64;
        std::hint::black_box(r);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let m = engine.metrics_snapshot();
    CacheScalingSample {
        spacing,
        cache_capacity,
        versions,
        retrievals: reads,
        hit_rate: (m.cache.hits - before.hits) as f64 / reads as f64,
        base_hit_rate: (m.cache.base_hits - before.base_hits) as f64 / reads as f64,
        deltas_applied: m.deltas_applied,
        checkpoints_written: m.checkpoints_written,
        read_amplification: io_reads as f64 / (reads as f64 * k as f64),
        retrievals_per_s: reads as f64 / elapsed,
    }
}

/// One shard-scaling data point: aggregate cluster throughput at a shard
/// count.
struct ShardScalingSample {
    shards: usize,
    objects: usize,
    threads: usize,
    shard_bytes: usize,
    retrievals: u64,
    retrievals_per_s: f64,
    mb_per_s: f64,
}

/// Measures `SecCluster::get_version` throughput with `threads` concurrent
/// readers retrieving mixed versions of `objects` objects routed across
/// `shards` shards of a (6, 3) Basic-SEC cluster, for roughly `min_total`
/// wall time. The workload (objects, versions, access order) is identical
/// at every shard count — only the routing fan-out changes.
fn measure_shard_scaling(
    shard_bytes: usize,
    objects: usize,
    versions: usize,
    shards: usize,
    threads: usize,
    min_total: Duration,
) -> ShardScalingSample {
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("(6,3) fits in GF(256)");
    let cluster = SecCluster::new(config, shards).expect("cluster builds");
    for raw in 0..objects as u64 {
        let id = ObjectId(raw);
        let mut object = vec![0u8; 3 * shard_bytes];
        fill(&mut object, raw * 1_000_003 + shard_bytes as u64);
        cluster.append_version(id, &object).expect("append v1");
        for v in 1..versions {
            // γ = 1 deltas: the paper's sweet spot, 2 block reads per delta.
            object[(v * 131) % shard_bytes] ^= 0xA5;
            cluster.append_version(id, &object).expect("append delta");
        }
    }
    let cluster = Arc::new(cluster);

    // Calibrate per-thread iterations on one thread, then run the measured
    // pass with all readers started together.
    let calibrate = Instant::now();
    let mut calibration_rounds = 0u64;
    while calibrate.elapsed() < min_total / 4 {
        let id = ObjectId(calibration_rounds % objects as u64);
        let l = (calibration_rounds as usize) % versions + 1;
        std::hint::black_box(cluster.get_version(id, l).expect("retrieval"));
        calibration_rounds += 1;
    }
    let per_thread = calibration_rounds.max(1);

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let id = ObjectId((t as u64 + i) % objects as u64);
                    let l = (t + i as usize) % versions + 1;
                    std::hint::black_box(cluster.get_version(id, l).expect("retrieval"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let retrievals = per_thread * threads as u64;
    let object_bytes = 3 * shard_bytes;
    ShardScalingSample {
        shards,
        objects,
        threads,
        shard_bytes,
        retrievals,
        retrievals_per_s: retrievals as f64 / elapsed,
        mb_per_s: (retrievals as f64 * object_bytes as f64 / 1e6) / elapsed,
    }
}

/// Measures `SecEngine::get_version` throughput with `threads` concurrent
/// readers hammering a (6, 3) Basic-SEC engine holding `versions` versions
/// of a `3 · shard_bytes` object, for roughly `min_total` wall time.
fn measure_read_scaling(
    shard_bytes: usize,
    versions: usize,
    threads: usize,
    min_total: Duration,
) -> ScalingSample {
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("(6,3) fits in GF(256)");
    let engine = SecEngine::new(config).expect("engine builds");
    let mut object = vec![0u8; 3 * shard_bytes];
    fill(&mut object, shard_bytes as u64 + 17);
    engine.append_version(&object).expect("append v1");
    for v in 1..versions {
        // Single-block edits keep every later version a γ = 1 delta, the
        // paper's sweet spot: 2 block reads per delta.
        object[(v * 131) % shard_bytes] ^= 0xA5;
        engine.append_version(&object).expect("append delta");
    }
    let engine = Arc::new(engine);

    // Calibrate per-thread iterations on one thread, then run the measured
    // pass with all readers started together.
    let calibrate = Instant::now();
    let mut calibration_rounds = 0u64;
    while calibrate.elapsed() < min_total / 4 {
        let l = (calibration_rounds as usize) % versions + 1;
        std::hint::black_box(engine.get_version(l).expect("retrieval"));
        calibration_rounds += 1;
    }
    let per_thread = calibration_rounds.max(1);

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let l = (t + i as usize) % versions + 1;
                    std::hint::black_box(engine.get_version(l).expect("retrieval"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let retrievals = per_thread * threads as u64;
    let object_bytes = 3 * shard_bytes;
    ScalingSample {
        threads,
        shard_bytes,
        retrievals,
        retrievals_per_s: retrievals as f64 / elapsed,
        mb_per_s: (retrievals as f64 * object_bytes as f64 / 1e6) / elapsed,
    }
}

/// Times `f` until `min_total` has elapsed or `max_iters` runs completed
/// (after one untimed warm-up call), returning mean ns per call.
fn measure<F: FnMut()>(mut f: F, min_total: Duration, max_iters: u64) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        if start.elapsed() >= min_total || iters >= max_iters {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Deterministic pseudo-random bytes (SplitMix64 stream).
fn fill(buf: &mut [u8], mut seed: u64) {
    for b in buf.iter_mut() {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        *b = (z >> 32) as u8;
    }
}

fn mb_per_s(object_bytes: usize, ns: f64) -> f64 {
    (object_bytes as f64 / 1e6) / (ns / 1e9)
}

/// One server-scaling data point: the TCP front-end serving wire `GET`s to
/// the loopback load generator at one (connections, pipeline, cache mode)
/// combination.
struct ServerScalingSample {
    connections: usize,
    pipeline: usize,
    cached: bool,
    requests: u64,
    errors: u64,
    req_per_s: f64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
    backend: &'static str,
}

/// Measures end-to-end wire throughput: a [`sec_net::Server`] over a (6, 3)
/// Basic-SEC cluster on loopback, hammered by the closed-loop generator in
/// [`sec_net::load`] with `connections` sockets each keeping `pipeline`
/// `GET`s outstanding (`pipeline: 1` is the one-request-per-flush baseline).
/// `cached: true` requests only the newest version of each object, so after
/// the first touch every retrieval is an exact delta-cache hit and the
/// reactor/parser/syscall path dominates; `cached: false` runs a
/// capacity-zero cache and sweeps every stored version, so each request
/// pays a full `k`-shard decode.
fn measure_server_scaling(
    connections: usize,
    pipeline: usize,
    cached: bool,
    duration: Duration,
) -> ServerScalingSample {
    use sec_net::{load, Server, ServerConfig};
    let objects = 16u64;
    let versions = 4usize;
    let payload = 3 * 256usize;
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("(6,3) fits in GF(256)");
    let capacity = if cached { 8 } else { 0 };
    let cluster = Arc::new(SecCluster::with_cache(config, 4, capacity).expect("cluster builds"));
    for id in 0..objects {
        let history: Vec<Vec<u8>> = (0..versions)
            .map(|v| (0..payload).map(|i| (id as usize + v * 31 + i) as u8).collect())
            .collect();
        cluster.append_all(ObjectId(id), &history).expect("populate");
    }
    let handle = Server::start(Arc::clone(&cluster), "127.0.0.1:0", ServerConfig::default())
        .expect("server starts on loopback");
    let targets: Vec<(ObjectId, usize)> = if cached {
        (0..objects).map(|id| (ObjectId(id), versions)).collect()
    } else {
        (0..objects)
            .flat_map(|id| (1..=versions).map(move |v| (ObjectId(id), v)))
            .collect()
    };
    let load_config = load::LoadConfig {
        connections,
        pipeline,
        duration,
        open_loop_rate: None,
        seed: 0x5ec,
    };
    let report = load::run_get_load(handle.local_addr(), &targets, &load_config).expect("load run");
    handle.shutdown().expect("clean shutdown");
    ServerScalingSample {
        connections: report.connections,
        pipeline: report.pipeline,
        cached,
        requests: report.requests,
        errors: report.errors,
        req_per_s: report.req_per_sec,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        max_us: report.max_us,
        backend: report.backend,
    }
}

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        out: "BENCH_throughput.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--out" => {
                if let Some(path) = args.next() {
                    out.out = path;
                }
            }
            _ => {}
        }
    }
    out
}

// The per-symbol baselines index by byte position into several parallel
// buffers; an iterator rewrite would obscure what is deliberately the naive
// reference loop.
#[allow(clippy::too_many_lines, clippy::needless_range_loop)]
fn main() -> std::io::Result<()> {
    let args = parse_args();
    // Capture before any force_kernel below: this is what production dispatch
    // (auto-detection plus any SEC_GF_KERNEL pin) actually selected.
    let auto_kernel = sec_gf::active_kernel();
    let sizes: &[usize] = if args.smoke {
        &[4096]
    } else {
        &[4096, 65536, 1 << 20]
    };
    let ks: &[usize] = &[3, 6, 12];
    let min_total = if args.smoke {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(100)
    };
    let mut samples: Vec<Sample> = Vec::new();

    for &k in ks {
        let n = 2 * k;
        let code: SecCode<Gf256> =
            SecCode::cauchy(n, k, GeneratorForm::NonSystematic).expect("(2k,k) fits in GF(256)");
        let codec = ByteCodec::new(code.clone());

        for &shard_bytes in sizes {
            let object_bytes = k * shard_bytes;
            let mut object = vec![0u8; object_bytes];
            fill(&mut object, (k * 1_000_003 + shard_bytes) as u64);
            let data = ByteShards::from_flat(&object, k);
            let gamma = 1usize;
            let mut delta = ByteShards::zeroed(k, shard_bytes);
            fill(delta.shard_mut(k / 2), 42);

            // ---- byte path -------------------------------------------------
            let coded = codec.encode_blocks(&data).expect("encode");
            let coded_delta = codec.encode_blocks(&delta).expect("encode delta");
            let mut out = ByteShards::zeroed(n, shard_bytes);
            let ns = measure(
                || codec.encode_blocks_into(&data, &mut out).expect("encode"),
                min_total,
                1000,
            );
            samples.push(Sample {
                op: "encode",
                path: "byte",
                n,
                k,
                shard_bytes,
                ns_per_op: ns,
                mb_per_s: mb_per_s(object_bytes, ns),
            });

            let decode_rows: Vec<usize> = (k / 2..k / 2 + k).collect();
            let byte_shares: Vec<(usize, &[u8])> =
                decode_rows.iter().map(|&i| (i, coded.shard(i))).collect();
            let ns = measure(
                || {
                    std::hint::black_box(codec.decode_blocks(&byte_shares).expect("decode"));
                },
                min_total,
                1000,
            );
            samples.push(Sample {
                op: "decode",
                path: "byte",
                n,
                k,
                shard_bytes,
                ns_per_op: ns,
                mb_per_s: mb_per_s(object_bytes, ns),
            });

            let sparse_rows: Vec<usize> = (0..2 * gamma).collect();
            let sparse_shares: Vec<(usize, &[u8])> =
                sparse_rows.iter().map(|&i| (i, coded_delta.shard(i))).collect();
            let ns = measure(
                || {
                    std::hint::black_box(
                        codec
                            .recover_sparse_blocks(&sparse_shares, gamma)
                            .expect("recover"),
                    );
                },
                min_total,
                1000,
            );
            samples.push(Sample {
                op: "sparse_recover",
                path: "byte",
                n,
                k,
                shard_bytes,
                ns_per_op: ns,
                mb_per_s: mb_per_s(object_bytes, ns),
            });

            // ---- generic bulk path (scalar reference) ----------------------
            let sym_data: Vec<Vec<Gf256>> = (0..k)
                .map(|i| sec_gf::bulk::bytes_to_symbols(data.shard(i)))
                .collect();
            let ns = measure(
                || {
                    std::hint::black_box(shards::encode_shards(&code, &sym_data).expect("encode"));
                },
                min_total,
                50,
            );
            samples.push(Sample {
                op: "encode",
                path: "generic-bulk",
                n,
                k,
                shard_bytes,
                ns_per_op: ns,
                mb_per_s: mb_per_s(object_bytes, ns),
            });

            let sym_coded = shards::encode_shards(&code, &sym_data).expect("encode");
            let sym_shares: Vec<(usize, Vec<Gf256>)> =
                decode_rows.iter().map(|&i| (i, sym_coded[i].clone())).collect();
            let ns = measure(
                || {
                    std::hint::black_box(shards::decode_shards(&code, &sym_shares).expect("decode"));
                },
                min_total,
                50,
            );
            samples.push(Sample {
                op: "decode",
                path: "generic-bulk",
                n,
                k,
                shard_bytes,
                ns_per_op: ns,
                mb_per_s: mb_per_s(object_bytes, ns),
            });

            // ---- per-symbol path (pre-fast-path behaviour) -----------------
            // One matrix-vector product per byte position; decode even runs a
            // matrix inversion per position. Restricted to configurations that
            // complete in sensible time: encode everywhere it matters (k = 3
            // carries the headline 1 MiB comparison), decode/sparse at 4 KiB.
            if shard_bytes <= 65536 || k == 3 {
                let ns = measure(
                    || {
                        let mut out = vec![vec![0u8; shard_bytes]; n];
                        for position in 0..shard_bytes {
                            let obj: Vec<Gf256> = (0..k)
                                .map(|s| Gf256::from_u64(u64::from(data.shard(s)[position])))
                                .collect();
                            let codeword = code.encode(&obj).expect("encode");
                            for (row, symbol) in codeword.iter().enumerate() {
                                out[row][position] = symbol.to_u64() as u8;
                            }
                        }
                        std::hint::black_box(out);
                    },
                    min_total,
                    5,
                );
                samples.push(Sample {
                    op: "encode",
                    path: "per-symbol",
                    n,
                    k,
                    shard_bytes,
                    ns_per_op: ns,
                    mb_per_s: mb_per_s(object_bytes, ns),
                });
            }
            if shard_bytes == 4096 {
                let ns = measure(
                    || {
                        let mut out = vec![vec![0u8; shard_bytes]; k];
                        for position in 0..shard_bytes {
                            let pos_shares: Vec<Share<Gf256>> = decode_rows
                                .iter()
                                .map(|&i| (i, Gf256::from_u64(u64::from(coded.shard(i)[position]))))
                                .collect();
                            let obj = code.decode_full(&pos_shares).expect("decode");
                            for (row, symbol) in obj.iter().enumerate() {
                                out[row][position] = symbol.to_u64() as u8;
                            }
                        }
                        std::hint::black_box(out);
                    },
                    min_total,
                    3,
                );
                samples.push(Sample {
                    op: "decode",
                    path: "per-symbol",
                    n,
                    k,
                    shard_bytes,
                    ns_per_op: ns,
                    mb_per_s: mb_per_s(object_bytes, ns),
                });

                let ns = measure(
                    || {
                        let mut out = vec![vec![0u8; shard_bytes]; k];
                        for position in 0..shard_bytes {
                            let pos_shares: Vec<Share<Gf256>> = sparse_rows
                                .iter()
                                .map(|&i| {
                                    (i, Gf256::from_u64(u64::from(coded_delta.shard(i)[position])))
                                })
                                .collect();
                            let obj = code.decode_sparse(&pos_shares, gamma).expect("recover");
                            for (row, symbol) in obj.iter().enumerate() {
                                out[row][position] = symbol.to_u64() as u8;
                            }
                        }
                        std::hint::black_box(out);
                    },
                    min_total,
                    3,
                );
                samples.push(Sample {
                    op: "sparse_recover",
                    path: "per-symbol",
                    n,
                    k,
                    shard_bytes,
                    ns_per_op: ns,
                    mb_per_s: mb_per_s(object_bytes, ns),
                });
            }
        }
    }

    // ---- kernel dispatch: the byte pipeline on each supported kernel -------
    let kernel_sizes: &[usize] = if args.smoke {
        &[4096]
    } else {
        &[4096, 65536, 1 << 20, 1 << 22]
    };
    let mut kernel_samples: Vec<KernelSample> = Vec::new();
    for kernel in Kernel::available() {
        sec_gf::force_kernel(kernel).expect("available kernels can be forced");
        for &k in ks {
            let n = 2 * k;
            let code: SecCode<Gf256> =
                SecCode::cauchy(n, k, GeneratorForm::NonSystematic).expect("(2k,k) fits in GF(256)");
            let codec = ByteCodec::new(code);
            for &shard_bytes in kernel_sizes {
                let object_bytes = k * shard_bytes;
                let mut object = vec![0u8; object_bytes];
                fill(&mut object, (k * 500_009 + shard_bytes) as u64);
                let data = ByteShards::from_flat(&object, k);
                let mut out = ByteShards::zeroed(n, shard_bytes);
                let ns = measure(
                    || codec.encode_blocks_into(&data, &mut out).expect("encode"),
                    min_total,
                    1000,
                );
                kernel_samples.push(KernelSample {
                    kernel: kernel.name(),
                    op: "encode",
                    n,
                    k,
                    shard_bytes,
                    ns_per_op: ns,
                    mb_per_s: mb_per_s(object_bytes, ns),
                });

                let coded = codec.encode_blocks(&data).expect("encode");
                let decode_rows: Vec<usize> = (k / 2..k / 2 + k).collect();
                let shares: Vec<(usize, &[u8])> =
                    decode_rows.iter().map(|&i| (i, coded.shard(i))).collect();
                let ns = measure(
                    || {
                        std::hint::black_box(codec.decode_blocks(&shares).expect("decode"));
                    },
                    min_total,
                    1000,
                );
                kernel_samples.push(KernelSample {
                    kernel: kernel.name(),
                    op: "decode",
                    n,
                    k,
                    shard_bytes,
                    ns_per_op: ns,
                    mb_per_s: mb_per_s(object_bytes, ns),
                });

                let gamma = 1usize;
                let mut delta = ByteShards::zeroed(k, shard_bytes);
                fill(delta.shard_mut(k / 2), 43);
                let coded_delta = codec.encode_blocks(&delta).expect("encode delta");
                let sparse_shares: Vec<(usize, &[u8])> =
                    (0..2 * gamma).map(|i| (i, coded_delta.shard(i))).collect();
                let ns = measure(
                    || {
                        std::hint::black_box(
                            codec
                                .recover_sparse_blocks(&sparse_shares, gamma)
                                .expect("recover"),
                        );
                    },
                    min_total,
                    1000,
                );
                kernel_samples.push(KernelSample {
                    kernel: kernel.name(),
                    op: "sparse_recover",
                    n,
                    k,
                    shard_bytes,
                    ns_per_op: ns,
                    mb_per_s: mb_per_s(object_bytes, ns),
                });
            }
        }
    }
    // The scaling series below must run on production dispatch again.
    sec_gf::reset_kernel();

    // ---- concurrent read scaling through the serving engine ---------------
    let scaling_shard_bytes = if args.smoke { 4096 } else { 65536 };
    let scaling_versions = 8;
    let scaling: Vec<ScalingSample> = [1usize, 4, 8]
        .iter()
        .map(|&threads| measure_read_scaling(scaling_shard_bytes, scaling_versions, threads, min_total))
        .collect();

    // ---- shard scaling through the cluster router --------------------------
    let cluster_objects = 16;
    let cluster_versions = 4;
    let cluster_threads = 8;
    let shard_scaling: Vec<ShardScalingSample> = [1usize, 4, 8]
        .iter()
        .map(|&shards| {
            measure_shard_scaling(
                scaling_shard_bytes,
                cluster_objects,
                cluster_versions,
                shards,
                cluster_threads,
                min_total,
            )
        })
        .collect();

    // ---- placement scaling: colocated vs dispersed under failures ----------
    let placement_versions = 8;
    let placement_threads = 8;
    let placement_scaling: Vec<PlacementScalingSample> =
        [PlacementStrategy::Colocated, PlacementStrategy::Dispersed]
            .iter()
            .map(|&placement| {
                measure_placement_scaling(
                    scaling_shard_bytes,
                    placement_versions,
                    placement,
                    placement_threads,
                    min_total,
                )
            })
            .collect();

    // ---- cache scaling: hit rates and checkpointed read amplification ------
    let cache_versions = 64;
    let cache_reads: u64 = if args.smoke { 512 } else { 4096 };
    let cache_spacings: &[usize] = if args.smoke { &[0, 8] } else { &[0, 4, 8, 16] };
    let cache_capacities: &[usize] = if args.smoke { &[0, 8] } else { &[0, 4, 16] };
    let mut cache_scaling: Vec<CacheScalingSample> = Vec::new();
    for &spacing in cache_spacings {
        for &capacity in cache_capacities {
            cache_scaling.push(measure_cache_scaling(
                4096,
                cache_versions,
                spacing,
                capacity,
                cache_reads,
            ));
        }
    }

    // ---- server scaling: the TCP front-end under loopback load -------------
    // Both ends of every connection live in this process, so the fd budget
    // is two descriptors per connection plus headroom for the reactor.
    let nofile = sec_net::sys::raise_nofile(40_000);
    let max_connections = ((nofile.saturating_sub(256)) / 2) as usize;
    let server_duration = if args.smoke {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(2)
    };
    let connection_levels: &[usize] = if args.smoke {
        &[1, 64, 1000]
    } else {
        &[1, 64, 1000, 10_000]
    };
    let mut server_modes: Vec<(usize, usize, bool)> = Vec::new();
    for &conns in connection_levels {
        let conns = conns.min(max_connections).max(1);
        for pipeline in [1usize, 16] {
            if !server_modes.contains(&(conns, pipeline, true)) {
                server_modes.push((conns, pipeline, true));
            }
        }
    }
    // Cold reads (capacity-zero cache, every version swept) at one mid-size
    // connection count: the decode cost, not the reactor, is the subject.
    let cold_pipelines: &[usize] = if args.smoke { &[16] } else { &[1, 16] };
    for &pipeline in cold_pipelines {
        server_modes.push((64.min(max_connections).max(1), pipeline, false));
    }
    let server_scaling: Vec<ServerScalingSample> = server_modes
        .iter()
        .map(|&(conns, pipeline, cached)| {
            measure_server_scaling(conns, pipeline, cached, server_duration)
        })
        .collect();

    // Human-readable table.
    println!(
        "{:<16} {:<14} {:>4} {:>4} {:>12} {:>14} {:>12}",
        "op", "path", "n", "k", "shard_bytes", "ns/op", "MB/s"
    );
    for s in &samples {
        println!(
            "{:<16} {:<14} {:>4} {:>4} {:>12} {:>14.0} {:>12.1}",
            s.op, s.path, s.n, s.k, s.shard_bytes, s.ns_per_op, s.mb_per_s
        );
    }

    println!("\nactive kernel (auto-detected): {auto_kernel}");
    println!(
        "{:<8} {:<16} {:>4} {:>4} {:>12} {:>14} {:>12}",
        "kernel", "op", "n", "k", "shard_bytes", "ns/op", "MB/s"
    );
    for s in &kernel_samples {
        println!(
            "{:<8} {:<16} {:>4} {:>4} {:>12} {:>14.0} {:>12.1}",
            s.kernel, s.op, s.n, s.k, s.shard_bytes, s.ns_per_op, s.mb_per_s
        );
    }

    println!(
        "\n{:<10} {:>12} {:>14} {:>16} {:>12}",
        "threads", "shard_bytes", "retrievals", "retrievals/s", "MB/s"
    );
    for s in &scaling {
        println!(
            "{:<10} {:>12} {:>14} {:>16.0} {:>12.1}",
            s.threads, s.shard_bytes, s.retrievals, s.retrievals_per_s, s.mb_per_s
        );
    }

    println!(
        "\n{:<8} {:>8} {:>8} {:>12} {:>14} {:>16} {:>12}",
        "shards", "objects", "threads", "shard_bytes", "retrievals", "retrievals/s", "MB/s"
    );
    for s in &shard_scaling {
        println!(
            "{:<8} {:>8} {:>8} {:>12} {:>14} {:>16.0} {:>12.1}",
            s.shards, s.objects, s.threads, s.shard_bytes, s.retrievals, s.retrievals_per_s, s.mb_per_s
        );
    }

    println!(
        "\n{:<11} {:>8} {:>7} {:>12} {:>14} {:>16} {:>12}",
        "placement", "nodes", "failed", "shard_bytes", "retrievals", "retrievals/s", "MB/s"
    );
    for s in &placement_scaling {
        println!(
            "{:<11} {:>8} {:>7} {:>12} {:>14} {:>16.0} {:>12.1}",
            s.placement,
            s.nodes,
            s.failed_nodes,
            s.shard_bytes,
            s.retrievals,
            s.retrievals_per_s,
            s.mb_per_s
        );
    }

    println!(
        "\n{:<8} {:>9} {:>9} {:>11} {:>13} {:>8} {:>8} {:>6}",
        "spacing", "capacity", "hit_rate", "base_rate", "checkpoints", "deltas", "amp", "bound"
    );
    for s in &cache_scaling {
        let bound = if s.spacing == 0 {
            "-".to_string()
        } else {
            format!("{}", 1 + s.spacing)
        };
        println!(
            "{:<8} {:>9} {:>9.3} {:>11.3} {:>13} {:>8} {:>8.3} {:>6}",
            s.spacing,
            s.cache_capacity,
            s.hit_rate,
            s.base_hit_rate,
            s.checkpoints_written,
            s.deltas_applied,
            s.read_amplification,
            bound
        );
    }

    println!(
        "\n{:<12} {:>9} {:>7} {:>12} {:>8} {:>12} {:>9} {:>9} {:>9} {:>7}",
        "connections",
        "pipeline",
        "mode",
        "requests",
        "errors",
        "req/s",
        "p50_us",
        "p99_us",
        "max_us",
        "backend"
    );
    for s in &server_scaling {
        println!(
            "{:<12} {:>9} {:>7} {:>12} {:>8} {:>12.0} {:>9} {:>9} {:>9} {:>7}",
            s.connections,
            s.pipeline,
            if s.cached { "cached" } else { "cold" },
            s.requests,
            s.errors,
            s.req_per_s,
            s.p50_us,
            s.p99_us,
            s.max_us,
            s.backend
        );
    }
    // Headline: the pipelining gain at the largest cached connection count.
    let cached_at = |conns: usize, pipeline: usize| {
        server_scaling
            .iter()
            .filter(|s| s.cached && s.pipeline == pipeline)
            .min_by_key(|s| s.connections.abs_diff(conns))
    };
    let top_conns = server_scaling
        .iter()
        .filter(|s| s.cached)
        .map(|s| s.connections)
        .max()
        .unwrap_or(1);
    if let (Some(unpipelined), Some(pipelined)) = (cached_at(top_conns, 1), cached_at(top_conns, 16)) {
        println!(
            "\nwire GETs @ {} connections: pipelined {:.0} req/s vs unpipelined {:.0} req/s → {:.1}×",
            pipelined.connections,
            pipelined.req_per_s,
            unpipelined.req_per_s,
            pipelined.req_per_s / unpipelined.req_per_s.max(1.0)
        );
    }

    // Headline speedup: byte vs per-symbol encode for the (6,3) code at the
    // largest measured shard size.
    let headline_size = *sizes.last().expect("at least one size");
    let find = |path: &str| {
        samples
            .iter()
            .find(|s| s.op == "encode" && s.path == path && s.k == 3 && s.shard_bytes == headline_size)
    };
    let speedup = match (find("byte"), find("per-symbol")) {
        (Some(byte), Some(scalar)) => {
            let speedup = scalar.ns_per_op / byte.ns_per_op;
            println!(
                "\n(6,3) encode @ {} B shards: byte path {:.1} MB/s vs per-symbol {:.1} MB/s → {speedup:.1}×",
                headline_size, byte.mb_per_s, scalar.mb_per_s
            );
            Some(speedup)
        }
        _ => None,
    };

    // Kernel headline: each SIMD kernel's (6,3) encode speedup over scalar at
    // the largest kernel-series shard size.
    let kernel_headline = *kernel_sizes.last().expect("at least one size");
    let kernel_encode = |name: &str| {
        kernel_samples.iter().find(|s| {
            s.kernel == name && s.op == "encode" && s.k == 3 && s.shard_bytes == kernel_headline
        })
    };
    if let Some(scalar) = kernel_encode("scalar") {
        for kernel in Kernel::available() {
            if kernel.name() == "scalar" {
                continue;
            }
            if let Some(simd) = kernel_encode(kernel.name()) {
                println!(
                    "(6,3) encode @ {} B shards: {} {:.1} MB/s vs scalar {:.1} MB/s → {:.1}×",
                    kernel_headline,
                    kernel.name(),
                    simd.mb_per_s,
                    scalar.mb_per_s,
                    scalar.ns_per_op / simd.ns_per_op
                );
            }
        }
    }

    // JSON emission (hand-rolled; the workspace has no serde).
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"schema\": \"sec-bench-throughput/v7\",").unwrap();
    writeln!(json, "  \"smoke\": {},", args.smoke).unwrap();
    writeln!(json, "  \"active_kernel\": \"{auto_kernel}\",").unwrap();
    writeln!(json, "  \"headline_shard_bytes\": {headline_size},").unwrap();
    match speedup {
        Some(s) => writeln!(json, "  \"encode_6_3_speedup_byte_vs_per_symbol\": {s:.3},").unwrap(),
        None => writeln!(json, "  \"encode_6_3_speedup_byte_vs_per_symbol\": null,").unwrap(),
    }
    writeln!(json, "  \"results\": [").unwrap();
    for (idx, s) in samples.iter().enumerate() {
        let comma = if idx + 1 == samples.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"op\": \"{}\", \"path\": \"{}\", \"n\": {}, \"k\": {}, \"shard_bytes\": {}, \
             \"object_bytes\": {}, \"ns_per_op\": {:.1}, \"mb_per_s\": {:.3}}}{comma}",
            s.op,
            s.path,
            s.n,
            s.k,
            s.shard_bytes,
            s.k * s.shard_bytes,
            s.ns_per_op,
            s.mb_per_s
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"kernel_dispatch\": [").unwrap();
    for (idx, s) in kernel_samples.iter().enumerate() {
        let comma = if idx + 1 == kernel_samples.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"op\": \"{}\", \"n\": {}, \"k\": {}, \"shard_bytes\": {}, \
             \"object_bytes\": {}, \"ns_per_op\": {:.1}, \"mb_per_s\": {:.3}}}{comma}",
            s.kernel,
            s.op,
            s.n,
            s.k,
            s.shard_bytes,
            s.k * s.shard_bytes,
            s.ns_per_op,
            s.mb_per_s
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"read_scaling\": [").unwrap();
    for (idx, s) in scaling.iter().enumerate() {
        let comma = if idx + 1 == scaling.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"engine\": \"sec-engine\", \"n\": 6, \"k\": 3, \"strategy\": \"basic-sec\", \
             \"versions\": {scaling_versions}, \"threads\": {}, \"shard_bytes\": {}, \
             \"retrievals\": {}, \"retrievals_per_s\": {:.1}, \"mb_per_s\": {:.3}}}{comma}",
            s.threads, s.shard_bytes, s.retrievals, s.retrievals_per_s, s.mb_per_s
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"shard_scaling\": [").unwrap();
    for (idx, s) in shard_scaling.iter().enumerate() {
        let comma = if idx + 1 == shard_scaling.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"engine\": \"sec-cluster\", \"n\": 6, \"k\": 3, \"strategy\": \"basic-sec\", \
             \"shards\": {}, \"objects\": {}, \"versions\": {cluster_versions}, \"threads\": {}, \
             \"shard_bytes\": {}, \"retrievals\": {}, \"retrievals_per_s\": {:.1}, \
             \"mb_per_s\": {:.3}}}{comma}",
            s.shards, s.objects, s.threads, s.shard_bytes, s.retrievals, s.retrievals_per_s, s.mb_per_s
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"placement_scaling\": [").unwrap();
    for (idx, s) in placement_scaling.iter().enumerate() {
        let comma = if idx + 1 == placement_scaling.len() {
            ""
        } else {
            ","
        };
        writeln!(
            json,
            "    {{\"engine\": \"sec-engine\", \"n\": 6, \"k\": 3, \"strategy\": \"basic-sec\", \
             \"placement\": \"{}\", \"versions\": {placement_versions}, \"threads\": {}, \
             \"nodes\": {}, \"failed_nodes\": {}, \"shard_bytes\": {}, \"retrievals\": {}, \
             \"retrievals_per_s\": {:.1}, \"mb_per_s\": {:.3}}}{comma}",
            s.placement,
            s.threads,
            s.nodes,
            s.failed_nodes,
            s.shard_bytes,
            s.retrievals,
            { s.retrievals_per_s },
            s.mb_per_s
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"cache_scaling\": [").unwrap();
    for (idx, s) in cache_scaling.iter().enumerate() {
        let comma = if idx + 1 == cache_scaling.len() { "" } else { "," };
        let bound = if s.spacing == 0 {
            "null".to_string()
        } else {
            (1 + s.spacing).to_string()
        };
        writeln!(
            json,
            "    {{\"engine\": \"sec-engine\", \"n\": 6, \"k\": 3, \"strategy\": \"basic-sec\", \
             \"versions\": {}, \"checkpoint_spacing\": {}, \"cache_capacity\": {}, \
             \"retrievals\": {}, \"hit_rate\": {:.4}, \"base_hit_rate\": {:.4}, \
             \"deltas_applied\": {}, \"checkpoints_written\": {}, \"read_amplification\": {:.4}, \
             \"amplification_bound\": {bound}, \"retrievals_per_s\": {:.1}}}{comma}",
            s.versions,
            s.spacing,
            s.cache_capacity,
            s.retrievals,
            s.hit_rate,
            s.base_hit_rate,
            s.deltas_applied,
            s.checkpoints_written,
            s.read_amplification,
            s.retrievals_per_s
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"server_scaling\": [").unwrap();
    for (idx, s) in server_scaling.iter().enumerate() {
        let comma = if idx + 1 == server_scaling.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"engine\": \"sec-net\", \"n\": 6, \"k\": 3, \"strategy\": \"basic-sec\", \
             \"backend\": \"{}\", \"connections\": {}, \"pipeline\": {}, \"mode\": \"{}\", \
             \"requests\": {}, \"errors\": {}, \"req_per_s\": {:.1}, \"p50_us\": {}, \
             \"p99_us\": {}, \"max_us\": {}}}{comma}",
            s.backend,
            s.connections,
            s.pipeline,
            if s.cached { "cached" } else { "cold" },
            s.requests,
            s.errors,
            s.req_per_s,
            s.p50_us,
            s.p99_us,
            s.max_us
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&args.out, json)?;
    println!("(json written to {})", args.out);
    Ok(())
}
