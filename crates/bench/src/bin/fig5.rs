//! Fig. 5 — average I/O reads `μ_γ` to retrieve the sparse object `z_2` for
//! the (10, 5) code, γ = 1 (left plot) and γ = 2 (right plot).
//!
//! Run with `cargo run -p sec-bench --bin fig5`.

use sec_analysis::io::{average_io_exact, IoScheme};
use sec_bench::{fmt_float, probability_grid, ExperimentArgs, ResultTable};
use sec_erasure::{GeneratorForm, SecCode};
use sec_gf::Gf1024;

fn main() -> std::io::Result<()> {
    let args = ExperimentArgs::from_env();
    let systematic: SecCode<Gf1024> =
        SecCode::cauchy(10, 5, GeneratorForm::Systematic).expect("(10,5) fits in GF(1024)");
    let non_systematic: SecCode<Gf1024> =
        SecCode::cauchy(10, 5, GeneratorForm::NonSystematic).expect("(10,5) fits in GF(1024)");

    let mut table = ResultTable::new(
        "Fig. 5: average I/O reads mu_gamma for z2, (10,5) code",
        &[
            "gamma",
            "p",
            "systematic_sec",
            "non_systematic_sec",
            "non_differential",
        ],
    );
    for gamma in [1usize, 2] {
        for p in probability_grid() {
            let sys = average_io_exact(&systematic, IoScheme::Sec(GeneratorForm::Systematic), gamma, p);
            let ns = average_io_exact(
                &non_systematic,
                IoScheme::Sec(GeneratorForm::NonSystematic),
                gamma,
                p,
            );
            let nd = average_io_exact(&non_systematic, IoScheme::NonDifferential, gamma, p);
            table.push_row(vec![
                gamma.to_string(),
                fmt_float(p, 2),
                fmt_float(sys.average_reads, 4),
                fmt_float(ns.average_reads, 4),
                fmt_float(nd.average_reads, 4),
            ]);
        }
    }
    table.emit(&args)?;
    println!(
        "\nExpected shape: non-systematic SEC flat at 2*gamma, non-differential flat at k = 5;\n\
         systematic SEC stays near 2*gamma for gamma = 1 up to p = 0.2, with a marginal increase\n\
         for gamma = 2 at high p (paper Fig. 5)."
    );
    Ok(())
}
