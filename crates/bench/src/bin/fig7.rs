//! Fig. 7 — average percentage reduction in I/O reads to access both versions
//! `x_1, x_2` compared to the non-differential scheme, as a function of the
//! sparsity-PMF parameter (α for truncated Exponential, λ for truncated
//! Poisson), for the (6, 3) code.
//!
//! Run with `cargo run -p sec-bench --bin fig7`.

use sec_analysis::expected_io::{expected_joint_reads, joint_read_reduction_percent};
use sec_bench::{fmt_float, ExperimentArgs, ResultTable};
use sec_erasure::{CodeParams, GeneratorForm};
use sec_versioning::IoModel;
use sec_workload::SparsityPmf;

fn main() -> std::io::Result<()> {
    let args = ExperimentArgs::from_env();
    let model = IoModel::new(
        CodeParams::new(6, 3).expect("valid (6,3)"),
        GeneratorForm::NonSystematic,
    );
    let k = 3usize;

    let mut table = ResultTable::new(
        "Fig. 7: % reduction in I/O reads to access x1 and x2, (6,3) code",
        &[
            "family",
            "parameter",
            "expected_reads",
            "baseline_reads",
            "reduction_percent",
        ],
    );
    let alphas: Vec<f64> = (0..=16).map(|i| 0.1 * i as f64).filter(|a| *a > 0.0).collect();
    for &alpha in &alphas {
        let pmf = SparsityPmf::truncated_exponential(alpha, k).expect("valid alpha");
        table.push_row(vec![
            "trunc-exponential".to_string(),
            fmt_float(alpha, 2),
            fmt_float(expected_joint_reads(&model, &pmf), 4),
            "6".to_string(),
            fmt_float(joint_read_reduction_percent(&model, &pmf), 3),
        ]);
    }
    let lambdas: Vec<f64> = (3..=9).map(|i| i as f64).collect();
    for &lambda in &lambdas {
        let pmf = SparsityPmf::truncated_poisson(lambda, k).expect("valid lambda");
        table.push_row(vec![
            "trunc-poisson".to_string(),
            fmt_float(lambda, 1),
            fmt_float(expected_joint_reads(&model, &pmf), 4),
            "6".to_string(),
            fmt_float(joint_read_reduction_percent(&model, &pmf), 3),
        ]);
    }
    table.emit(&args)?;
    println!(
        "\nExpected shape: reduction grows from ~6% to ~14% as alpha goes 0.1 -> 1.6 (sparser deltas),\n\
         and shrinks from ~4.5% towards ~0.5% as lambda goes 3 -> 9 (denser deltas) — paper Fig. 7."
    );
    Ok(())
}
