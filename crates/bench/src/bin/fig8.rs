//! Fig. 8 — average percentage increase in I/O reads to access the second
//! version `x_2` alone (relative to non-differential coding), for the Basic
//! and Optimized SEC methods, as a function of the PMF parameter, (6, 3) code.
//!
//! Run with `cargo run -p sec-bench --bin fig8`.

use sec_analysis::expected_io::second_version_increase_percent;
use sec_bench::{fmt_float, ExperimentArgs, ResultTable};
use sec_erasure::{CodeParams, GeneratorForm};
use sec_versioning::{EncodingStrategy, IoModel};
use sec_workload::SparsityPmf;

fn main() -> std::io::Result<()> {
    let args = ExperimentArgs::from_env();
    let model = IoModel::new(
        CodeParams::new(6, 3).expect("valid (6,3)"),
        GeneratorForm::NonSystematic,
    );
    let k = 3usize;

    let mut table = ResultTable::new(
        "Fig. 8: % increase in I/O reads to access x2 alone, (6,3) code",
        &[
            "family",
            "parameter",
            "basic_sec_percent",
            "optimized_sec_percent",
        ],
    );
    let alphas: Vec<f64> = (0..=16).map(|i| 0.1 * i as f64).filter(|a| *a > 0.0).collect();
    for &alpha in &alphas {
        let pmf = SparsityPmf::truncated_exponential(alpha, k).expect("valid alpha");
        table.push_row(vec![
            "trunc-exponential".to_string(),
            fmt_float(alpha, 2),
            fmt_float(
                second_version_increase_percent(&model, EncodingStrategy::BasicSec, &pmf),
                3,
            ),
            fmt_float(
                second_version_increase_percent(&model, EncodingStrategy::OptimizedSec, &pmf),
                3,
            ),
        ]);
    }
    for lambda in [3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0] {
        let pmf = SparsityPmf::truncated_poisson(lambda, k).expect("valid lambda");
        table.push_row(vec![
            "trunc-poisson".to_string(),
            fmt_float(lambda, 1),
            fmt_float(
                second_version_increase_percent(&model, EncodingStrategy::BasicSec, &pmf),
                3,
            ),
            fmt_float(
                second_version_increase_percent(&model, EncodingStrategy::OptimizedSec, &pmf),
                3,
            ),
        ]);
    }
    table.emit(&args)?;
    println!(
        "\nExpected shape: Optimized SEC always pays less extra I/O for the latest version than\n\
         Basic SEC; the gap widens when deltas are dense (small alpha / large lambda) — paper Fig. 8."
    );
    Ok(())
}
