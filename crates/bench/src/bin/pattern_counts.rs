//! §IV-C / §V-A failure-pattern census — the counting argument behind Fig. 2:
//! out of 63 failure patterns of the (6, 3) example, 41 are recoverable by
//! the MDS property alone; non-systematic SEC additionally survives 15
//! (total 56) while systematic SEC additionally survives only 3 (total 44),
//! because only 3 of the 15 two-row submatrices of `G_S` satisfy Criterion 2.
//!
//! Run with `cargo run -p sec-bench --bin pattern_counts`.

use sec_analysis::patterns::census;
use sec_bench::{ExperimentArgs, ResultTable};
use sec_erasure::{CriteriaReport, GeneratorForm, SecCode};
use sec_gf::Gf1024;

fn main() -> std::io::Result<()> {
    let args = ExperimentArgs::from_env();
    let non_systematic: SecCode<Gf1024> =
        SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).expect("(6,3) fits in GF(1024)");
    let systematic: SecCode<Gf1024> =
        SecCode::cauchy(6, 3, GeneratorForm::Systematic).expect("(6,3) fits in GF(1024)");

    let mut table = ResultTable::new(
        "Failure-pattern census, (6,3) code, gamma = 1",
        &[
            "scheme",
            "criterion2_subsets",
            "total_2row_subsets",
            "total_patterns",
            "mds_recoverable",
            "sparse_only",
            "total_recoverable",
        ],
    );
    for (name, code) in [
        ("non-systematic SEC", &non_systematic),
        ("systematic SEC", &systematic),
    ] {
        let report = CriteriaReport::for_code(code);
        let g1 = report.gamma(1).expect("gamma = 1 is exploitable for k = 3");
        let c = census(code, 1);
        table.push_row(vec![
            name.to_string(),
            g1.qualifying_subsets.to_string(),
            g1.total_subsets.to_string(),
            c.total_patterns.to_string(),
            c.mds_recoverable.to_string(),
            c.sparse_only_recoverable.to_string(),
            c.recoverable().to_string(),
        ]);
    }
    table.emit(&args)?;
    println!(
        "\nPaper values: 15 vs 3 qualifying submatrices; 63 patterns, 41 MDS-recoverable,\n\
         56 recoverable for non-systematic SEC and 44 for systematic SEC."
    );
    Ok(())
}
