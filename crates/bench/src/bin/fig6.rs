//! Fig. 6 — the truncated Exponential and truncated Poisson PMFs on the
//! sparsity support `{1, 2, 3}` used by the §V-B expected-I/O study.
//!
//! Run with `cargo run -p sec-bench --bin fig6`.

use sec_bench::{fmt_float, ExperimentArgs, ResultTable};
use sec_workload::SparsityPmf;

fn main() -> std::io::Result<()> {
    let args = ExperimentArgs::from_env();
    let k = 3usize;

    let mut table = ResultTable::new(
        "Fig. 6: sparsity PMFs on {1,2,3}",
        &["family", "parameter", "P(1)", "P(2)", "P(3)", "mean"],
    );
    for alpha in [1.6, 1.1, 0.6, 0.1] {
        let pmf = SparsityPmf::truncated_exponential(alpha, k).expect("valid alpha");
        table.push_row(vec![
            "trunc-exponential".to_string(),
            fmt_float(alpha, 1),
            fmt_float(pmf.probability(1), 4),
            fmt_float(pmf.probability(2), 4),
            fmt_float(pmf.probability(3), 4),
            fmt_float(pmf.mean(), 4),
        ]);
    }
    for lambda in [3.0, 5.0, 7.0, 9.0] {
        let pmf = SparsityPmf::truncated_poisson(lambda, k).expect("valid lambda");
        table.push_row(vec![
            "trunc-poisson".to_string(),
            fmt_float(lambda, 1),
            fmt_float(pmf.probability(1), 4),
            fmt_float(pmf.probability(2), 4),
            fmt_float(pmf.probability(3), 4),
            fmt_float(pmf.mean(), 4),
        ]);
    }
    table.emit(&args)?;
    println!(
        "\nExpected shape: exponential PMFs concentrate on gamma = 1 (more so for larger alpha);\n\
         Poisson PMFs concentrate on gamma = 3 (more so for larger lambda) — paper Fig. 6."
    );
    Ok(())
}
