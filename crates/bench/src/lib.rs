//! Shared helpers for the SEC experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper.
//! They print a human-readable table mirroring the paper's axes and, when
//! `--csv <path>` is passed, also write the raw series as CSV for plotting.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

use std::fs::File;
use std::io::{self, Write};
use std::path::PathBuf;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, Default)]
pub struct ExperimentArgs {
    /// Optional CSV output path (`--csv <path>`).
    pub csv: Option<PathBuf>,
    /// Optional Monte-Carlo trial count override (`--trials <n>`).
    pub trials: Option<usize>,
}

impl ExperimentArgs {
    /// Parses the process arguments, ignoring anything it does not recognize.
    pub fn from_env() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--csv" => out.csv = args.next().map(PathBuf::from),
                "--trials" => out.trials = args.next().and_then(|v| v.parse().ok()),
                _ => {}
            }
        }
        out
    }
}

/// A simple rectangular result table: a header plus rows of equal length.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table with the given title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row/header length mismatch");
        self.rows.push(row);
    }

    /// Convenience for rows of displayable values.
    pub fn push<T: ToString>(&mut self, row: &[T]) {
        self.push_row(row.iter().map(ToString::to_string).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i] + 2))
                .collect::<String>()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(w, "{}", row.join(","))?;
        }
        Ok(())
    }

    /// Prints the table to stdout and, if requested, writes the CSV file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn emit(&self, args: &ExperimentArgs) -> io::Result<()> {
        print!("{}", self.render());
        if let Some(path) = &args.csv {
            let file = File::create(path)?;
            self.write_csv(file)?;
            println!("(csv written to {})", path.display());
        }
        Ok(())
    }
}

/// The probability grid used by the resilience figures: 0.01 to 0.20.
pub fn probability_grid() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.01).collect()
}

/// Formats a float with a fixed number of significant digits for table output.
pub fn fmt_float(v: f64, decimals: usize) -> String {
    if v.abs() < 1e-3 && v != 0.0 {
        format!("{v:.3e}")
    } else {
        format!("{v:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_csv() {
        let mut t = ResultTable::new("demo", &["p", "value"]);
        assert!(t.is_empty());
        t.push(&[0.1, 2.5]);
        t.push_row(vec!["0.2".into(), "3.5".into()]);
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("value"));
        assert!(rendered.contains("3.5"));
        let mut csv = Vec::new();
        t.write_csv(&mut csv).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("p,value"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_row_panics() {
        let mut t = ResultTable::new("demo", &["a", "b"]);
        t.push(&[1]);
    }

    #[test]
    fn helpers() {
        let grid = probability_grid();
        assert_eq!(grid.len(), 20);
        assert!((grid[0] - 0.01).abs() < 1e-12);
        assert!((grid[19] - 0.2).abs() < 1e-12);
        assert_eq!(fmt_float(0.5, 2), "0.50");
        assert!(fmt_float(1.2e-7, 2).contains('e'));
        assert_eq!(fmt_float(0.0, 1), "0.0");
    }
}
