//! End-to-end versioning benchmarks: appending versions and retrieving whole
//! archives under each encoding strategy, plus the analytical machinery used
//! by the resilience figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sec_analysis::io::{average_io_exact, IoScheme};
use sec_analysis::resilience::prob_lose_sparse_exact;
use sec_erasure::{GeneratorForm, SecCode};
use sec_gf::Gf1024;
use sec_versioning::{ArchiveConfig, EncodingStrategy, VersionedArchive};
use sec_workload::{EditModel, TraceConfig, VersionTrace};

fn trace(versions: usize) -> Vec<Vec<Gf1024>> {
    let config = TraceConfig::new(10, versions, EditModel::Localized { max_run: 3 });
    let mut rng = StdRng::seed_from_u64(7);
    VersionTrace::<Gf1024>::generate(&config, &mut rng).versions
}

fn bench_append_and_retrieve(c: &mut Criterion) {
    let mut group = c.benchmark_group("archive");
    let versions = trace(10);
    for strategy in [
        EncodingStrategy::BasicSec,
        EncodingStrategy::OptimizedSec,
        EncodingStrategy::ReversedSec,
        EncodingStrategy::NonDifferential,
    ] {
        group.bench_with_input(
            BenchmarkId::new("append_10_versions", format!("{strategy}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let config =
                        ArchiveConfig::new(20, 10, GeneratorForm::NonSystematic, strategy).unwrap();
                    let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config).unwrap();
                    archive.append_all(std::hint::black_box(&versions)).unwrap();
                    archive
                });
            },
        );
        let config = ArchiveConfig::new(20, 10, GeneratorForm::NonSystematic, strategy).unwrap();
        let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config).unwrap();
        archive.append_all(&versions).unwrap();
        group.bench_with_input(
            BenchmarkId::new("retrieve_all_versions", format!("{strategy}")),
            &archive,
            |b, archive| {
                b.iter(|| archive.retrieve_prefix(std::hint::black_box(10)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    let sys: SecCode<Gf1024> = SecCode::cauchy(10, 5, GeneratorForm::Systematic).unwrap();
    group.bench_function("exact_loss_probability_10x5", |b| {
        b.iter(|| prob_lose_sparse_exact(std::hint::black_box(&sys), 2, 0.1));
    });
    group.bench_function("exact_average_io_10x5", |b| {
        b.iter(|| {
            average_io_exact(
                std::hint::black_box(&sys),
                IoScheme::Sec(GeneratorForm::Systematic),
                2,
                0.1,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_append_and_retrieve, bench_analysis);
criterion_main!(benches);
