//! Byte-shard pipeline throughput under the criterion harness: the batched
//! `GF(2^8)` fast path against the generic `Vec<Gf256>` reference, for the
//! paper's `(6, 3)` code over 64 KiB shards.
//!
//! The `throughput` *binary* (`cargo run --release -p sec-bench --bin
//! throughput`) covers the full `k × shard-size` matrix and emits
//! `BENCH_throughput.json`; this harness keeps the headline comparisons
//! runnable through `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sec_erasure::{shards, ByteCodec, ByteShards, GeneratorForm, SecCode};
use sec_gf::{bulk, Gf256};

const SHARD_BYTES: usize = 64 * 1024;
const K: usize = 3;
const N: usize = 6;

fn test_object() -> Vec<u8> {
    (0..K * SHARD_BYTES).map(|i| (i * 131 + 89) as u8).collect()
}

fn bench_byte_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_encode_6x3_64k");
    group.throughput(Throughput::Bytes((K * SHARD_BYTES) as u64));

    let code: SecCode<Gf256> = SecCode::cauchy(N, K, GeneratorForm::NonSystematic).unwrap();
    let data = ByteShards::from_flat(&test_object(), K);
    let codec = ByteCodec::new(code.clone());
    let mut out = ByteShards::zeroed(N, SHARD_BYTES);
    group.bench_function("byte_pipeline", |b| {
        b.iter(|| {
            codec
                .encode_blocks_into(std::hint::black_box(&data), &mut out)
                .unwrap()
        });
    });

    let sym_data: Vec<Vec<Gf256>> = (0..K).map(|i| bulk::bytes_to_symbols(data.shard(i))).collect();
    group.bench_function("generic_bulk", |b| {
        b.iter(|| shards::encode_shards(&code, std::hint::black_box(&sym_data)).unwrap());
    });
    group.finish();
}

fn bench_byte_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_decode_6x3_64k");
    group.throughput(Throughput::Bytes((K * SHARD_BYTES) as u64));

    let code: SecCode<Gf256> = SecCode::cauchy(N, K, GeneratorForm::NonSystematic).unwrap();
    let codec = ByteCodec::new(code.clone());
    let data = ByteShards::from_flat(&test_object(), K);
    let coded = codec.encode_blocks(&data).unwrap();
    let byte_shares: Vec<(usize, &[u8])> = [1usize, 3, 5].iter().map(|&i| (i, coded.shard(i))).collect();
    group.bench_function("byte_pipeline", |b| {
        b.iter(|| codec.decode_blocks(std::hint::black_box(&byte_shares)).unwrap());
    });

    let sym_coded: Vec<Vec<Gf256>> = (0..N).map(|i| bulk::bytes_to_symbols(coded.shard(i))).collect();
    let sym_shares: Vec<(usize, Vec<Gf256>)> = [1usize, 3, 5]
        .iter()
        .map(|&i| (i, sym_coded[i].clone()))
        .collect();
    group.bench_function("generic_bulk", |b| {
        b.iter(|| shards::decode_shards(&code, std::hint::black_box(&sym_shares)).unwrap());
    });
    group.finish();
}

fn bench_sparse_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_sparse_recover_6x3_64k");
    group.throughput(Throughput::Bytes((K * SHARD_BYTES) as u64));

    let code: SecCode<Gf256> = SecCode::cauchy(N, K, GeneratorForm::NonSystematic).unwrap();
    let codec = ByteCodec::new(code);
    let mut delta = ByteShards::zeroed(K, SHARD_BYTES);
    delta.shard_mut(1).copy_from_slice(&test_object()[..SHARD_BYTES]);
    let coded = codec.encode_blocks(&delta).unwrap();
    let shares: Vec<(usize, &[u8])> = vec![(2, coded.shard(2)), (4, coded.shard(4))];
    group.bench_function("byte_pipeline_2_reads", |b| {
        b.iter(|| {
            codec
                .recover_sparse_blocks(std::hint::black_box(&shares), 1)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_byte_encode,
    bench_byte_decode,
    bench_sparse_recovery
);
criterion_main!(benches);
