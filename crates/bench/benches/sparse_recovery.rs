//! Sparse-recovery decoder cost: recovering a γ-sparse delta from 2γ coded
//! symbols (support search) versus a full k-symbol MDS decode — the ablation
//! for SEC's central design choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sec_erasure::read_plan::{plan_read, ReadTarget};
use sec_erasure::{GeneratorForm, SecCode, Share};
use sec_gf::{GaloisField, Gf1024};

fn sparse_delta(k: usize, support: &[usize]) -> Vec<Gf1024> {
    let mut z = vec![Gf1024::ZERO; k];
    for (i, &pos) in support.iter().enumerate() {
        z[pos] = Gf1024::from_u64(100 + i as u64);
    }
    z
}

fn bench_sparse_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_full_decode");
    let code: SecCode<Gf1024> = SecCode::cauchy(20, 10, GeneratorForm::NonSystematic).unwrap();
    for gamma in [1usize, 2, 3, 4] {
        let support: Vec<usize> = (0..gamma).map(|i| i * 2 + 1).collect();
        let z = sparse_delta(10, &support);
        let cw = code.encode(&z).unwrap();
        let sparse_shares: Vec<Share<Gf1024>> = (0..2 * gamma).map(|i| (i, cw[i])).collect();
        let full_shares: Vec<Share<Gf1024>> = (0..10).map(|i| (i, cw[i])).collect();
        group.bench_with_input(
            BenchmarkId::new("sparse_2gamma_reads", gamma),
            &gamma,
            |b, &gamma| {
                b.iter(|| {
                    code.decode_sparse(std::hint::black_box(&sparse_shares), gamma)
                        .unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("full_k_reads", gamma), &gamma, |b, _| {
            b.iter(|| code.decode_full(std::hint::black_box(&full_shares)).unwrap());
        });
    }
    group.finish();
}

fn bench_read_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_planning");
    let systematic: SecCode<Gf1024> = SecCode::cauchy(20, 10, GeneratorForm::Systematic).unwrap();
    let non_systematic: SecCode<Gf1024> = SecCode::cauchy(20, 10, GeneratorForm::NonSystematic).unwrap();
    // Live set missing a few parity nodes, forcing the systematic planner to search.
    let live: Vec<usize> = (0..20).filter(|&i| i != 10 && i != 12 && i != 14).collect();
    for gamma in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("non_systematic", gamma), &gamma, |b, &gamma| {
            b.iter(|| {
                plan_read(
                    &non_systematic,
                    std::hint::black_box(&live),
                    ReadTarget::Sparse { gamma },
                )
                .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("systematic", gamma), &gamma, |b, &gamma| {
            b.iter(|| {
                plan_read(
                    &systematic,
                    std::hint::black_box(&live),
                    ReadTarget::Sparse { gamma },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_vs_full, bench_read_planning);
criterion_main!(benches);
