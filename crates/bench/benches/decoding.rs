//! Full (MDS) decoding throughput: recover a k-symbol object from k coded
//! symbols by submatrix inversion, for systematic fast path vs general
//! inversion, and shard-level decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sec_erasure::{shards, GeneratorForm, SecCode, Share};
use sec_gf::{GaloisField, Gf1024, Gf256};

fn bench_full_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_full");
    for (n, k) in [(6usize, 3usize), (10, 5), (20, 10)] {
        let code: SecCode<Gf1024> = SecCode::cauchy(n, k, GeneratorForm::NonSystematic).unwrap();
        let data: Vec<Gf1024> = (0..k as u64).map(|v| Gf1024::from_u64(v + 11)).collect();
        let cw = code.encode(&data).unwrap();
        // Use the last k shares so the decode always needs a real inversion.
        let shares: Vec<Share<Gf1024>> = (n - k..n).map(|i| (i, cw[i])).collect();
        group.bench_with_input(
            BenchmarkId::new("inversion", format!("{n}x{k}")),
            &shares,
            |b, shares| {
                b.iter(|| code.decode_full(std::hint::black_box(shares)).unwrap());
            },
        );
    }
    let sys: SecCode<Gf1024> = SecCode::cauchy(10, 5, GeneratorForm::Systematic).unwrap();
    let data: Vec<Gf1024> = (0..5u64).map(|v| Gf1024::from_u64(v + 11)).collect();
    let cw = sys.encode(&data).unwrap();
    let systematic_shares: Vec<Share<Gf1024>> = (0..5).map(|i| (i, cw[i])).collect();
    group.bench_function("systematic_fast_path_10x5", |b| {
        b.iter(|| sys.decode_full(std::hint::black_box(&systematic_shares)).unwrap());
    });
    group.finish();
}

fn bench_shard_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_shards");
    const SHARD_LEN: usize = 4096;
    let code: SecCode<Gf256> = SecCode::cauchy(10, 5, GeneratorForm::NonSystematic).unwrap();
    let data: Vec<Vec<Gf256>> = (0..5)
        .map(|i| {
            (0..SHARD_LEN)
                .map(|j| Gf256::from_u64((i + 3 * j) as u64))
                .collect()
        })
        .collect();
    let coded = shards::encode_shards(&code, &data).unwrap();
    let survivors: Vec<(usize, Vec<Gf256>)> = (5..10).map(|i| (i, coded[i].clone())).collect();
    group.throughput(Throughput::Elements((5 * SHARD_LEN) as u64));
    group.bench_function("gf256_10x5_4k_parity_only", |b| {
        b.iter(|| shards::decode_shards(&code, std::hint::black_box(&survivors)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_full_decode, bench_shard_decode);
criterion_main!(benches);
