//! Encoding throughput: symbol-level and shard-level encoding for the code
//! shapes used in the paper ((6,3), (10,5), (20,10)) and for different field
//! widths, plus the Cauchy code-construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sec_erasure::{shards, GeneratorForm, SecCode};
use sec_gf::{GaloisField, Gf1024, Gf256, Gf65536};

fn bench_symbol_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_symbols");
    for (n, k) in [(6usize, 3usize), (10, 5), (20, 10)] {
        let code: SecCode<Gf1024> = SecCode::cauchy(n, k, GeneratorForm::NonSystematic).unwrap();
        let data: Vec<Gf1024> = (0..k as u64).map(|v| Gf1024::from_u64(v * 7 + 1)).collect();
        group.bench_with_input(
            BenchmarkId::new("cauchy_gf1024", format!("{n}x{k}")),
            &code,
            |b, code| {
                b.iter(|| code.encode(std::hint::black_box(&data)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_shard_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_shards");
    const SHARD_LEN: usize = 4096;
    fn run<F: GaloisField>(
        group: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>,
        name: &str,
    ) {
        let code: SecCode<F> = SecCode::cauchy(10, 5, GeneratorForm::Systematic).unwrap();
        let data: Vec<Vec<F>> = (0..5)
            .map(|i| (0..SHARD_LEN).map(|j| F::from_u64((i * j + 3) as u64)).collect())
            .collect();
        group.throughput(Throughput::Elements((5 * SHARD_LEN) as u64));
        group.bench_function(name, |b| {
            b.iter(|| shards::encode_shards(&code, std::hint::black_box(&data)).unwrap());
        });
    }
    run::<Gf256>(&mut group, "gf256_10x5_4k");
    run::<Gf1024>(&mut group, "gf1024_10x5_4k");
    run::<Gf65536>(&mut group, "gf65536_10x5_4k");
    group.finish();
}

fn bench_code_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("code_construction");
    for (n, k) in [(6usize, 3usize), (20, 10), (40, 20)] {
        group.bench_function(
            BenchmarkId::new("cauchy_non_systematic", format!("{n}x{k}")),
            |b| {
                b.iter(|| SecCode::<Gf65536>::cauchy(n, k, GeneratorForm::NonSystematic).unwrap());
            },
        );
        group.bench_function(BenchmarkId::new("cauchy_systematic", format!("{n}x{k}")), |b| {
            b.iter(|| SecCode::<Gf65536>::cauchy(n, k, GeneratorForm::Systematic).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_symbol_encode,
    bench_shard_encode,
    bench_code_construction
);
criterion_main!(benches);
