//! Runtime-dispatched SIMD kernels for the byte-shard `GF(2^8)` fast path.
//!
//! The [`bulk8`](crate::bulk8) split tables — `lo[x] = c·x`, `hi[x] = c·(x·16)`
//! — are exactly the layout the PSHUFB/TBL nibble-lookup technique wants: load
//! both 16-entry tables into vector registers once per coefficient, then each
//! 16/32-byte block of a shard costs two shuffles, a shift, two masks and a
//! XOR. This module provides those kernels for x86_64 (SSSE3 and AVX2) and
//! aarch64 (NEON), selected **at runtime** behind a dispatch table so a single
//! binary runs optimally everywhere and falls back to the portable scalar
//! loops on hosts without the features.
//!
//! # Dispatch contract
//!
//! * [`active_kernel`] names the kernel every `bulk8` entry point currently
//!   routes through. It is resolved once, on first use: the `SEC_GF_KERNEL`
//!   environment variable (`scalar|ssse3|avx2|neon|auto`) wins if set to a
//!   supported kernel, otherwise the best detected instruction set is chosen
//!   (AVX2 over SSSE3 over NEON over scalar).
//! * [`force_kernel`] / [`reset_kernel`] override the selection at runtime
//!   (tests, benchmarks); forcing an unsupported kernel is an error, so the
//!   dispatch table never holds a function pointer the host cannot execute.
//! * Every kernel is **bit-identical** to the scalar reference — the
//!   differential tests in this module and the crate's proptests enforce it —
//!   so switching kernels mid-run is always safe, merely faster or slower.
//!
//! Each [`Kernel`] also exposes checked per-kernel slice ops
//! ([`Kernel::mul_slice`] etc.) that bypass the global selection entirely;
//! the differential suite uses them to pin every compiled-in kernel against
//! [`Kernel::Scalar`] without touching process-wide state.
//!
//! See `docs/KERNELS.md` for the safety argument of each intrinsic block and
//! the checklist for adding a new ISA.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::bulk8::MulTable;

/// Environment variable consulted once, at first dispatch, to pin the kernel
/// (`scalar`, `ssse3`, `avx2`, `neon`, or `auto`; case-insensitive).
///
/// Unknown or unsupported values fall back to auto-detection with a warning
/// on stderr rather than failing, so a stale override never breaks serving.
pub const KERNEL_ENV: &str = "SEC_GF_KERNEL";

/// Bytes of destination processed per strip by the fused drivers
/// ([`mul_multi_with`] / [`xor_accumulate_with`]): the destination strip
/// stays L1-resident while every source row is applied to it.
pub(crate) const DRIVER_STRIP: usize = 4096;

/// One implementation of the `GF(2^8)` slice kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Portable scalar loops over the flattened 256-entry table — the
    /// reference implementation every SIMD kernel is tested against.
    Scalar,
    /// x86_64 `PSHUFB` nibble lookups on 16-byte registers (SSSE3, 2006+).
    Ssse3,
    /// x86_64 `VPSHUFB` nibble lookups on 32-byte registers (AVX2, 2013+).
    Avx2,
    /// aarch64 `TBL` nibble lookups on 16-byte registers (`vqtbl1q_u8`).
    Neon,
}

impl Kernel {
    /// Every kernel this crate knows about, supported on this host or not.
    pub const ALL: [Kernel; 4] = [Kernel::Scalar, Kernel::Ssse3, Kernel::Avx2, Kernel::Neon];

    /// The kernel's lower-case name as accepted by [`KERNEL_ENV`].
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Ssse3 => "ssse3",
            Kernel::Avx2 => "avx2",
            Kernel::Neon => "neon",
        }
    }

    /// Parses a kernel name (case-insensitive). `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Kernel> {
        Kernel::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Whether this kernel can execute on the current host (compiled in for
    /// this architecture *and* the CPU reports the instruction set).
    pub fn is_supported(self) -> bool {
        match self {
            Kernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// All kernels supported on this host, scalar first.
    pub fn available() -> Vec<Kernel> {
        Kernel::ALL.into_iter().filter(|k| k.is_supported()).collect()
    }

    /// Computes `dst[i] = table.mul(src[i])` with this kernel, bypassing the
    /// global dispatch. Raw table op: no `c = 0` / `c = 1` fast paths.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedKernel`] when the host cannot run this kernel.
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` have different lengths.
    pub fn mul_slice(
        self,
        table: &MulTable,
        src: &[u8],
        dst: &mut [u8],
    ) -> Result<(), UnsupportedKernel> {
        crate::bulk8::assert_slice_lengths("mul_slice", dst.len(), src.len());
        (self.checked_ops()?.mul)(table, src, dst);
        Ok(())
    }

    /// Computes `dst[i] ^= table.mul(src[i])` with this kernel, bypassing the
    /// global dispatch. Raw table op: no `c = 0` / `c = 1` fast paths.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedKernel`] when the host cannot run this kernel.
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` have different lengths.
    pub fn mul_add_slice(
        self,
        table: &MulTable,
        src: &[u8],
        dst: &mut [u8],
    ) -> Result<(), UnsupportedKernel> {
        crate::bulk8::assert_slice_lengths("mul_add_slice", dst.len(), src.len());
        (self.checked_ops()?.mul_add)(table, src, dst);
        Ok(())
    }

    /// Computes `dst[i] ^= src[i]` with this kernel, bypassing the global
    /// dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedKernel`] when the host cannot run this kernel.
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` have different lengths.
    pub fn xor_slice(self, src: &[u8], dst: &mut [u8]) -> Result<(), UnsupportedKernel> {
        crate::bulk8::assert_slice_lengths("xor_accumulate", dst.len(), src.len());
        (self.checked_ops()?.xor)(src, dst);
        Ok(())
    }

    /// Fused multi-source product row (`dst[i] = Σ_j tables_j.mul(srcs_j[i])`,
    /// overwriting `dst`) with this kernel, bypassing the global dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedKernel`] when the host cannot run this kernel.
    ///
    /// # Panics
    ///
    /// Panics if any source length differs from `dst`.
    pub fn mul_multi(
        self,
        sources: &[(&MulTable, &[u8])],
        dst: &mut [u8],
    ) -> Result<(), UnsupportedKernel> {
        for (_, src) in sources {
            crate::bulk8::assert_slice_lengths("mul_multi", dst.len(), src.len());
        }
        mul_multi_with(self.checked_ops()?, sources, dst);
        Ok(())
    }

    /// Multi-row XOR accumulation (`dst[i] ^= src_1[i] ^ … ^ src_m[i]`) with
    /// this kernel, bypassing the global dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedKernel`] when the host cannot run this kernel.
    ///
    /// # Panics
    ///
    /// Panics if any source length differs from `dst`.
    pub fn xor_accumulate(self, dst: &mut [u8], srcs: &[&[u8]]) -> Result<(), UnsupportedKernel> {
        for src in srcs {
            crate::bulk8::assert_slice_lengths("xor_accumulate", dst.len(), src.len());
        }
        xor_accumulate_with(self.checked_ops()?, dst, srcs);
        Ok(())
    }

    fn checked_ops(self) -> Result<&'static KernelOps, UnsupportedKernel> {
        if self.is_supported() {
            Ok(ops_of(self))
        } else {
            Err(UnsupportedKernel { kernel: self })
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned by [`force_kernel`] and the per-kernel slice ops when the
/// requested kernel cannot execute on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedKernel {
    /// The kernel that is unavailable here.
    pub kernel: Kernel,
}

impl fmt::Display for UnsupportedKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel `{}` is not supported on this host", self.kernel.name())
    }
}

impl std::error::Error for UnsupportedKernel {}

/// The dispatch table: one function pointer per slice op. `mul_multi` and
/// `xor_accumulate` are derived by the strip drivers below, so a kernel only
/// has to supply the three primitive ops.
#[derive(Debug)]
pub(crate) struct KernelOps {
    /// `dst[i] = table.mul(src[i])`; lengths pre-checked equal by callers.
    pub(crate) mul: fn(&MulTable, &[u8], &mut [u8]),
    /// `dst[i] ^= table.mul(src[i])`; lengths pre-checked equal by callers.
    pub(crate) mul_add: fn(&MulTable, &[u8], &mut [u8]),
    /// `dst[i] ^= src[i]`; lengths pre-checked equal by callers.
    pub(crate) xor: fn(&[u8], &mut [u8]),
}

static SCALAR_OPS: KernelOps = KernelOps {
    mul: scalar::mul,
    mul_add: scalar::mul_add,
    xor: scalar::xor,
};

#[cfg(target_arch = "x86_64")]
static SSSE3_OPS: KernelOps = KernelOps {
    mul: ssse3::mul,
    mul_add: ssse3::mul_add,
    xor: ssse3::xor,
};

#[cfg(target_arch = "x86_64")]
static AVX2_OPS: KernelOps = KernelOps {
    mul: avx2::mul,
    mul_add: avx2::mul_add,
    xor: avx2::xor,
};

#[cfg(target_arch = "aarch64")]
static NEON_OPS: KernelOps = KernelOps {
    mul: neon::mul,
    mul_add: neon::mul_add,
    xor: neon::xor,
};

/// The ops table for `kernel`. Architecture-absent kernels map to scalar;
/// [`Kernel::checked_ops`] and [`force_kernel`] reject them before this
/// fallback can matter.
pub(crate) fn ops_of(kernel: Kernel) -> &'static KernelOps {
    match kernel {
        Kernel::Scalar => &SCALAR_OPS,
        #[cfg(target_arch = "x86_64")]
        Kernel::Ssse3 => &SSSE3_OPS,
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => &AVX2_OPS,
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon => &NEON_OPS,
        #[allow(unreachable_patterns)]
        _ => &SCALAR_OPS,
    }
}

/// The ops table the `bulk8` entry points route through right now.
pub(crate) fn active_ops() -> &'static KernelOps {
    ops_of(active_kernel())
}

/// Forced-kernel selector: 0 = auto (use [`detected`]), otherwise
/// `code_of(kernel)`. A plain byte because there is nothing to synchronize —
/// every kernel computes identical bytes, so racing readers are benign.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The auto-detected kernel, resolved once (env override, then CPU probe).
static DETECTED: OnceLock<Kernel> = OnceLock::new();

fn code_of(kernel: Kernel) -> u8 {
    match kernel {
        Kernel::Scalar => 1,
        Kernel::Ssse3 => 2,
        Kernel::Avx2 => 3,
        Kernel::Neon => 4,
    }
}

fn kernel_of(code: u8) -> Option<Kernel> {
    Kernel::ALL.into_iter().find(|&k| code_of(k) == code)
}

/// Best kernel the CPU supports: AVX2 over SSSE3 over NEON over scalar.
fn auto_detect() -> Kernel {
    [Kernel::Avx2, Kernel::Ssse3, Kernel::Neon]
        .into_iter()
        .find(|k| k.is_supported())
        .unwrap_or(Kernel::Scalar)
}

/// Resolves (once) the [`KERNEL_ENV`] override or the CPU probe.
fn detected() -> Kernel {
    *DETECTED.get_or_init(|| {
        let Ok(value) = std::env::var(KERNEL_ENV) else {
            return auto_detect();
        };
        let name = value.trim();
        if name.is_empty() || name.eq_ignore_ascii_case("auto") {
            return auto_detect();
        }
        match Kernel::from_name(name) {
            Some(kernel) if kernel.is_supported() => kernel,
            Some(kernel) => {
                eprintln!(
                    "sec-gf: {KERNEL_ENV}={name} requests kernel `{}`, which this host \
                     does not support; falling back to auto-detection",
                    kernel.name()
                );
                auto_detect()
            }
            None => {
                eprintln!(
                    "sec-gf: unknown {KERNEL_ENV} value {name:?} \
                     (expected scalar|ssse3|avx2|neon|auto); falling back to auto-detection"
                );
                auto_detect()
            }
        }
    })
}

/// The kernel every `bulk8` entry point currently dispatches to: the forced
/// selection if one is in effect, otherwise the once-resolved detection.
pub fn active_kernel() -> Kernel {
    // audit: atomic ok — one-byte kernel selector; every kernel computes bit-identical
    // results, so a racing reader merely runs a different-speed implementation
    match kernel_of(FORCED.load(Ordering::Relaxed)) {
        Some(kernel) => kernel,
        None => detected(),
    }
}

/// Forces all subsequent `bulk8` dispatch onto `kernel`, returning the
/// previously active kernel so callers (tests, benchmarks) can restore it.
///
/// # Errors
///
/// Returns [`UnsupportedKernel`] — and leaves the selection unchanged — when
/// the host cannot execute `kernel`, so the dispatch table never points at an
/// instruction set the CPU lacks.
pub fn force_kernel(kernel: Kernel) -> Result<Kernel, UnsupportedKernel> {
    if !kernel.is_supported() {
        return Err(UnsupportedKernel { kernel });
    }
    let previous = active_kernel();
    // audit: atomic ok — one-byte kernel selector; all kernels are bit-identical, so
    // readers that race this store compute the same bytes either way
    FORCED.store(code_of(kernel), Ordering::Relaxed);
    Ok(previous)
}

/// Clears any [`force_kernel`] override, returning dispatch to the
/// auto-detected (or [`KERNEL_ENV`]-pinned) kernel, which is also returned.
pub fn reset_kernel() -> Kernel {
    // audit: atomic ok — one-byte kernel selector; all kernels are bit-identical, so
    // readers that race this store compute the same bytes either way
    FORCED.store(0, Ordering::Relaxed);
    detected()
}

/// Fused multi-source product row over `ops`: `dst` is tiled into
/// [`DRIVER_STRIP`]-byte strips and every source row is applied to a strip
/// before moving to the next, so the destination strip stays L1-resident
/// across all `k` sources. Lengths must be pre-checked by the caller.
pub(crate) fn mul_multi_with(ops: &KernelOps, sources: &[(&MulTable, &[u8])], dst: &mut [u8]) {
    let Some((&(first_table, first_src), rest)) = sources.split_first() else {
        dst.fill(0);
        return;
    };
    let len = dst.len();
    let mut start = 0;
    while start < len {
        let end = (start + DRIVER_STRIP).min(len);
        let strip = &mut dst[start..end];
        (ops.mul)(first_table, &first_src[start..end], strip);
        for (table, src) in rest {
            (ops.mul_add)(table, &src[start..end], strip);
        }
        start = end;
    }
}

/// Multi-row XOR accumulation over `ops`, strip-tiled like
/// [`mul_multi_with`]. Lengths must be pre-checked by the caller.
pub(crate) fn xor_accumulate_with(ops: &KernelOps, dst: &mut [u8], srcs: &[&[u8]]) {
    let len = dst.len();
    let mut start = 0;
    while start < len {
        let end = (start + DRIVER_STRIP).min(len);
        let strip = &mut dst[start..end];
        for src in srcs {
            (ops.xor)(&src[start..end], strip);
        }
        start = end;
    }
}

/// Portable scalar kernels: flattened-table loops over [`CHUNK`]-byte blocks,
/// identical in structure to the pre-SIMD `bulk8` implementation. This is the
/// reference every SIMD kernel is differentially tested against.
///
/// [`CHUNK`]: crate::bulk8::CHUNK
mod scalar {
    use crate::bulk8::{MulTable, CHUNK};

    pub(super) fn mul(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        let mut d = dst.chunks_exact_mut(CHUNK);
        let mut s = src.chunks_exact(CHUNK);
        for (dc, sc) in (&mut d).zip(&mut s) {
            for i in 0..CHUNK {
                dc[i] = table.mul(sc[i]);
            }
        }
        for (db, &sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *db = table.mul(sb);
        }
    }

    pub(super) fn mul_add(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        let mut d = dst.chunks_exact_mut(CHUNK);
        let mut s = src.chunks_exact(CHUNK);
        for (dc, sc) in (&mut d).zip(&mut s) {
            for i in 0..CHUNK {
                dc[i] ^= table.mul(sc[i]);
            }
        }
        for (db, &sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *db ^= table.mul(sb);
        }
    }

    pub(super) fn xor(src: &[u8], dst: &mut [u8]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
    }
}

/// SSSE3 kernels: `PSHUFB` nibble lookups on 16-byte registers, two blocks
/// per iteration. Safe wrappers run the SIMD body over the largest 16-byte
/// prefix and finish the tail with the scalar table.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod ssse3 {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8, _mm_srli_epi16,
        _mm_storeu_si128, _mm_xor_si128,
    };

    use crate::bulk8::MulTable;

    /// One 16-lane shuffle multiply: `lo[x & 0xF] ^ hi[x >> 4]` per byte.
    /// `_mm_srli_epi16` shifts bits across byte-lane boundaries, so the high
    /// nibble is masked back to 4 bits before indexing the table.
    #[inline]
    #[target_feature(enable = "ssse3")]
    // audit: unsafe ok — pure register arithmetic (no memory access); only called from
    // SSSE3-gated fns that the dispatcher installs after is_x86_feature_detected!("ssse3")
    unsafe fn mul16(lo: __m128i, hi: __m128i, mask: __m128i, x: __m128i) -> __m128i {
        let lo_nib = _mm_and_si128(x, mask);
        let hi_nib = _mm_and_si128(_mm_srli_epi16::<4>(x), mask);
        _mm_xor_si128(_mm_shuffle_epi8(lo, lo_nib), _mm_shuffle_epi8(hi, hi_nib))
    }

    #[target_feature(enable = "ssse3")]
    // audit: unsafe ok — SSSE3 is guaranteed by the caller; every unaligned 16-byte
    // load/store offset i satisfies i + 16 <= len for both slices, whose lengths the
    // safe wrapper checked equal and trimmed to a multiple of 16
    unsafe fn mul_impl(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert_eq!(src.len() % 16, 0);
        let lo = _mm_loadu_si128(table.low_nibble().as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(table.high_nibble().as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        let (s, d, len) = (src.as_ptr(), dst.as_mut_ptr(), dst.len());
        let mut i = 0;
        while i + 32 <= len {
            let r0 = mul16(lo, hi, mask, _mm_loadu_si128(s.add(i) as *const __m128i));
            let r1 = mul16(lo, hi, mask, _mm_loadu_si128(s.add(i + 16) as *const __m128i));
            _mm_storeu_si128(d.add(i) as *mut __m128i, r0);
            _mm_storeu_si128(d.add(i + 16) as *mut __m128i, r1);
            i += 32;
        }
        if i < len {
            let r = mul16(lo, hi, mask, _mm_loadu_si128(s.add(i) as *const __m128i));
            _mm_storeu_si128(d.add(i) as *mut __m128i, r);
        }
    }

    #[target_feature(enable = "ssse3")]
    // audit: unsafe ok — SSSE3 is guaranteed by the caller; every unaligned 16-byte
    // load/store offset i satisfies i + 16 <= len for both slices, whose lengths the
    // safe wrapper checked equal and trimmed to a multiple of 16
    unsafe fn mul_add_impl(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert_eq!(src.len() % 16, 0);
        let lo = _mm_loadu_si128(table.low_nibble().as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(table.high_nibble().as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        let (s, d, len) = (src.as_ptr(), dst.as_mut_ptr(), dst.len());
        let mut i = 0;
        while i + 32 <= len {
            let r0 = mul16(lo, hi, mask, _mm_loadu_si128(s.add(i) as *const __m128i));
            let r1 = mul16(lo, hi, mask, _mm_loadu_si128(s.add(i + 16) as *const __m128i));
            let d0 = _mm_loadu_si128(d.add(i) as *const __m128i);
            let d1 = _mm_loadu_si128(d.add(i + 16) as *const __m128i);
            _mm_storeu_si128(d.add(i) as *mut __m128i, _mm_xor_si128(d0, r0));
            _mm_storeu_si128(d.add(i + 16) as *mut __m128i, _mm_xor_si128(d1, r1));
            i += 32;
        }
        if i < len {
            let r = mul16(lo, hi, mask, _mm_loadu_si128(s.add(i) as *const __m128i));
            let d0 = _mm_loadu_si128(d.add(i) as *const __m128i);
            _mm_storeu_si128(d.add(i) as *mut __m128i, _mm_xor_si128(d0, r));
        }
    }

    // audit: unsafe ok — SSE2 (baseline on every x86_64) loads/stores; every 16-byte
    // offset i satisfies i + 16 <= len for both slices, whose lengths the safe wrapper
    // checked equal and trimmed to a multiple of 16
    unsafe fn xor_impl(src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert_eq!(src.len() % 16, 0);
        let (s, d, len) = (src.as_ptr(), dst.as_mut_ptr(), dst.len());
        let mut i = 0;
        while i < len {
            let x = _mm_xor_si128(
                _mm_loadu_si128(s.add(i) as *const __m128i),
                _mm_loadu_si128(d.add(i) as *const __m128i),
            );
            _mm_storeu_si128(d.add(i) as *mut __m128i, x);
            i += 16;
        }
    }

    pub(super) fn mul(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "kernel ops require equal slice lengths");
        let main = dst.len() - dst.len() % 16;
        // audit: unsafe ok — SSSE3 support was verified by Kernel::is_supported before
        // this fn pointer was installed; the impl touches only the first `main` bytes,
        // a multiple of 16 within both slices
        unsafe { mul_impl(table, &src[..main], &mut dst[..main]) };
        for i in main..dst.len() {
            dst[i] = table.mul(src[i]);
        }
    }

    pub(super) fn mul_add(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "kernel ops require equal slice lengths");
        let main = dst.len() - dst.len() % 16;
        // audit: unsafe ok — SSSE3 support was verified by Kernel::is_supported before
        // this fn pointer was installed; the impl touches only the first `main` bytes,
        // a multiple of 16 within both slices
        unsafe { mul_add_impl(table, &src[..main], &mut dst[..main]) };
        for i in main..dst.len() {
            dst[i] ^= table.mul(src[i]);
        }
    }

    pub(super) fn xor(src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "kernel ops require equal slice lengths");
        let main = dst.len() - dst.len() % 16;
        // audit: unsafe ok — SSE2 is baseline on x86_64; the impl touches only the
        // first `main` bytes, a multiple of 16 within both slices
        unsafe { xor_impl(&src[..main], &mut dst[..main]) };
        for i in main..dst.len() {
            dst[i] ^= src[i];
        }
    }
}

/// AVX2 kernels: `VPSHUFB` nibble lookups on 32-byte registers (the 16-entry
/// split tables broadcast to both 128-bit lanes), two blocks per iteration.
/// Safe wrappers run the SIMD body over the largest 32-byte prefix and finish
/// the tail with the scalar table.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_and_si256, _mm256_broadcastsi128_si256, _mm256_loadu_si256,
        _mm256_set1_epi8, _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_storeu_si256, _mm256_xor_si256,
        _mm_loadu_si128,
    };

    use crate::bulk8::MulTable;

    /// One 32-lane shuffle multiply. `VPSHUFB` shuffles within each 128-bit
    /// lane independently, which is exactly right here: both lanes hold the
    /// same broadcast 16-entry table.
    #[inline]
    #[target_feature(enable = "avx2")]
    // audit: unsafe ok — pure register arithmetic (no memory access); only called from
    // AVX2-gated fns that the dispatcher installs after is_x86_feature_detected!("avx2")
    unsafe fn mul32(lo: __m256i, hi: __m256i, mask: __m256i, x: __m256i) -> __m256i {
        let lo_nib = _mm256_and_si256(x, mask);
        let hi_nib = _mm256_and_si256(_mm256_srli_epi16::<4>(x), mask);
        _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_nib), _mm256_shuffle_epi8(hi, hi_nib))
    }

    /// Loads one 16-entry split table and broadcasts it to both lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    // audit: unsafe ok — reads exactly 16 bytes from a &[u8; 16] via unaligned load;
    // only called from AVX2-gated fns installed after feature detection
    unsafe fn broadcast_table(table: &[u8; 16]) -> __m256i {
        _mm256_broadcastsi128_si256(_mm_loadu_si128(table.as_ptr() as *const __m128i))
    }

    #[target_feature(enable = "avx2")]
    // audit: unsafe ok — AVX2 is guaranteed by the caller; every unaligned 32-byte
    // load/store offset i satisfies i + 32 <= len for both slices, whose lengths the
    // safe wrapper checked equal and trimmed to a multiple of 32
    unsafe fn mul_impl(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert_eq!(src.len() % 32, 0);
        let lo = broadcast_table(table.low_nibble());
        let hi = broadcast_table(table.high_nibble());
        let mask = _mm256_set1_epi8(0x0f);
        let (s, d, len) = (src.as_ptr(), dst.as_mut_ptr(), dst.len());
        let mut i = 0;
        while i + 64 <= len {
            let r0 = mul32(lo, hi, mask, _mm256_loadu_si256(s.add(i) as *const __m256i));
            let r1 = mul32(lo, hi, mask, _mm256_loadu_si256(s.add(i + 32) as *const __m256i));
            _mm256_storeu_si256(d.add(i) as *mut __m256i, r0);
            _mm256_storeu_si256(d.add(i + 32) as *mut __m256i, r1);
            i += 64;
        }
        if i < len {
            let r = mul32(lo, hi, mask, _mm256_loadu_si256(s.add(i) as *const __m256i));
            _mm256_storeu_si256(d.add(i) as *mut __m256i, r);
        }
    }

    #[target_feature(enable = "avx2")]
    // audit: unsafe ok — AVX2 is guaranteed by the caller; every unaligned 32-byte
    // load/store offset i satisfies i + 32 <= len for both slices, whose lengths the
    // safe wrapper checked equal and trimmed to a multiple of 32
    unsafe fn mul_add_impl(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert_eq!(src.len() % 32, 0);
        let lo = broadcast_table(table.low_nibble());
        let hi = broadcast_table(table.high_nibble());
        let mask = _mm256_set1_epi8(0x0f);
        let (s, d, len) = (src.as_ptr(), dst.as_mut_ptr(), dst.len());
        let mut i = 0;
        while i + 64 <= len {
            let r0 = mul32(lo, hi, mask, _mm256_loadu_si256(s.add(i) as *const __m256i));
            let r1 = mul32(lo, hi, mask, _mm256_loadu_si256(s.add(i + 32) as *const __m256i));
            let d0 = _mm256_loadu_si256(d.add(i) as *const __m256i);
            let d1 = _mm256_loadu_si256(d.add(i + 32) as *const __m256i);
            _mm256_storeu_si256(d.add(i) as *mut __m256i, _mm256_xor_si256(d0, r0));
            _mm256_storeu_si256(d.add(i + 32) as *mut __m256i, _mm256_xor_si256(d1, r1));
            i += 64;
        }
        if i < len {
            let r = mul32(lo, hi, mask, _mm256_loadu_si256(s.add(i) as *const __m256i));
            let d0 = _mm256_loadu_si256(d.add(i) as *const __m256i);
            _mm256_storeu_si256(d.add(i) as *mut __m256i, _mm256_xor_si256(d0, r));
        }
    }

    #[target_feature(enable = "avx2")]
    // audit: unsafe ok — AVX2 is guaranteed by the caller; every unaligned 32-byte
    // load/store offset i satisfies i + 32 <= len for both slices, whose lengths the
    // safe wrapper checked equal and trimmed to a multiple of 32
    unsafe fn xor_impl(src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert_eq!(src.len() % 32, 0);
        let (s, d, len) = (src.as_ptr(), dst.as_mut_ptr(), dst.len());
        let mut i = 0;
        while i < len {
            let x = _mm256_xor_si256(
                _mm256_loadu_si256(s.add(i) as *const __m256i),
                _mm256_loadu_si256(d.add(i) as *const __m256i),
            );
            _mm256_storeu_si256(d.add(i) as *mut __m256i, x);
            i += 32;
        }
    }

    pub(super) fn mul(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "kernel ops require equal slice lengths");
        let main = dst.len() - dst.len() % 32;
        // audit: unsafe ok — AVX2 support was verified by Kernel::is_supported before
        // this fn pointer was installed; the impl touches only the first `main` bytes,
        // a multiple of 32 within both slices
        unsafe { mul_impl(table, &src[..main], &mut dst[..main]) };
        for i in main..dst.len() {
            dst[i] = table.mul(src[i]);
        }
    }

    pub(super) fn mul_add(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "kernel ops require equal slice lengths");
        let main = dst.len() - dst.len() % 32;
        // audit: unsafe ok — AVX2 support was verified by Kernel::is_supported before
        // this fn pointer was installed; the impl touches only the first `main` bytes,
        // a multiple of 32 within both slices
        unsafe { mul_add_impl(table, &src[..main], &mut dst[..main]) };
        for i in main..dst.len() {
            dst[i] ^= table.mul(src[i]);
        }
    }

    pub(super) fn xor(src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "kernel ops require equal slice lengths");
        let main = dst.len() - dst.len() % 32;
        // audit: unsafe ok — AVX2 support was verified by Kernel::is_supported before
        // this fn pointer was installed; the impl touches only the first `main` bytes,
        // a multiple of 32 within both slices
        unsafe { xor_impl(&src[..main], &mut dst[..main]) };
        for i in main..dst.len() {
            dst[i] ^= src[i];
        }
    }
}

/// NEON kernels: `TBL` nibble lookups (`vqtbl1q_u8`) on 16-byte registers.
/// Safe wrappers run the SIMD body over the largest 16-byte prefix and finish
/// the tail with the scalar table.
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon {
    use std::arch::aarch64::{
        uint8x16_t, vandq_u8, vdupq_n_u8, veorq_u8, vld1q_u8, vqtbl1q_u8, vshrq_n_u8, vst1q_u8,
    };

    use crate::bulk8::MulTable;

    /// One 16-lane table-lookup multiply: `lo[x & 0xF] ^ hi[x >> 4]` per byte.
    #[inline]
    #[target_feature(enable = "neon")]
    // audit: unsafe ok — pure register arithmetic (no memory access); only called from
    // NEON-gated fns that the dispatcher installs after is_aarch64_feature_detected!("neon")
    unsafe fn mul16(lo: uint8x16_t, hi: uint8x16_t, x: uint8x16_t) -> uint8x16_t {
        let lo_nib = vandq_u8(x, vdupq_n_u8(0x0f));
        let hi_nib = vshrq_n_u8::<4>(x);
        veorq_u8(vqtbl1q_u8(lo, lo_nib), vqtbl1q_u8(hi, hi_nib))
    }

    #[target_feature(enable = "neon")]
    // audit: unsafe ok — NEON is guaranteed by the caller; every 16-byte load/store
    // offset i satisfies i + 16 <= len for both slices, whose lengths the safe wrapper
    // checked equal and trimmed to a multiple of 16
    unsafe fn mul_impl(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert_eq!(src.len() % 16, 0);
        let lo = vld1q_u8(table.low_nibble().as_ptr());
        let hi = vld1q_u8(table.high_nibble().as_ptr());
        let (s, d, len) = (src.as_ptr(), dst.as_mut_ptr(), dst.len());
        let mut i = 0;
        while i < len {
            vst1q_u8(d.add(i), mul16(lo, hi, vld1q_u8(s.add(i))));
            i += 16;
        }
    }

    #[target_feature(enable = "neon")]
    // audit: unsafe ok — NEON is guaranteed by the caller; every 16-byte load/store
    // offset i satisfies i + 16 <= len for both slices, whose lengths the safe wrapper
    // checked equal and trimmed to a multiple of 16
    unsafe fn mul_add_impl(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert_eq!(src.len() % 16, 0);
        let lo = vld1q_u8(table.low_nibble().as_ptr());
        let hi = vld1q_u8(table.high_nibble().as_ptr());
        let (s, d, len) = (src.as_ptr(), dst.as_mut_ptr(), dst.len());
        let mut i = 0;
        while i < len {
            let r = mul16(lo, hi, vld1q_u8(s.add(i)));
            vst1q_u8(d.add(i), veorq_u8(vld1q_u8(d.add(i)), r));
            i += 16;
        }
    }

    #[target_feature(enable = "neon")]
    // audit: unsafe ok — NEON is guaranteed by the caller; every 16-byte load/store
    // offset i satisfies i + 16 <= len for both slices, whose lengths the safe wrapper
    // checked equal and trimmed to a multiple of 16
    unsafe fn xor_impl(src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert_eq!(src.len() % 16, 0);
        let (s, d, len) = (src.as_ptr(), dst.as_mut_ptr(), dst.len());
        let mut i = 0;
        while i < len {
            vst1q_u8(d.add(i), veorq_u8(vld1q_u8(d.add(i)), vld1q_u8(s.add(i))));
            i += 16;
        }
    }

    pub(super) fn mul(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "kernel ops require equal slice lengths");
        let main = dst.len() - dst.len() % 16;
        // audit: unsafe ok — NEON support was verified by Kernel::is_supported before
        // this fn pointer was installed; the impl touches only the first `main` bytes,
        // a multiple of 16 within both slices
        unsafe { mul_impl(table, &src[..main], &mut dst[..main]) };
        for i in main..dst.len() {
            dst[i] = table.mul(src[i]);
        }
    }

    pub(super) fn mul_add(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "kernel ops require equal slice lengths");
        let main = dst.len() - dst.len() % 16;
        // audit: unsafe ok — NEON support was verified by Kernel::is_supported before
        // this fn pointer was installed; the impl touches only the first `main` bytes,
        // a multiple of 16 within both slices
        unsafe { mul_add_impl(table, &src[..main], &mut dst[..main]) };
        for i in main..dst.len() {
            dst[i] ^= table.mul(src[i]);
        }
    }

    pub(super) fn xor(src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "kernel ops require equal slice lengths");
        let main = dst.len() - dst.len() % 16;
        // audit: unsafe ok — NEON support was verified by Kernel::is_supported before
        // this fn pointer was installed; the impl touches only the first `main` bytes,
        // a multiple of 16 within both slices
        unsafe { xor_impl(&src[..main], &mut dst[..main]) };
        for i in main..dst.len() {
            dst[i] ^= src[i];
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Helpers for tests that exercise the *global* dispatch: a process-wide
    //! lock serializes forcing, and a guard restores the previous kernel.

    use std::sync::{Mutex, MutexGuard};

    use super::{force_kernel, Kernel, KernelOps};
    use crate::bulk8::MulTable;

    static FORCE_LOCK: Mutex<()> = Mutex::new(());

    /// RAII guard from [`force_guard`]: holds the exclusion lock and restores
    /// the previously active kernel on drop.
    pub(crate) struct ForcedKernel {
        previous: Kernel,
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for ForcedKernel {
        fn drop(&mut self) {
            let _ = force_kernel(self.previous);
        }
    }

    /// Forces `kernel` (which must be supported) for the guard's lifetime.
    pub(crate) fn force_guard(kernel: Kernel) -> ForcedKernel {
        let lock = FORCE_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let previous = force_kernel(kernel).expect("forced kernel must be supported on this host");
        ForcedKernel {
            previous,
            _lock: lock,
        }
    }

    fn corrupt(dst: &mut [u8]) {
        if let Some(last) = dst.len().checked_sub(1) {
            dst[13.min(last)] ^= 0x10;
        }
    }

    fn broken_mul(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        (super::SCALAR_OPS.mul)(table, src, dst);
        corrupt(dst);
    }

    fn broken_mul_add(table: &MulTable, src: &[u8], dst: &mut [u8]) {
        (super::SCALAR_OPS.mul_add)(table, src, dst);
        corrupt(dst);
    }

    fn broken_xor(src: &[u8], dst: &mut [u8]) {
        (super::SCALAR_OPS.xor)(src, dst);
        corrupt(dst);
    }

    /// A deliberately wrong kernel (one bit flipped per op) used to prove the
    /// differential sweep actually detects a broken SIMD lane.
    pub(crate) fn broken_ops() -> KernelOps {
        KernelOps {
            mul: broken_mul,
            mul_add: broken_mul_add,
            xor: broken_xor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk8::CoeffTables;
    use crate::{GaloisField, Gf256};

    /// Deterministic byte pattern distinct per (seed, index).
    fn pattern(seed: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| {
                let x = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (x >> 32) as u8
            })
            .collect()
    }

    /// Lengths that exercise empty slices, sub-register tails, every head
    /// offset through one 256-byte sweep, and multi-KiB strip interiors.
    fn sweep_lens() -> Vec<usize> {
        let mut lens: Vec<usize> = (0..=257).collect();
        lens.extend([1024, DRIVER_STRIP + 13, 3 * DRIVER_STRIP, 16 * 1024 + 1]);
        lens
    }

    /// Runs every op of `ops` against the scalar reference across the sweep;
    /// returns false on the first mismatch.
    fn sweep_matches_scalar(ops: &KernelOps) -> bool {
        let tables = CoeffTables::new();
        let coeffs = [2u64, 0x1D, 0x53, 0x8E, 0xFF];
        for &len in &sweep_lens() {
            let src = pattern(0xA5A5_0001, len);
            let src2 = pattern(0x5A5A_0002, len);
            let init = pattern(0xC3C3_0003, len);
            for &c in &coeffs {
                let table = tables.get(Gf256::from_u64(c));

                let mut want = vec![0u8; len];
                let mut got = vec![0xEEu8; len];
                (SCALAR_OPS.mul)(table, &src, &mut want);
                (ops.mul)(table, &src, &mut got);
                if want != got {
                    return false;
                }

                let mut want = init.clone();
                let mut got = init.clone();
                (SCALAR_OPS.mul_add)(table, &src, &mut want);
                (ops.mul_add)(table, &src, &mut got);
                if want != got {
                    return false;
                }
            }

            let mut want = init.clone();
            let mut got = init.clone();
            (SCALAR_OPS.xor)(&src, &mut want);
            (ops.xor)(&src, &mut got);
            if want != got {
                return false;
            }

            let sources: Vec<(&crate::bulk8::MulTable, &[u8])> = vec![
                (tables.get(Gf256::from_u64(0x1D)), src.as_slice()),
                (tables.get(Gf256::ONE), src2.as_slice()),
                (tables.get(Gf256::from_u64(0x8E)), init.as_slice()),
            ];
            let mut want = vec![0u8; len];
            let mut got = vec![0x77u8; len];
            mul_multi_with(&SCALAR_OPS, &sources, &mut want);
            mul_multi_with(ops, &sources, &mut got);
            if want != got {
                return false;
            }
        }
        true
    }

    #[test]
    fn every_available_kernel_is_bit_identical_to_scalar() {
        for kernel in Kernel::available() {
            assert!(
                sweep_matches_scalar(ops_of(kernel)),
                "kernel `{}` diverged from the scalar reference",
                kernel.name()
            );
        }
    }

    #[test]
    fn a_mutated_kernel_fails_the_differential_sweep() {
        // Guards the guard: if this ever passes for a broken kernel, the
        // sweep has lost its teeth and the SIMD lanes are unwatched.
        assert!(
            !sweep_matches_scalar(&test_support::broken_ops()),
            "differential sweep failed to detect a deliberately broken kernel"
        );
    }

    #[test]
    fn per_kernel_checked_ops_match_scalar_and_reject_unsupported() {
        let table = crate::bulk8::MulTable::new(Gf256::from_u64(0xB1));
        let src = pattern(7, 100);
        for kernel in Kernel::ALL {
            let mut dst = pattern(11, 100);
            if kernel.is_supported() {
                let mut want = dst.clone();
                Kernel::Scalar.mul_add_slice(&table, &src, &mut want).unwrap();
                kernel.mul_add_slice(&table, &src, &mut dst).unwrap();
                assert_eq!(dst, want, "kernel `{}`", kernel.name());
            } else {
                let err = kernel.mul_add_slice(&table, &src, &mut dst).unwrap_err();
                assert_eq!(err, UnsupportedKernel { kernel });
                assert!(err.to_string().contains(kernel.name()));
            }
        }
    }

    #[test]
    fn kernel_names_round_trip_and_parse_case_insensitively() {
        for kernel in Kernel::ALL {
            assert_eq!(Kernel::from_name(kernel.name()), Some(kernel));
            assert_eq!(Kernel::from_name(&kernel.name().to_uppercase()), Some(kernel));
            assert_eq!(kernel.to_string(), kernel.name());
        }
        assert_eq!(Kernel::from_name("sse9"), None);
        assert_eq!(Kernel::from_name(""), None);
    }

    #[test]
    fn forcing_a_kernel_changes_active_and_restores_on_drop() {
        for kernel in Kernel::available() {
            let initial = active_kernel();
            {
                let _guard = test_support::force_guard(kernel);
                assert_eq!(active_kernel(), kernel);
            }
            assert_eq!(active_kernel(), initial, "guard must restore the previous kernel");
        }
    }

    #[test]
    fn forcing_an_unsupported_kernel_is_rejected_and_leaves_dispatch_alone() {
        let Some(unsupported) = Kernel::ALL.into_iter().find(|k| !k.is_supported()) else {
            return; // host supports every compiled-in kernel
        };
        let before = active_kernel();
        assert_eq!(
            force_kernel(unsupported),
            Err(UnsupportedKernel { kernel: unsupported })
        );
        assert_eq!(active_kernel(), before);
    }

    #[test]
    fn public_bulk8_api_handles_unaligned_heads_tails_and_errors_on_every_kernel() {
        let tables = CoeffTables::new();
        let c = Gf256::from_u64(0x53);
        for kernel in Kernel::available() {
            let _guard = test_support::force_guard(kernel);
            // Offsets into an oversized backing buffer misalign the slice
            // pointers; lengths cover empty, sub-register, and cross-chunk.
            for offset in [1usize, 2, 3, 13, 15, 16, 17, 31, 33, 63] {
                for len in [0usize, 1, 15, 16, 63, 64, 65, 257] {
                    let backing_src = pattern(offset as u64, offset + len);
                    let backing_dst = pattern(!(offset as u64), offset + len);
                    let src = &backing_src[offset..];
                    let mut dst = backing_dst[offset..].to_vec();
                    let want: Vec<u8> = dst
                        .iter()
                        .zip(src)
                        .map(|(&d, &s)| d ^ (c * Gf256::from_u64(u64::from(s))).to_u64() as u8)
                        .collect();
                    tables.mul_add_slice(c, src, &mut dst);
                    assert_eq!(dst, want, "kernel `{}` offset {offset} len {len}", kernel.name());
                }
            }
            // Length mismatches must take the error path on the SIMD kernels
            // too, leaving the destination untouched.
            let mut dst = vec![0xABu8; 64];
            let err = tables.try_mul_add_slice(c, &[0u8; 65], &mut dst).unwrap_err();
            assert_eq!((err.expected, err.actual), (64, 65));
            assert!(dst.iter().all(|&b| b == 0xAB));
            // Zero-length slices are a no-op on every kernel.
            tables.mul_add_slice(c, &[], &mut []);
        }
    }

    #[test]
    fn auto_detection_prefers_the_widest_supported_kernel() {
        let expect = [Kernel::Avx2, Kernel::Ssse3, Kernel::Neon]
            .into_iter()
            .find(|k| k.is_supported())
            .unwrap_or(Kernel::Scalar);
        assert_eq!(auto_detect(), expect);
        assert!(Kernel::available().contains(&Kernel::Scalar));
    }
}
