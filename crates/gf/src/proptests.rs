//! Property-based tests of the field axioms and polynomial algebra.

use proptest::prelude::*;

use crate::{GaloisField, Gf1024, Gf16, Gf256, Gf65536, Poly};

fn elem<F: GaloisField>() -> impl Strategy<Value = F> {
    (0..F::ORDER).prop_map(F::from_u64)
}

macro_rules! field_axioms {
    ($modname:ident, $field:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn addition_is_commutative_group(a in elem::<$field>(), b in elem::<$field>(), c in elem::<$field>()) {
                    prop_assert_eq!(a + b, b + a);
                    prop_assert_eq!((a + b) + c, a + (b + c));
                    prop_assert_eq!(a + <$field>::ZERO, a);
                    prop_assert_eq!(a + a, <$field>::ZERO); // characteristic 2
                }

                #[test]
                fn multiplication_is_commutative_monoid(a in elem::<$field>(), b in elem::<$field>(), c in elem::<$field>()) {
                    prop_assert_eq!(a * b, b * a);
                    prop_assert_eq!((a * b) * c, a * (b * c));
                    prop_assert_eq!(a * <$field>::ONE, a);
                    prop_assert_eq!(a * <$field>::ZERO, <$field>::ZERO);
                }

                #[test]
                fn distributivity(a in elem::<$field>(), b in elem::<$field>(), c in elem::<$field>()) {
                    prop_assert_eq!(a * (b + c), a * b + a * c);
                }

                #[test]
                fn inverse_and_division(a in elem::<$field>(), b in elem::<$field>()) {
                    if !a.is_zero() {
                        let ai = a.inv().unwrap();
                        prop_assert_eq!(a * ai, <$field>::ONE);
                        prop_assert_eq!(b / a * a, b);
                    } else {
                        prop_assert!(a.inv().is_none());
                    }
                }

                #[test]
                fn pow_is_repeated_multiplication(a in elem::<$field>(), e in 0u64..64) {
                    let mut expect = <$field>::ONE;
                    for _ in 0..e {
                        expect *= a;
                    }
                    prop_assert_eq!(a.pow(e), expect);
                }

                #[test]
                fn to_from_u64_round_trip(a in elem::<$field>()) {
                    prop_assert_eq!(<$field>::from_u64(a.to_u64()), a);
                    prop_assert!(a.to_u64() < <$field>::ORDER);
                }

                #[test]
                fn frobenius_is_additive(a in elem::<$field>(), b in elem::<$field>()) {
                    // In characteristic 2, squaring is a field automorphism.
                    prop_assert_eq!((a + b) * (a + b), a * a + b * b);
                }
            }
        }
    };
}

field_axioms!(gf16_axioms, Gf16);
field_axioms!(gf256_axioms, Gf256);
field_axioms!(gf1024_axioms, Gf1024);
field_axioms!(gf65536_axioms, Gf65536);

fn poly256(max_len: usize) -> impl Strategy<Value = Poly<Gf256>> {
    prop::collection::vec(0u64..256, 0..max_len)
        .prop_map(|cs| Poly::new(cs.into_iter().map(Gf256::from_u64).collect()))
}

proptest! {
    #[test]
    fn poly_add_commutes_and_mul_distributes(p in poly256(8), q in poly256(8), r in poly256(6)) {
        prop_assert_eq!(p.add(&q), q.add(&p));
        prop_assert_eq!(p.mul(&q), q.mul(&p));
        prop_assert_eq!(p.mul(&q.add(&r)), p.mul(&q).add(&p.mul(&r)));
    }

    #[test]
    fn poly_div_rem_invariant(p in poly256(10), d in poly256(6)) {
        prop_assume!(!d.is_zero());
        let (q, r) = p.div_rem(&d);
        prop_assert_eq!(q.mul(&d).add(&r), p);
        if let (Some(rd), Some(dd)) = (r.degree(), d.degree()) {
            prop_assert!(rd < dd);
        }
    }

    #[test]
    fn poly_eval_is_ring_homomorphism(p in poly256(8), q in poly256(8), x in 0u64..256) {
        let x = Gf256::from_u64(x);
        prop_assert_eq!(p.add(&q).eval(x), p.eval(x) + q.eval(x));
        prop_assert_eq!(p.mul(&q).eval(x), p.eval(x) * q.eval(x));
    }

    #[test]
    fn poly_interpolation_round_trip(coeffs in prop::collection::vec(0u64..256, 1..7)) {
        let p = Poly::new(coeffs.into_iter().map(Gf256::from_u64).collect());
        let deg = p.degree().map_or(0, |d| d + 1).max(1);
        let points: Vec<(Gf256, Gf256)> = (1..=deg as u64)
            .map(|v| { let x = Gf256::from_u64(v); (x, p.eval(x)) })
            .collect();
        prop_assert_eq!(Poly::interpolate(&points), p);
    }

    #[test]
    fn bulk_kernels_match_scalar_loop(
        a in prop::collection::vec(0u64..256, 1..64),
        c in 0u64..256,
    ) {
        let src: Vec<Gf256> = a.iter().map(|&v| Gf256::from_u64(v)).collect();
        let c = Gf256::from_u64(c);
        let mut dst = vec![Gf256::ZERO; src.len()];
        crate::bulk::mul_add_assign(&mut dst, c, &src);
        let expect: Vec<Gf256> = src.iter().map(|&s| c * s).collect();
        prop_assert_eq!(&dst, &expect);
        let mut dst2 = vec![Gf256::ZERO; src.len()];
        crate::bulk::mul_into(&mut dst2, c, &src);
        prop_assert_eq!(dst2, expect);
    }

    #[test]
    fn bulk8_mul_slices_match_scalar_reference(
        // Cover the awkward lengths explicitly: 0, 1, odd, and lengths that
        // are not multiples of the 64-byte kernel chunk.
        len in prop_oneof![Just(0usize), Just(1usize), Just(63usize), Just(65usize), 2usize..300],
        c in 0u64..256,
        seed in 0u64..u64::MAX,
    ) {
        let c = Gf256::from_u64(c);
        let src: Vec<u8> = (0..len).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as u8).collect();
        let init: Vec<u8> = (0..len).map(|i| (seed.wrapping_add(i as u64 * 7) >> 21) as u8).collect();

        // Scalar reference: lift bytes to Gf256 and run the generic kernels.
        let src_sym: Vec<Gf256> = crate::bulk::bytes_to_symbols(&src);
        let mut ref_add: Vec<Gf256> = crate::bulk::bytes_to_symbols(&init);
        crate::bulk::mul_add_assign(&mut ref_add, c, &src_sym);
        let mut ref_mul = vec![Gf256::ZERO; len];
        crate::bulk::mul_into(&mut ref_mul, c, &src_sym);

        let tables = crate::bulk8::CoeffTables::new();
        let mut fast_add = init.clone();
        tables.mul_add_slice(c, &src, &mut fast_add);
        prop_assert_eq!(&fast_add, &crate::bulk::symbols_to_bytes(&ref_add));
        let mut fast_add2 = init.clone();
        crate::bulk8::mul_add_slice(c, &src, &mut fast_add2);
        prop_assert_eq!(&fast_add2, &fast_add);

        let mut fast_mul = vec![0u8; len];
        tables.mul_slice(c, &src, &mut fast_mul);
        prop_assert_eq!(&fast_mul, &crate::bulk::symbols_to_bytes(&ref_mul));
        let mut fast_mul2 = vec![0xFFu8; len];
        crate::bulk8::mul_slice(c, &src, &mut fast_mul2);
        prop_assert_eq!(fast_mul2, fast_mul);
    }

    #[test]
    fn bulk8_simd_kernels_match_scalar_reference_on_all_lengths(
        // Short lengths sweep every head/tail remainder a 16/32-byte SIMD
        // register can see; the multi-KiB lengths cross the fused drivers'
        // strip boundaries (including a deliberately unaligned +13 / +1).
        len in prop_oneof![
            0usize..258,
            Just(4096usize + 13),
            Just(3 * 4096usize),
            Just(16 * 1024usize + 1)
        ],
        c in 0u64..256,
        c2 in 0u64..256,
        seed in 0u64..u64::MAX,
    ) {
        use crate::kernel::Kernel;
        let table = crate::bulk8::MulTable::new(Gf256::from_u64(c));
        let table2 = crate::bulk8::MulTable::new(Gf256::from_u64(c2));
        let src: Vec<u8> = (0..len).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as u8).collect();
        let init: Vec<u8> = (0..len).map(|i| (seed.wrapping_add(i as u64 * 7) >> 21) as u8).collect();
        let sources: Vec<(&crate::bulk8::MulTable, &[u8])> =
            vec![(&table, src.as_slice()), (&table2, init.as_slice())];

        // The scalar kernel is the reference; every kernel the host supports
        // must be bit-identical to it through the per-kernel checked ops.
        let mut want_mul = vec![0u8; len];
        Kernel::Scalar.mul_slice(&table, &src, &mut want_mul).unwrap();
        let mut want_add = init.clone();
        Kernel::Scalar.mul_add_slice(&table, &src, &mut want_add).unwrap();
        let mut want_xor = init.clone();
        Kernel::Scalar.xor_slice(&src, &mut want_xor).unwrap();
        let mut want_multi = vec![0u8; len];
        Kernel::Scalar.mul_multi(&sources, &mut want_multi).unwrap();

        for kernel in Kernel::available() {
            let mut got = vec![0xEEu8; len];
            kernel.mul_slice(&table, &src, &mut got).unwrap();
            prop_assert_eq!(&got, &want_mul, "mul_slice diverged on kernel `{}`", kernel.name());
            let mut got = init.clone();
            kernel.mul_add_slice(&table, &src, &mut got).unwrap();
            prop_assert_eq!(&got, &want_add, "mul_add_slice diverged on kernel `{}`", kernel.name());
            let mut got = init.clone();
            kernel.xor_slice(&src, &mut got).unwrap();
            prop_assert_eq!(&got, &want_xor, "xor_slice diverged on kernel `{}`", kernel.name());
            let mut got = vec![0x77u8; len];
            kernel.mul_multi(&sources, &mut got).unwrap();
            prop_assert_eq!(&got, &want_multi, "mul_multi diverged on kernel `{}`", kernel.name());
        }
    }

    #[test]
    fn bulk8_xor_accumulate_matches_scalar_reference(
        len in prop_oneof![Just(0usize), Just(1usize), Just(64usize), 2usize..200],
        rows in 0usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let srcs: Vec<Vec<u8>> = (0..rows)
            .map(|r| {
                (0..len)
                    .map(|i| (seed.wrapping_mul((r * 131 + i + 1) as u64) >> 17) as u8)
                    .collect()
            })
            .collect();
        let init: Vec<u8> = (0..len).map(|i| (seed.wrapping_add(i as u64) >> 9) as u8).collect();

        let mut reference: Vec<Gf256> = crate::bulk::bytes_to_symbols(&init);
        for src in &srcs {
            crate::bulk::add_assign(&mut reference, &crate::bulk::bytes_to_symbols::<Gf256>(src));
        }

        let mut fast = init.clone();
        let views: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
        crate::bulk8::xor_accumulate(&mut fast, &views);
        prop_assert_eq!(fast, crate::bulk::symbols_to_bytes(&reference));
    }

    #[test]
    fn delta_weight_matches_positions_changed(
        base in prop::collection::vec(0u64..256, 1..64),
        edits in prop::collection::vec((0usize..64, 1u64..256), 0..16),
    ) {
        let a: Vec<Gf256> = base.iter().map(|&v| Gf256::from_u64(v)).collect();
        let mut b = a.clone();
        let mut touched = std::collections::BTreeSet::new();
        for (idx, val) in edits {
            let idx = idx % b.len();
            let v = Gf256::from_u64(val);
            if b[idx] + v != a[idx] {
                // record only edits that actually change the symbol relative to `a`
            }
            b[idx] = a[idx] + v; // v != 0 so this symbol now differs from a[idx]
            touched.insert(idx);
        }
        let d = crate::bulk::diff(&b, &a);
        prop_assert_eq!(crate::bulk::weight(&d), touched.len());
    }
}
