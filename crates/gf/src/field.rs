//! The [`GaloisField`] trait: the abstract interface every SEC field satisfies.

use core::fmt::{Debug, Display};
use core::hash::Hash;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A binary-extension Galois field `GF(2^w)`.
///
/// All SEC constructions (Cauchy generator matrices, sparse-delta recovery,
/// Gaussian elimination) are written against this trait so that the same code
/// runs over `GF(2^8)` byte symbols, the paper's `GF(2^10)` example alphabet,
/// or `GF(2^16)`.
///
/// Implementations are plain `Copy` newtypes over an unsigned integer and all
/// operations are total: the arithmetic operators panic only on division by
/// zero, mirroring integer division in the standard library. The fallible
/// alternative [`GaloisField::inv`] returns `None` for zero.
///
/// # Example
///
/// ```rust
/// use sec_gf::{GaloisField, Gf256};
///
/// fn dot<F: GaloisField>(a: &[F], b: &[F]) -> F {
///     a.iter().zip(b).fold(F::ZERO, |acc, (&x, &y)| acc + x * y)
/// }
///
/// let a = [Gf256::from_u64(1), Gf256::from_u64(2)];
/// let b = [Gf256::from_u64(3), Gf256::from_u64(4)];
/// assert_eq!(dot(&a, &b), Gf256::from_u64(3) + Gf256::from_u64(8));
/// ```
pub trait GaloisField:
    Copy
    + Clone
    + Eq
    + PartialEq
    + Ord
    + PartialOrd
    + Hash
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Neg<Output = Self>
    + Sum
    + Product
{
    /// Field extension degree `w`, i.e. the field has `2^w` elements.
    const BITS: u32;

    /// Number of elements in the field, `q = 2^BITS`.
    const ORDER: u64;

    /// The additive identity.
    const ZERO: Self;

    /// The multiplicative identity.
    const ONE: Self;

    /// Builds a field element from the low `BITS` bits of `v`.
    ///
    /// Values `v >= ORDER` are reduced by masking, so this function is total;
    /// use it for literals and for converting symbol words read from storage.
    fn from_u64(v: u64) -> Self;

    /// Returns the canonical integer representation of the element
    /// (in `0..ORDER`).
    fn to_u64(self) -> u64;

    /// Returns `true` for the additive identity.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Multiplicative inverse, or `None` for zero.
    fn inv(self) -> Option<Self>;

    /// A fixed primitive element (generator of the multiplicative group).
    fn generator() -> Self;

    /// Exponentiation by squaring is the default; table-backed fields may
    /// override with a log/exp shortcut.
    fn pow(self, mut e: u64) -> Self {
        if e == 0 {
            return Self::ONE;
        }
        if self.is_zero() {
            return Self::ZERO;
        }
        // Reduce the exponent modulo the multiplicative group order.
        e %= Self::ORDER - 1;
        if e == 0 {
            return Self::ONE;
        }
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Iterator over every element of the field, starting from zero.
    ///
    /// Intended for exhaustive checks in tests and for small-field searches
    /// (e.g. picking Cauchy evaluation points); do not call on `GF(2^16)`
    /// inside hot loops.
    fn all_elements() -> AllElements<Self> {
        AllElements {
            next: 0,
            _marker: core::marker::PhantomData,
        }
    }
}

/// Iterator returned by [`GaloisField::all_elements`].
#[derive(Debug, Clone)]
pub struct AllElements<F> {
    next: u64,
    _marker: core::marker::PhantomData<F>,
}

impl<F: GaloisField> Iterator for AllElements<F> {
    type Item = F;

    fn next(&mut self) -> Option<F> {
        if self.next >= F::ORDER {
            None
        } else {
            let v = F::from_u64(self.next);
            self.next += 1;
            Some(v)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (F::ORDER - self.next) as usize;
        (rem, Some(rem))
    }
}

impl<F: GaloisField> ExactSizeIterator for AllElements<F> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf16;

    #[test]
    fn all_elements_yields_order_many() {
        let v: Vec<Gf16> = Gf16::all_elements().collect();
        assert_eq!(v.len(), Gf16::ORDER as usize);
        assert_eq!(v[0], Gf16::ZERO);
        assert_eq!(v[1], Gf16::ONE);
    }

    #[test]
    fn default_pow_matches_repeated_multiplication() {
        let g = Gf16::generator();
        let mut acc = Gf16::ONE;
        for e in 0..20u64 {
            assert_eq!(g.pow(e), acc, "generator^{e}");
            acc *= g;
        }
    }

    #[test]
    fn pow_zero_conventions() {
        assert_eq!(Gf16::ZERO.pow(0), Gf16::ONE);
        assert_eq!(Gf16::ZERO.pow(5), Gf16::ZERO);
        assert_eq!(Gf16::ONE.pow(u64::MAX), Gf16::ONE);
    }
}
