//! Finite-field arithmetic for the SEC (Sparsity Exploiting Coding) stack.
//!
//! The SEC paper works with data objects `x ∈ F_q^k` where `q` is a power of
//! two; its running example uses `q = 1024` (i.e. `GF(2^10)`) and practical
//! erasure-coding deployments use `GF(2^8)` or `GF(2^16)`. This crate
//! provides:
//!
//! * the [`GaloisField`] trait describing a binary-extension field,
//! * concrete fields [`Gf16`], [`Gf256`], [`Gf1024`] and [`Gf65536`]
//!   (characteristic-2 fields of 2^4, 2^8, 2^10 and 2^16 elements) built from
//!   log/exp tables generated at first use,
//! * dense polynomial arithmetic over any such field ([`poly::Poly`]),
//!   including Lagrange interpolation used by decoder tests,
//! * bulk slice kernels ([`bulk`]) used by the erasure encoder to apply a
//!   scalar coefficient to a whole block of symbols at once,
//! * the byte-shard fast path ([`bulk8`]): split-table `GF(2^8)` kernels
//!   operating directly on `&[u8]` shards, with a per-coefficient table
//!   cache. The generic [`bulk`] kernels remain the scalar reference
//!   implementation the fast path is tested against,
//! * runtime-dispatched SIMD kernels ([`kernel`]) behind the `bulk8` entry
//!   points: SSSE3/AVX2 `PSHUFB` and NEON `TBL` nibble-lookup multiplication
//!   selected once per process (overridable via `SEC_GF_KERNEL` or
//!   [`force_kernel`]), with the scalar loops as the universal fallback and
//!   differential-test reference.
//!
//! # Example
//!
//! ```rust
//! use sec_gf::{GaloisField, Gf256};
//!
//! let a = Gf256::from_u64(0x53);
//! let b = Gf256::from_u64(0xCA);
//! let p = a * b;
//! // Multiplication is invertible for non-zero elements.
//! assert_eq!(p / b, a);
//! // Addition is XOR in characteristic two, so every element is its own negative.
//! assert_eq!(a + a, Gf256::ZERO);
//! ```

#![deny(unsafe_code)] // audit carve-out: kernel.rs SIMD modules carve out per-module #[allow]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

mod field;
mod fields;
mod tables;

pub mod bulk;
pub mod bulk8;
pub mod kernel;
pub mod poly;

pub use field::GaloisField;
pub use fields::{Gf1024, Gf16, Gf256, Gf65536};
pub use kernel::{active_kernel, force_kernel, reset_kernel, Kernel, UnsupportedKernel, KERNEL_ENV};
pub use poly::Poly;

#[cfg(test)]
mod proptests;
