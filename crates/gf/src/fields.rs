//! Concrete binary-extension fields used throughout the SEC stack.
//!
//! Four field sizes are provided:
//!
//! | Type | Field | Reduction polynomial | Typical use |
//! |------|-------|----------------------|-------------|
//! | [`Gf16`] | `GF(2^4)` | `x^4 + x + 1` | exhaustive tests |
//! | [`Gf256`] | `GF(2^8)` | `x^8 + x^4 + x^3 + x^2 + 1` | byte-oriented erasure coding |
//! | [`Gf1024`] | `GF(2^10)` | `x^10 + x^3 + 1` | the SEC paper's `q = 1024` example |
//! | [`Gf65536`] | `GF(2^16)` | `x^16 + x^12 + x^3 + x + 1` | wide-symbol codes (`n` up to 65535) |

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use crate::field::GaloisField;
use crate::tables::{build_tables, FieldTables};

macro_rules! define_gf {
    (
        $(#[$meta:meta])*
        $name:ident, $repr:ty, $bits:expr, $poly:expr, $tables_fn:ident
    ) => {
        fn $tables_fn() -> &'static FieldTables {
            static TABLES: OnceLock<FieldTables> = OnceLock::new();
            TABLES.get_or_init(|| build_tables($poly, $bits))
        }

        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name($repr);

        impl $name {
            /// The irreducible reduction polynomial (leading term included).
            pub const POLYNOMIAL: u32 = $poly;

            /// Creates an element from its canonical integer representation.
            ///
            /// Unlike [`GaloisField::from_u64`] this is `const` and does not
            /// mask, so it must only be called with `v < 2^BITS`.
            pub(crate) const fn new_unchecked(v: $repr) -> Self {
                Self(v)
            }

            /// Returns the raw integer representation.
            pub const fn raw(self) -> $repr {
                self.0
            }
        }

        impl GaloisField for $name {
            const BITS: u32 = $bits;
            const ORDER: u64 = 1 << $bits;
            const ZERO: Self = Self::new_unchecked(0);
            const ONE: Self = Self::new_unchecked(1);

            #[inline]
            fn from_u64(v: u64) -> Self {
                Self((v & (Self::ORDER - 1)) as $repr)
            }

            #[inline]
            fn to_u64(self) -> u64 {
                self.0 as u64
            }

            #[inline]
            fn inv(self) -> Option<Self> {
                if self.0 == 0 {
                    None
                } else {
                    Some(Self($tables_fn().inv(self.0 as u32) as $repr))
                }
            }

            #[inline]
            fn generator() -> Self {
                Self($tables_fn().generator as $repr)
            }

            #[inline]
            fn pow(self, e: u64) -> Self {
                Self($tables_fn().pow(self.0 as u32, e) as $repr)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl fmt::Octal for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Octal::fmt(&self.0, f)
            }
        }

        impl Add for $name {
            type Output = Self;
            // In characteristic 2, addition genuinely is XOR.
            #[allow(clippy::suspicious_arithmetic_impl)]
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 ^ rhs.0)
            }
        }

        impl AddAssign for $name {
            #[allow(clippy::suspicious_op_assign_impl)]
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 ^= rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            // Characteristic 2: subtraction is addition, i.e. XOR.
            #[allow(clippy::suspicious_arithmetic_impl)]
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 ^ rhs.0)
            }
        }

        impl SubAssign for $name {
            #[allow(clippy::suspicious_op_assign_impl)]
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 ^= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                self
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                Self($tables_fn().mul(self.0 as u32, rhs.0 as u32) as $repr)
            }
        }

        impl MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl Div for $name {
            type Output = Self;
            /// # Panics
            ///
            /// Panics when `rhs` is zero, mirroring integer division.
            #[inline]
            fn div(self, rhs: Self) -> Self {
                assert!(rhs.0 != 0, "division by zero in {}", stringify!($name));
                Self($tables_fn().div(self.0 as u32, rhs.0 as u32) as $repr)
            }
        }

        impl DivAssign for $name {
            #[inline]
            fn div_assign(&mut self, rhs: Self) {
                *self = *self / rhs;
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + b)
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + *b)
            }
        }

        impl Product for $name {
            fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ONE, |a, b| a * b)
            }
        }

        impl<'a> Product<&'a $name> for $name {
            fn product<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.fold(Self::ONE, |a, b| a * *b)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                <Self as GaloisField>::from_u64(v as u64)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.to_u64()
            }
        }
    };
}

define_gf!(
    /// The 16-element field `GF(2^4)`, reduction polynomial `x^4 + x + 1`.
    ///
    /// Small enough for exhaustive verification of algebraic properties and
    /// of the MDS / Criterion-2 checks in `sec-linalg`.
    Gf16,
    u8,
    4,
    0x13,
    gf16_tables
);

define_gf!(
    /// The 256-element field `GF(2^8)`, reduction polynomial
    /// `x^8 + x^4 + x^3 + x^2 + 1` (0x11D, the classical Reed-Solomon choice).
    ///
    /// This is the default symbol alphabet for byte-oriented erasure coding.
    Gf256,
    u8,
    8,
    0x11D,
    gf256_tables
);

define_gf!(
    /// The 1024-element field `GF(2^10)`, reduction polynomial `x^10 + x^3 + 1`.
    ///
    /// The SEC paper's running example represents a 3 KB object as a vector of
    /// three symbols over an alphabet of size `q = 1024`; this type makes that
    /// example directly expressible.
    Gf1024,
    u16,
    10,
    0x409,
    gf1024_tables
);

define_gf!(
    /// The 65536-element field `GF(2^16)`, reduction polynomial
    /// `x^16 + x^12 + x^3 + x + 1` (0x1100B, as used by Jerasure).
    ///
    /// Needed when a single code must span more than 255 storage nodes or when
    /// wider symbols reduce table-lookup overhead per byte.
    Gf65536,
    u16,
    16,
    0x1100B,
    gf65536_tables
);

#[cfg(test)]
mod tests {
    use super::*;

    fn check_field_axioms_exhaustive<F: GaloisField>(step: u64) {
        let elems: Vec<F> = (0..F::ORDER).step_by(step as usize).map(F::from_u64).collect();
        for &a in &elems {
            // Identities.
            assert_eq!(a + F::ZERO, a);
            assert_eq!(a * F::ONE, a);
            assert_eq!(a * F::ZERO, F::ZERO);
            // Characteristic 2.
            assert_eq!(a + a, F::ZERO);
            assert_eq!(-a, a);
            // Inverse.
            if !a.is_zero() {
                let ai = a.inv().expect("non-zero element has an inverse");
                assert_eq!(a * ai, F::ONE);
                assert_eq!(F::ONE / a, ai);
            } else {
                assert!(a.inv().is_none());
            }
            for &b in &elems {
                assert_eq!(a + b, b + a);
                assert_eq!(a * b, b * a);
                assert_eq!(a - b, a + b);
                for &c in elems.iter().take(8) {
                    assert_eq!((a + b) + c, a + (b + c));
                    assert_eq!((a * b) * c, a * (b * c));
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    #[test]
    fn gf16_axioms_exhaustive() {
        check_field_axioms_exhaustive::<Gf16>(1);
    }

    #[test]
    fn gf256_axioms_sampled() {
        check_field_axioms_exhaustive::<Gf256>(5);
    }

    #[test]
    fn gf1024_axioms_sampled() {
        check_field_axioms_exhaustive::<Gf1024>(23);
    }

    #[test]
    fn gf65536_axioms_sampled() {
        check_field_axioms_exhaustive::<Gf65536>(509);
    }

    #[test]
    fn generator_has_full_order() {
        fn check<F: GaloisField>() {
            let g = F::generator();
            assert_eq!(g.pow(F::ORDER - 1), F::ONE);
            // The generator's order is exactly ORDER - 1: for every proper
            // prime divisor d of ORDER - 1, g^((ORDER-1)/d) != 1.
            let group = F::ORDER - 1;
            let mut m = group;
            let mut p = 2u64;
            let mut divisors = Vec::new();
            while p * p <= m {
                if m % p == 0 {
                    divisors.push(p);
                    while m % p == 0 {
                        m /= p;
                    }
                }
                p += 1;
            }
            if m > 1 {
                divisors.push(m);
            }
            for d in divisors {
                assert_ne!(g.pow(group / d), F::ONE, "generator order divides {}", group / d);
            }
        }
        check::<Gf16>();
        check::<Gf256>();
        check::<Gf1024>();
        check::<Gf65536>();
    }

    #[test]
    fn from_u64_masks_high_bits() {
        assert_eq!(Gf256::from_u64(0x1_00), Gf256::ZERO);
        assert_eq!(Gf256::from_u64(0x1_2A), Gf256::from_u64(0x2A));
        assert_eq!(Gf1024::from_u64(1 << 10), Gf1024::ZERO);
        assert_eq!(Gf16::from_u64(16), Gf16::ZERO);
    }

    #[test]
    fn display_and_hex_formatting() {
        let a = Gf256::from_u64(0xAB);
        assert_eq!(format!("{a}"), "171");
        assert_eq!(format!("{a:x}"), "ab");
        assert_eq!(format!("{a:X}"), "AB");
        assert_eq!(format!("{a:b}"), "10101011");
        assert_eq!(format!("{a:o}"), "253");
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Gf256::from_u64(1), Gf256::from_u64(2), Gf256::from_u64(3)];
        let s: Gf256 = xs.iter().sum();
        assert_eq!(s, Gf256::from_u64(1 ^ 2 ^ 3));
        let p: Gf256 = xs.iter().product();
        assert_eq!(p, Gf256::from_u64(1) * Gf256::from_u64(2) * Gf256::from_u64(3));
        let empty: [Gf256; 0] = [];
        assert_eq!(empty.iter().sum::<Gf256>(), Gf256::ZERO);
        assert_eq!(empty.iter().product::<Gf256>(), Gf256::ONE);
    }

    #[test]
    fn conversions_via_from() {
        let a: Gf256 = 7u8.into();
        assert_eq!(a.to_u64(), 7);
        let v: u64 = a.into();
        assert_eq!(v, 7);
        let b: Gf1024 = 1000u16.into();
        assert_eq!(b.raw(), 1000);
    }

    #[test]
    fn gf256_known_products() {
        // Known values for the 0x11D polynomial.
        let a = Gf256::from_u64(0x80);
        let two = Gf256::from_u64(2);
        assert_eq!(a * two, Gf256::from_u64(0x1D));
        assert_eq!(
            Gf256::from_u64(0x53) * Gf256::from_u64(0xCA) / Gf256::from_u64(0xCA),
            Gf256::from_u64(0x53)
        );
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }

    #[test]
    fn send_sync_impls() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gf16>();
        assert_send_sync::<Gf256>();
        assert_send_sync::<Gf1024>();
        assert_send_sync::<Gf65536>();
    }
}
