//! Log/exp table construction for binary extension fields.
//!
//! Each concrete field builds, on first use, a pair of tables
//! `exp[i] = g^i` and `log[g^i] = i` for a generator `g` of the multiplicative
//! group. Multiplication, division, inversion and exponentiation then reduce
//! to small integer arithmetic on discrete logarithms, which is the classical
//! implementation strategy of erasure-coding libraries (Jerasure, ISA-L).
//!
//! The construction is deliberately defensive: the generator is *searched*
//! rather than assumed, so a mistakenly non-primitive reduction polynomial
//! cannot silently produce a broken field — table construction would fail
//! loudly in that case (it cannot, for the irreducible polynomials used by
//! this crate, but the invariant is checked anyway).

/// Precomputed discrete-log tables for one `GF(2^w)` instance.
#[derive(Debug)]
pub(crate) struct FieldTables {
    /// `exp[i] = g^i` for `i` in `0..2*(order-1)` (doubled to skip a modulo in mul).
    pub exp: Vec<u32>,
    /// `log[x] = i` such that `g^i = x`, for `x` in `1..order`. `log[0]` is unused.
    pub log: Vec<u32>,
    /// The generator that was used to build the tables.
    pub generator: u32,
    /// Multiplicative group order, `2^w - 1`.
    pub group_order: u32,
}

/// Multiplies two elements of `GF(2^w)` represented as integers, reducing by
/// the irreducible polynomial `poly` (which includes the leading `x^w` term).
///
/// This is the slow carry-less "schoolbook" product used only while building
/// tables and in tests that cross-check the table-based arithmetic.
pub(crate) fn polymul_mod(a: u32, b: u32, poly: u32, bits: u32) -> u32 {
    let mut a = a as u64;
    let mut b = b as u64;
    let poly = poly as u64;
    let high_bit = 1u64 << bits;
    let mask = high_bit - 1;
    let mut acc: u64 = 0;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        b >>= 1;
        a <<= 1;
        if a & high_bit != 0 {
            a ^= poly;
        }
        a &= mask | high_bit;
    }
    (acc & mask) as u32
}

/// Computes the multiplicative order of `x` in `GF(2^w)` defined by `poly`,
/// or returns `0` when `x` is not invertible (which can only happen when
/// `poly` is reducible and the quotient ring has zero divisors).
fn element_order(x: u32, poly: u32, bits: u32) -> u32 {
    debug_assert!(x != 0);
    let group_order = (1u32 << bits) - 1;
    let mut acc = x;
    let mut order = 1u32;
    while acc != 1 {
        if acc == 0 || order > group_order {
            return 0;
        }
        acc = polymul_mod(acc, x, poly, bits);
        order += 1;
    }
    order
}

/// Builds the log/exp tables for `GF(2^w)` defined by the irreducible
/// polynomial `poly` (with the `x^w` term included, e.g. `0x11D` for w = 8).
///
/// # Panics
///
/// Panics if no generator can be found, which would indicate that `poly` is
/// not irreducible. All polynomials used by this crate are checked by tests.
pub(crate) fn build_tables(poly: u32, bits: u32) -> FieldTables {
    let order: u32 = 1 << bits;
    let group_order = order - 1;

    // Find a generator: the candidate must have multiplicative order 2^w - 1.
    // For primitive polynomials x = 2 succeeds immediately.
    let mut generator = 0u32;
    for candidate in 2..order {
        if element_order(candidate, poly, bits) == group_order {
            generator = candidate;
            break;
        }
    }
    assert!(
        generator != 0,
        "no generator found for GF(2^{bits}) with polynomial {poly:#x}; polynomial is not irreducible"
    );

    let mut exp = vec![0u32; 2 * group_order as usize];
    let mut log = vec![0u32; order as usize];
    let mut acc = 1u32;
    for i in 0..group_order as usize {
        exp[i] = acc;
        exp[i + group_order as usize] = acc;
        log[acc as usize] = i as u32;
        acc = polymul_mod(acc, generator, poly, bits);
    }
    assert_eq!(
        acc, 1,
        "generator order mismatch while building GF(2^{bits}) tables"
    );

    FieldTables {
        exp,
        log,
        generator,
        group_order,
    }
}

impl FieldTables {
    /// Table-based multiplication.
    #[inline]
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 {
            return 0;
        }
        let idx = self.log[a as usize] + self.log[b as usize];
        self.exp[idx as usize]
    }

    /// Table-based division. `b` must be non-zero.
    #[inline]
    pub fn div(&self, a: u32, b: u32) -> u32 {
        debug_assert!(b != 0, "division by zero in GF table");
        if a == 0 {
            return 0;
        }
        let idx = self.log[a as usize] + self.group_order - self.log[b as usize];
        self.exp[idx as usize]
    }

    /// Table-based multiplicative inverse of a non-zero element.
    #[inline]
    pub fn inv(&self, a: u32) -> u32 {
        debug_assert!(a != 0, "inverse of zero in GF table");
        self.exp[(self.group_order - self.log[a as usize]) as usize]
    }

    /// Table-based exponentiation of a non-zero element.
    #[inline]
    pub fn pow(&self, a: u32, e: u64) -> u32 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let e = (e % self.group_order as u64) as u32;
        let idx = (self.log[a as usize] as u64 * e as u64) % self.group_order as u64;
        self.exp[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLY8: u32 = 0x11D;

    #[test]
    fn polymul_small_cases() {
        // In GF(2^8)/0x11D: 2 * 2 = 4, 0x80 * 2 = 0x11D ^ 0x100 = 0x1D.
        assert_eq!(polymul_mod(2, 2, POLY8, 8), 4);
        assert_eq!(polymul_mod(0x80, 2, POLY8, 8), 0x1D);
        assert_eq!(polymul_mod(0, 0x57, POLY8, 8), 0);
        assert_eq!(polymul_mod(1, 0x57, POLY8, 8), 0x57);
    }

    #[test]
    fn gf256_tables_round_trip() {
        let t = build_tables(POLY8, 8);
        assert_eq!(t.group_order, 255);
        // exp/log are inverse permutations on non-zero elements.
        for x in 1u32..256 {
            assert_eq!(t.exp[t.log[x as usize] as usize], x);
        }
        // Table multiplication agrees with schoolbook multiplication.
        for a in 0u32..256 {
            for b in (0u32..256).step_by(7) {
                assert_eq!(t.mul(a, b), polymul_mod(a, b, POLY8, 8), "{a} * {b}");
            }
        }
    }

    #[test]
    fn gf256_inverse_is_correct() {
        let t = build_tables(POLY8, 8);
        for a in 1u32..256 {
            let ai = t.inv(a);
            assert_eq!(t.mul(a, ai), 1, "inv({a})");
            assert_eq!(t.div(1, a), ai);
        }
    }

    #[test]
    fn gf16_tables_build() {
        let t = build_tables(0x13, 4);
        assert_eq!(t.group_order, 15);
        for a in 1u32..16 {
            assert_eq!(t.mul(a, t.inv(a)), 1);
        }
    }

    #[test]
    fn gf1024_tables_build() {
        let t = build_tables(0x409, 10);
        assert_eq!(t.group_order, 1023);
        assert_eq!(t.mul(3, t.inv(3)), 1);
        assert_eq!(t.pow(t.generator, 1023), 1);
    }

    #[test]
    #[should_panic(expected = "not irreducible")]
    fn reducible_polynomial_is_rejected() {
        // x^4 + 1 = (x+1)^4 over GF(2) is not irreducible.
        build_tables(0x11, 4);
    }
}
