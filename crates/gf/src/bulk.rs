//! Bulk slice kernels: apply one field coefficient to a whole block of symbols.
//!
//! When an `(n, k)` code encodes a *block* of data rather than a single
//! symbol per position (the usual situation: each of the `k` source symbols
//! is really a shard of many field elements), each generator-matrix
//! coefficient multiplies an entire shard. These kernels implement that inner
//! loop — `dst += c * src` and friends — for any [`GaloisField`], so the
//! erasure layer stays free of per-symbol call overhead in its hot path.

use core::fmt;

use crate::GaloisField;

/// Error returned by the fallible (`try_`) bulk kernels when the destination
/// and source shards differ in length.
///
/// The panicking kernels treat a length mismatch as a programming error; the
/// `try_` variants exist for layers that process externally supplied (and
/// possibly corrupt) shards, such as the storage simulator, where a bad shard
/// length must surface as an error instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LengthMismatch {
    /// Length of the destination shard.
    pub expected: usize,
    /// Length of the offending source shard.
    pub actual: usize,
}

impl fmt::Display for LengthMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard length mismatch: destination holds {} symbols but source holds {}",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for LengthMismatch {}

/// Computes `dst[i] += c * src[i]` for every position.
///
/// This is the row-accumulation step of matrix-vector encoding over shards.
///
/// # Panics
///
/// Panics if `dst` and `src` have different lengths.
pub fn mul_add_assign<F: GaloisField>(dst: &mut [F], c: F, src: &[F]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_add_assign requires equally sized shards (dst {} vs src {})",
        dst.len(),
        src.len()
    );
    if c.is_zero() {
        return;
    }
    if c == F::ONE {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += c * s;
    }
}

/// Fallible form of [`mul_add_assign`]: reports a length mismatch as an error
/// instead of panicking.
///
/// # Errors
///
/// Returns [`LengthMismatch`] when `dst` and `src` have different lengths; the
/// destination is left untouched in that case.
pub fn try_mul_add_assign<F: GaloisField>(dst: &mut [F], c: F, src: &[F]) -> Result<(), LengthMismatch> {
    if dst.len() != src.len() {
        return Err(LengthMismatch {
            expected: dst.len(),
            actual: src.len(),
        });
    }
    mul_add_assign(dst, c, src);
    Ok(())
}

/// Computes `dst[i] = c * src[i]` for every position.
///
/// # Panics
///
/// Panics if `dst` and `src` have different lengths.
pub fn mul_into<F: GaloisField>(dst: &mut [F], c: F, src: &[F]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_into requires equally sized shards (dst {} vs src {})",
        dst.len(),
        src.len()
    );
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = c * s;
    }
}

/// Multiplies every element of `data` by `c` in place.
pub fn scale_assign<F: GaloisField>(data: &mut [F], c: F) {
    if c == F::ONE {
        return;
    }
    for d in data.iter_mut() {
        *d *= c;
    }
}

/// Computes `dst[i] += src[i]` (XOR accumulation) for every position.
///
/// # Panics
///
/// Panics if `dst` and `src` have different lengths.
pub fn add_assign<F: GaloisField>(dst: &mut [F], src: &[F]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "add_assign requires equally sized shards (dst {} vs src {})",
        dst.len(),
        src.len()
    );
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Element-wise difference `a[i] - b[i]`, the "delta" of two equally sized
/// shards. In characteristic two this is the XOR of the shards, exactly the
/// `z_{j+1} = x_{j+1} - x_j` operation of the SEC paper.
///
/// # Panics
///
/// Panics if the shards have different lengths.
pub fn diff<F: GaloisField>(a: &[F], b: &[F]) -> Vec<F> {
    assert_eq!(
        a.len(),
        b.len(),
        "diff requires equally sized shards ({} vs {})",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Number of non-zero entries of a shard — the sparsity level `γ` of a delta.
pub fn weight<F: GaloisField>(data: &[F]) -> usize {
    data.iter().filter(|c| !c.is_zero()).count()
}

/// Inner product of two equally sized shards.
///
/// # Panics
///
/// Panics if the shards have different lengths.
pub fn dot<F: GaloisField>(a: &[F], b: &[F]) -> F {
    assert_eq!(
        a.len(),
        b.len(),
        "dot requires equally sized shards ({} vs {})",
        a.len(),
        b.len()
    );
    a.iter().zip(b).fold(F::ZERO, |acc, (&x, &y)| acc + x * y)
}

/// Converts a byte slice into field symbols, one byte per symbol.
///
/// For fields wider than 8 bits each byte still maps to one symbol (zero
/// padded into the high bits), which keeps the mapping trivially invertible
/// via [`symbols_to_bytes`] regardless of the field in use.
pub fn bytes_to_symbols<F: GaloisField>(bytes: &[u8]) -> Vec<F> {
    bytes.iter().map(|&b| F::from_u64(b as u64)).collect()
}

/// Converts symbols back to bytes, the inverse of [`bytes_to_symbols`].
///
/// # Panics
///
/// Panics if a symbol does not fit in a byte (i.e. it was not produced by
/// [`bytes_to_symbols`]).
pub fn symbols_to_bytes<F: GaloisField>(symbols: &[F]) -> Vec<u8> {
    symbols
        .iter()
        .map(|s| {
            let v = s.to_u64();
            assert!(v <= u8::MAX as u64, "symbol {v} does not fit in a byte");
            v as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf1024, Gf256};

    fn shard(values: &[u64]) -> Vec<Gf256> {
        values.iter().map(|&v| Gf256::from_u64(v)).collect()
    }

    #[test]
    fn mul_add_assign_accumulates() {
        let mut dst = shard(&[1, 2, 3]);
        let src = shard(&[4, 5, 6]);
        let c = Gf256::from_u64(7);
        mul_add_assign(&mut dst, c, &src);
        let expect: Vec<Gf256> = shard(&[1, 2, 3])
            .into_iter()
            .zip(shard(&[4, 5, 6]))
            .map(|(d, s)| d + c * s)
            .collect();
        assert_eq!(dst, expect);
    }

    #[test]
    fn mul_add_assign_zero_and_one_fast_paths() {
        let mut dst = shard(&[9, 9, 9]);
        let src = shard(&[1, 2, 3]);
        mul_add_assign(&mut dst, Gf256::ZERO, &src);
        assert_eq!(dst, shard(&[9, 9, 9]));
        mul_add_assign(&mut dst, Gf256::ONE, &src);
        assert_eq!(dst, shard(&[9 ^ 1, 9 ^ 2, 9 ^ 3]));
    }

    #[test]
    #[should_panic(expected = "mul_add_assign requires equally sized shards (dst 1 vs src 2)")]
    fn mul_add_assign_length_mismatch_panics() {
        let mut dst = shard(&[1]);
        mul_add_assign(&mut dst, Gf256::ONE, &shard(&[1, 2]));
    }

    #[test]
    fn try_mul_add_assign_returns_error_instead_of_panicking() {
        let mut dst = shard(&[1, 2]);
        let err = try_mul_add_assign(&mut dst, Gf256::ONE, &shard(&[1, 2, 3])).unwrap_err();
        assert_eq!(
            err,
            LengthMismatch {
                expected: 2,
                actual: 3
            }
        );
        assert!(err.to_string().contains("destination holds 2"));
        // The destination is untouched after a rejected call.
        assert_eq!(dst, shard(&[1, 2]));
        try_mul_add_assign(&mut dst, Gf256::ONE, &shard(&[4, 5])).unwrap();
        assert_eq!(dst, shard(&[1 ^ 4, 2 ^ 5]));
    }

    #[test]
    fn mul_into_and_scale() {
        let src = shard(&[1, 2, 3]);
        let mut dst = vec![Gf256::ZERO; 3];
        let c = Gf256::from_u64(5);
        mul_into(&mut dst, c, &src);
        assert_eq!(dst, vec![c * src[0], c * src[1], c * src[2]]);
        let mut copy = src.clone();
        scale_assign(&mut copy, c);
        assert_eq!(copy, dst);
        scale_assign(&mut copy, Gf256::ONE);
        assert_eq!(copy, dst);
    }

    #[test]
    fn diff_is_xor_and_weight_counts_changes() {
        let a = shard(&[10, 20, 30, 40]);
        let b = shard(&[10, 21, 30, 44]);
        let d = diff(&a, &b);
        assert_eq!(weight(&d), 2);
        assert_eq!(d[0], Gf256::ZERO);
        assert_eq!(d[1], Gf256::from_u64(20 ^ 21));
        // Applying the delta to b recovers a.
        let mut recovered = b.clone();
        add_assign(&mut recovered, &d);
        assert_eq!(recovered, a);
    }

    #[test]
    fn dot_product_linear_in_first_argument() {
        let a = shard(&[1, 2, 3]);
        let b = shard(&[7, 11, 13]);
        let c = shard(&[5, 0, 9]);
        let ab = dot(&a, &b);
        let cb = dot(&c, &b);
        let sum: Vec<Gf256> = a.iter().zip(&c).map(|(&x, &y)| x + y).collect();
        assert_eq!(dot(&sum, &b), ab + cb);
    }

    #[test]
    fn bytes_round_trip_through_symbols() {
        let bytes: Vec<u8> = (0..=255).collect();
        let sym: Vec<Gf256> = bytes_to_symbols(&bytes);
        assert_eq!(symbols_to_bytes(&sym), bytes);
        let wide: Vec<Gf1024> = bytes_to_symbols(&bytes);
        assert_eq!(symbols_to_bytes(&wide), bytes);
    }

    #[test]
    fn weight_of_zero_shard_is_zero() {
        assert_eq!(weight(&[Gf256::ZERO; 16]), 0);
        assert_eq!(weight(&shard(&[])), 0);
    }
}
