//! Dense univariate polynomials over a Galois field.
//!
//! Polynomials are used by the erasure layer for Lagrange-interpolation-based
//! sanity checks of Vandermonde codes and by tests that cross-validate the
//! Cauchy-matrix decoders. Coefficients are stored in ascending degree order
//! (`coeffs[i]` multiplies `x^i`) and the representation is kept normalized:
//! the leading coefficient is never zero (the zero polynomial has an empty
//! coefficient vector).

use crate::GaloisField;

/// A dense polynomial with coefficients in the field `F`.
///
/// # Example
///
/// ```rust
/// use sec_gf::{Gf256, GaloisField, Poly};
///
/// // p(x) = 3 + x^2 over GF(2^8)
/// let p = Poly::new(vec![Gf256::from_u64(3), Gf256::ZERO, Gf256::ONE]);
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.eval(Gf256::from_u64(2)), Gf256::from_u64(3) + Gf256::from_u64(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly<F> {
    coeffs: Vec<F>,
}

impl<F: GaloisField> Poly<F> {
    /// Creates a polynomial from coefficients in ascending degree order.
    ///
    /// Trailing zero coefficients are stripped so that equality behaves
    /// structurally.
    pub fn new(coeffs: Vec<F>) -> Self {
        let mut p = Self { coeffs };
        p.normalize();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Self { coeffs: vec![F::ONE] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Self {
        Self::new(vec![c])
    }

    /// The monomial `c * x^degree`.
    pub fn monomial(c: F, degree: usize) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        let mut coeffs = vec![F::ZERO; degree + 1];
        coeffs[degree] = c;
        Self { coeffs }
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of `x^i` (zero beyond the stored degree).
    pub fn coeff(&self, i: usize) -> F {
        self.coeffs.get(i).copied().unwrap_or(F::ZERO)
    }

    /// Coefficients in ascending degree order (no trailing zeros).
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Horner evaluation at `x`.
    pub fn eval(&self, x: F) -> F {
        let mut acc = F::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = Vec::with_capacity(n);
        for i in 0..n {
            coeffs.push(self.coeff(i) + other.coeff(i));
        }
        Self::new(coeffs)
    }

    /// Polynomial subtraction (identical to addition in characteristic two,
    /// kept separate for readability at call sites).
    pub fn sub(&self, other: &Self) -> Self {
        self.add(other)
    }

    /// Schoolbook polynomial multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut coeffs = vec![F::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Self::new(coeffs)
    }

    /// Multiplies every coefficient by the scalar `c`.
    pub fn scale(&self, c: F) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        Self::new(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = quotient * divisor + remainder` and
    /// `deg(remainder) < deg(divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let dd = divisor.degree().expect("non-zero divisor");
        if self.degree().map_or(true, |d| d < dd) {
            return (Self::zero(), self.clone());
        }
        let lead_inv = divisor.coeffs[dd]
            .inv()
            .expect("leading coefficient of a normalized polynomial is non-zero");
        let mut rem = self.coeffs.clone();
        let qd = rem.len() - 1 - dd;
        let mut quot = vec![F::ZERO; qd + 1];
        for i in (0..=qd).rev() {
            let c = rem[i + dd] * lead_inv;
            quot[i] = c;
            if c.is_zero() {
                continue;
            }
            for (j, &dj) in divisor.coeffs.iter().enumerate() {
                rem[i + j] -= c * dj;
            }
        }
        (Self::new(quot), Self::new(rem))
    }

    /// Formal derivative (over characteristic 2, even-degree terms vanish).
    pub fn derivative(&self) -> Self {
        if self.coeffs.len() <= 1 {
            return Self::zero();
        }
        let mut coeffs = Vec::with_capacity(self.coeffs.len() - 1);
        for (i, &c) in self.coeffs.iter().enumerate().skip(1) {
            // i * c in a field of characteristic 2 is c when i is odd, 0 when even.
            coeffs.push(if i % 2 == 1 { c } else { F::ZERO });
        }
        Self::new(coeffs)
    }

    /// Unique polynomial of degree `< points.len()` passing through every
    /// `(x, y)` pair (Lagrange interpolation).
    ///
    /// # Panics
    ///
    /// Panics if two interpolation points share the same `x` coordinate.
    pub fn interpolate(points: &[(F, F)]) -> Self {
        let mut acc = Self::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            // basis_i(x) = prod_{j != i} (x - x_j) / (x_i - x_j)
            let mut basis = Self::one();
            let mut denom = F::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert!(xi != xj, "duplicate interpolation abscissa {xi:?}");
                basis = basis.mul(&Self::new(vec![xj, F::ONE]));
                denom *= xi - xj;
            }
            let coeff = yi * denom.inv().expect("distinct abscissae give non-zero denominator");
            acc = acc.add(&basis.scale(coeff));
        }
        acc
    }

    /// Product `(x - roots[0]) (x - roots[1]) ...` — the monic polynomial
    /// vanishing exactly on the given multiset of roots.
    pub fn from_roots(roots: &[F]) -> Self {
        let mut acc = Self::one();
        for &r in roots {
            acc = acc.mul(&Self::new(vec![r, F::ONE]));
        }
        acc
    }

    fn normalize(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf16, Gf256};

    fn p256(coeffs: &[u64]) -> Poly<Gf256> {
        Poly::new(coeffs.iter().map(|&c| Gf256::from_u64(c)).collect())
    }

    #[test]
    fn normalization_strips_trailing_zeros() {
        let p = p256(&[1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p, p256(&[1, 2]));
        assert!(p256(&[0, 0]).is_zero());
        assert_eq!(p256(&[]).degree(), None);
    }

    #[test]
    fn evaluation_matches_manual_horner() {
        let p = p256(&[3, 0, 1]); // 3 + x^2
        let x = Gf256::from_u64(2);
        assert_eq!(p.eval(x), Gf256::from_u64(3) + x * x);
        assert_eq!(p.eval(Gf256::ZERO), Gf256::from_u64(3));
        assert_eq!(Poly::<Gf256>::zero().eval(x), Gf256::ZERO);
    }

    #[test]
    fn add_mul_are_consistent_with_eval() {
        let p = p256(&[1, 2, 3]);
        let q = p256(&[5, 0, 0, 7]);
        let s = p.add(&q);
        let m = p.mul(&q);
        for v in 0u64..16 {
            let x = Gf256::from_u64(v);
            assert_eq!(s.eval(x), p.eval(x) + q.eval(x));
            assert_eq!(m.eval(x), p.eval(x) * q.eval(x));
        }
    }

    #[test]
    fn mul_degree_adds() {
        let p = p256(&[1, 1]); // deg 1
        let q = p256(&[2, 0, 5]); // deg 2
        assert_eq!(p.mul(&q).degree(), Some(3));
        assert!(p.mul(&Poly::zero()).is_zero());
    }

    #[test]
    fn div_rem_round_trips() {
        let p = p256(&[7, 1, 0, 3, 9]);
        let d = p256(&[2, 5, 1]);
        let (q, r) = p.div_rem(&d);
        assert!(r.degree().map_or(true, |rd| rd < d.degree().unwrap()));
        assert_eq!(q.mul(&d).add(&r), p);
    }

    #[test]
    fn div_rem_by_larger_degree_is_remainder_only() {
        let p = p256(&[1, 2]);
        let d = p256(&[1, 0, 0, 1]);
        let (q, r) = p.div_rem(&d);
        assert!(q.is_zero());
        assert_eq!(r, p);
    }

    #[test]
    #[should_panic(expected = "polynomial division by zero")]
    fn div_by_zero_panics() {
        let _ = p256(&[1, 2]).div_rem(&Poly::zero());
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let p = p256(&[9, 4, 0, 11]);
        let points: Vec<(Gf256, Gf256)> = (1..=4)
            .map(|v| {
                let x = Gf256::from_u64(v);
                (x, p.eval(x))
            })
            .collect();
        assert_eq!(Poly::interpolate(&points), p);
    }

    #[test]
    fn interpolation_through_arbitrary_points() {
        let points = vec![
            (Gf16::from_u64(1), Gf16::from_u64(7)),
            (Gf16::from_u64(2), Gf16::from_u64(3)),
            (Gf16::from_u64(5), Gf16::from_u64(0)),
            (Gf16::from_u64(9), Gf16::from_u64(12)),
        ];
        let p = Poly::interpolate(&points);
        assert!(p.degree().unwrap_or(0) < points.len());
        for &(x, y) in &points {
            assert_eq!(p.eval(x), y);
        }
    }

    #[test]
    fn from_roots_vanishes_on_roots() {
        let roots = vec![Gf256::from_u64(3), Gf256::from_u64(17), Gf256::from_u64(200)];
        let p = Poly::from_roots(&roots);
        assert_eq!(p.degree(), Some(3));
        for &r in &roots {
            assert_eq!(p.eval(r), Gf256::ZERO);
        }
        assert_ne!(p.eval(Gf256::from_u64(5)), Gf256::ZERO);
    }

    #[test]
    fn derivative_char2() {
        // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + 3 c3 x^2 = c1 + c3 x^2 (char 2)
        let p = p256(&[4, 5, 6, 7]);
        let d = p.derivative();
        assert_eq!(d, p256(&[5, 0, 7]));
        assert!(Poly::<Gf256>::constant(Gf256::from_u64(9)).derivative().is_zero());
    }

    #[test]
    fn monomial_and_constant_constructors() {
        assert_eq!(Poly::<Gf256>::monomial(Gf256::from_u64(3), 2), p256(&[0, 0, 3]));
        assert!(Poly::<Gf256>::monomial(Gf256::ZERO, 5).is_zero());
        assert_eq!(Poly::<Gf256>::constant(Gf256::from_u64(8)).degree(), Some(0));
        assert_eq!(Poly::<Gf256>::one().eval(Gf256::from_u64(200)), Gf256::ONE);
    }
}
