//! Byte-oriented `GF(2^8)` fast-path kernels: split multiplication tables and
//! chunked slice operations over raw `&[u8]` shards.
//!
//! The generic [`bulk`](crate::bulk) kernels multiply one `GaloisField`
//! element at a time, which costs a table-pointer load and several branches
//! per symbol. When the field is [`Gf256`] a shard is just bytes, and a
//! coefficient `c` can be applied through a precomputed 256-entry product
//! table (built from the classic high/low-nibble *split tables*, 2 × 16
//! entries per coefficient), and [`CoeffTables`] caches the tables per
//! coefficient so repeated generator-matrix rows reuse them.
//!
//! Every slice entry point here dispatches through the runtime-selected
//! [`kernel`](crate::kernel): SSSE3/AVX2 `PSHUFB` or NEON `TBL` nibble
//! lookups where the CPU supports them, otherwise portable scalar loops over
//! the flattened table in [`CHUNK`]-byte blocks. Calling code never notices
//! which kernel ran — all of them are locked bit-identical by differential
//! tests — and `SEC_GF_KERNEL=scalar` (or
//! [`force_kernel`](crate::kernel::force_kernel)) pins the scalar path.
//!
//! The scalar [`bulk`](crate::bulk) path remains the reference
//! implementation: the property tests in this crate and the differential
//! suite in `sec-erasure` assert the two paths are byte-identical.
//!
//! # Example
//!
//! ```rust
//! use sec_gf::{bulk8, GaloisField, Gf256};
//!
//! let tables = bulk8::CoeffTables::new();
//! let c = Gf256::from_u64(0x53);
//! let src = [0x01u8, 0xCA, 0xFF];
//! let mut dst = [0u8; 3];
//! tables.mul_add_slice(c, &src, &mut dst);
//! for (i, &s) in src.iter().enumerate() {
//!     assert_eq!(u64::from(dst[i]), (c * Gf256::from_u64(u64::from(s))).to_u64());
//! }
//! ```

use std::sync::OnceLock;

use crate::bulk::LengthMismatch;
use crate::{GaloisField, Gf256};

/// Bytes processed per inner-loop step of every kernel.
///
/// The fixed trip count lets the compiler unroll the loop and elide bounds
/// checks; 64 bytes is one cache line and a multiple of every common SIMD
/// register width.
pub const CHUNK: usize = 64;

/// Precomputed multiplication tables for one `GF(2^8)` coefficient.
///
/// Built from the high/low-nibble split tables — `lo[x] = c·x` and
/// `hi[x] = c·(x·16)` for `x ∈ 0..16` — so that
/// `c·b = lo[b & 0xF] ⊕ hi[b >> 4]` for any byte `b`. A flattened 256-entry
/// product table is derived from the pair for the scalar inner loops; the
/// split tables themselves are exactly what the SIMD kernels load into
/// vector registers for `PSHUFB`/`TBL` nibble lookups (see
/// [`kernel`](crate::kernel)).
#[derive(Debug, Clone)]
pub struct MulTable {
    lo: [u8; 16],
    hi: [u8; 16],
    flat: [u8; 256],
}

impl MulTable {
    /// Builds the tables for coefficient `c`.
    pub fn new(c: Gf256) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 0..16u64 {
            lo[x as usize] = (c * Gf256::from_u64(x)).to_u64() as u8;
            hi[x as usize] = (c * Gf256::from_u64(x << 4)).to_u64() as u8;
        }
        let mut flat = [0u8; 256];
        for (x, slot) in flat.iter_mut().enumerate() {
            *slot = lo[x & 0xF] ^ hi[x >> 4];
        }
        Self { lo, hi, flat }
    }

    /// The low-nibble split table: `lo[x] = c·x` for `x ∈ 0..16`.
    pub fn low_nibble(&self) -> &[u8; 16] {
        &self.lo
    }

    /// The high-nibble split table: `hi[x] = c·(x·16)` for `x ∈ 0..16`.
    pub fn high_nibble(&self) -> &[u8; 16] {
        &self.hi
    }

    /// Multiplies one byte by the table's coefficient.
    #[inline]
    pub fn mul(&self, b: u8) -> u8 {
        self.flat[b as usize]
    }
}

/// A lazily filled cache of [`MulTable`]s keyed by coefficient.
///
/// An `(n, k)` encode touches `n·k` generator coefficients and reuses each
/// across every 64-byte chunk of every block, so building the 288-byte table
/// once per coefficient amortizes to nothing. The cache is internally
/// synchronized (`OnceLock` per slot) and can be shared across threads.
#[derive(Debug)]
pub struct CoeffTables {
    slots: Vec<OnceLock<MulTable>>,
}

impl Default for CoeffTables {
    fn default() -> Self {
        Self::new()
    }
}

impl CoeffTables {
    /// Creates an empty cache (no tables are built until first use).
    pub fn new() -> Self {
        Self {
            slots: (0..256).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The table for coefficient `c`, building it on first request.
    pub fn get(&self, c: Gf256) -> &MulTable {
        self.slots[c.to_u64() as usize].get_or_init(|| MulTable::new(c))
    }

    /// Number of coefficients whose tables have been built so far.
    ///
    /// Tables are built **lazily, one per distinct coefficient**, the first
    /// time [`CoeffTables::get`] sees that coefficient — never eagerly. The
    /// `c = 0` and `c = 1` fast paths in [`CoeffTables::mul_add_slice`] /
    /// [`CoeffTables::mul_slice`] skip the cache entirely, so after an
    /// encode this counts exactly the distinct generator coefficients
    /// outside `{0, 1}`, not every coefficient the matrix mentions.
    pub fn cached_coefficients(&self) -> usize {
        self.slots.iter().filter(|slot| slot.get().is_some()).count()
    }

    /// Computes `dst[i] ^= c · src[i]` through the cached table, with fast
    /// paths for `c = 0` (no-op) and `c = 1` (plain XOR).
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` have different lengths.
    pub fn mul_add_slice(&self, c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_slice_lengths("mul_add_slice", dst.len(), src.len());
        if c.is_zero() {
            return;
        }
        if c == Gf256::ONE {
            xor_accumulate(dst, &[src]);
            return;
        }
        mul_add_with(self.get(c), src, dst);
    }

    /// Fallible form of [`CoeffTables::mul_add_slice`]: returns the length
    /// mismatch instead of panicking, so storage simulations can reject a
    /// corrupt shard without aborting.
    ///
    /// # Errors
    ///
    /// Returns [`LengthMismatch`] when `dst` and `src` differ in length.
    pub fn try_mul_add_slice(&self, c: Gf256, src: &[u8], dst: &mut [u8]) -> Result<(), LengthMismatch> {
        if dst.len() != src.len() {
            return Err(LengthMismatch {
                expected: dst.len(),
                actual: src.len(),
            });
        }
        self.mul_add_slice(c, src, dst);
        Ok(())
    }

    /// Computes `dst[i] = c · src[i]` through the cached table, with fast
    /// paths for `c = 0` (zero fill) and `c = 1` (copy).
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` have different lengths.
    pub fn mul_slice(&self, c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_slice_lengths("mul_slice", dst.len(), src.len());
        if c.is_zero() {
            dst.fill(0);
            return;
        }
        if c == Gf256::ONE {
            dst.copy_from_slice(src);
            return;
        }
        mul_with(self.get(c), src, dst);
    }
}

/// Computes `dst[i] ^= c · src[i]`, building a one-shot table.
///
/// Prefer [`CoeffTables::mul_add_slice`] in loops that reuse coefficients.
///
/// # Panics
///
/// Panics if `dst` and `src` have different lengths.
pub fn mul_add_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_slice_lengths("mul_add_slice", dst.len(), src.len());
    if c.is_zero() {
        return;
    }
    if c == Gf256::ONE {
        xor_accumulate(dst, &[src]);
        return;
    }
    mul_add_with(&MulTable::new(c), src, dst);
}

/// Fallible form of [`mul_add_slice`]: reports a length mismatch as an error
/// instead of panicking, so layers handling externally supplied (possibly
/// corrupt) shards can reject them without aborting.
///
/// # Errors
///
/// Returns [`LengthMismatch`] when `dst` and `src` differ in length; the
/// destination is left untouched in that case.
pub fn try_mul_add_slice(c: Gf256, src: &[u8], dst: &mut [u8]) -> Result<(), LengthMismatch> {
    if dst.len() != src.len() {
        return Err(LengthMismatch {
            expected: dst.len(),
            actual: src.len(),
        });
    }
    mul_add_slice(c, src, dst);
    Ok(())
}

/// Computes `dst[i] = c · src[i]`, building a one-shot table.
///
/// Prefer [`CoeffTables::mul_slice`] in loops that reuse coefficients.
///
/// # Panics
///
/// Panics if `dst` and `src` have different lengths.
pub fn mul_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_slice_lengths("mul_slice", dst.len(), src.len());
    if c.is_zero() {
        dst.fill(0);
        return;
    }
    if c == Gf256::ONE {
        dst.copy_from_slice(src);
        return;
    }
    mul_with(&MulTable::new(c), src, dst);
}

/// XORs every source row into `dst` (`dst[i] ^= src_1[i] ^ … ^ src_m[i]`),
/// the multi-row accumulation kernel behind coefficient-1 rows and byte-level
/// delta application.
///
/// The destination is tiled into L1-sized strips and every source is applied
/// to a strip before moving on, so the destination strip stays hot across
/// rows; within a strip the active [`kernel`](crate::kernel) runs.
///
/// # Panics
///
/// Panics if any source length differs from `dst`.
pub fn xor_accumulate(dst: &mut [u8], srcs: &[&[u8]]) {
    for src in srcs {
        assert_slice_lengths("xor_accumulate", dst.len(), src.len());
    }
    crate::kernel::xor_accumulate_with(crate::kernel::active_ops(), dst, srcs);
}

/// Fused multi-source product row: `dst[i] = Σ_j tables_j.mul(srcs_j[i])`
/// (sum in `GF(2^8)`, i.e. XOR), overwriting `dst`.
///
/// This is the inner loop of block encode/decode: one output row is a linear
/// combination of `k` source shards. The destination is tiled into L1-sized
/// strips; within a strip the first source is written with a plain multiply
/// and every further source fused in with multiply-accumulate, so the strip
/// stays hot across all `k` sources and is streamed out exactly once.
///
/// Zero coefficients should be filtered out by the caller; the identity
/// coefficient works through its (identity) table.
///
/// # Panics
///
/// Panics if any source length differs from `dst`.
pub fn mul_multi(sources: &[(&MulTable, &[u8])], dst: &mut [u8]) {
    for (_, src) in sources {
        assert_slice_lengths("mul_multi", dst.len(), src.len());
    }
    crate::kernel::mul_multi_with(crate::kernel::active_ops(), sources, dst);
}

/// Kernel-dispatched `dst[i] ^= table.mul(src[i])`; lengths already checked.
fn mul_add_with(table: &MulTable, src: &[u8], dst: &mut [u8]) {
    (crate::kernel::active_ops().mul_add)(table, src, dst);
}

/// Kernel-dispatched `dst[i] = table.mul(src[i])`; lengths already checked.
fn mul_with(table: &MulTable, src: &[u8], dst: &mut [u8]) {
    (crate::kernel::active_ops().mul)(table, src, dst);
}

pub(crate) fn assert_slice_lengths(op: &str, dst: usize, src: usize) {
    assert_eq!(
        dst, src,
        "{op} requires equally sized byte shards (dst {dst} vs src {src})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_mul(c: Gf256, b: u8) -> u8 {
        (c * Gf256::from_u64(u64::from(b))).to_u64() as u8
    }

    #[test]
    fn split_tables_agree_with_field_multiplication() {
        for c in [0u64, 1, 2, 0x1D, 0x53, 0xCA, 0xFF] {
            let c = Gf256::from_u64(c);
            let t = MulTable::new(c);
            for b in 0..=255u8 {
                let split = t.low_nibble()[(b & 0xF) as usize] ^ t.high_nibble()[(b >> 4) as usize];
                assert_eq!(t.mul(b), scalar_mul(c, b), "flat {c} * {b}");
                assert_eq!(split, scalar_mul(c, b), "split {c} * {b}");
            }
        }
    }

    #[test]
    fn mul_add_slice_matches_scalar_on_awkward_lengths() {
        let tables = CoeffTables::new();
        for len in [0usize, 1, 3, 63, 64, 65, 127, 200] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let mut dst: Vec<u8> = (0..len).map(|i| (i * 5 + 1) as u8).collect();
            let c = Gf256::from_u64(0x8E);
            let expect: Vec<u8> = dst
                .iter()
                .zip(&src)
                .map(|(&d, &s)| d ^ scalar_mul(c, s))
                .collect();
            tables.mul_add_slice(c, &src, &mut dst);
            assert_eq!(dst, expect, "len {len}");
        }
    }

    #[test]
    fn mul_slice_fast_paths() {
        let tables = CoeffTables::new();
        let src: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let mut dst = vec![0xAAu8; 100];
        tables.mul_slice(Gf256::ZERO, &src, &mut dst);
        assert!(dst.iter().all(|&b| b == 0));
        tables.mul_slice(Gf256::ONE, &src, &mut dst);
        assert_eq!(dst, src);
        mul_slice(Gf256::from_u64(7), &src, &mut dst);
        let expect: Vec<u8> = src.iter().map(|&s| scalar_mul(Gf256::from_u64(7), s)).collect();
        assert_eq!(dst, expect);
    }

    #[test]
    fn mul_add_fast_paths_and_one_shot_form() {
        let src: Vec<u8> = (0..70).map(|i| (i ^ 0x5A) as u8).collect();
        let mut dst = vec![0x0Fu8; 70];
        mul_add_slice(Gf256::ZERO, &src, &mut dst);
        assert!(dst.iter().all(|&b| b == 0x0F));
        mul_add_slice(Gf256::ONE, &src, &mut dst);
        let expect: Vec<u8> = src.iter().map(|&s| 0x0F ^ s).collect();
        assert_eq!(dst, expect);
    }

    #[test]
    fn xor_accumulate_multi_row() {
        let a: Vec<u8> = (0..130).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..130).map(|i| (i * 3) as u8).collect();
        let c: Vec<u8> = (0..130).map(|i| (i * 7 + 1) as u8).collect();
        let mut dst = vec![0u8; 130];
        xor_accumulate(&mut dst, &[&a, &b, &c]);
        for i in 0..130 {
            assert_eq!(dst[i], a[i] ^ b[i] ^ c[i]);
        }
        // Zero sources leave the destination untouched.
        let before = dst.clone();
        xor_accumulate(&mut dst, &[]);
        assert_eq!(dst, before);
    }

    #[test]
    fn mul_multi_matches_sequential_kernels() {
        let tables = CoeffTables::new();
        for len in [0usize, 1, 63, 64, 65, 130] {
            let srcs: Vec<Vec<u8>> = (0..3)
                .map(|r| (0..len).map(|i| ((r * 97 + i * 13 + 5) & 0xFF) as u8).collect())
                .collect();
            let coeffs = [Gf256::from_u64(3), Gf256::ONE, Gf256::from_u64(0xB1)];
            let mut expect = vec![0u8; len];
            for (c, src) in coeffs.iter().zip(&srcs) {
                tables.mul_add_slice(*c, src, &mut expect);
            }
            let sources: Vec<(&MulTable, &[u8])> = coeffs
                .iter()
                .zip(&srcs)
                .map(|(&c, s)| (tables.get(c), s.as_slice()))
                .collect();
            let mut fused = vec![0xEEu8; len]; // mul_multi overwrites
            mul_multi(&sources, &mut fused);
            assert_eq!(fused, expect, "len {len}");
            // No sources → zero row.
            mul_multi(&[], &mut fused);
            assert!(fused.iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn coefficient_cache_is_lazy_and_reused() {
        let tables = CoeffTables::new();
        assert_eq!(tables.cached_coefficients(), 0);
        let c = Gf256::from_u64(0x42);
        let first = tables.get(c) as *const MulTable;
        let second = tables.get(c) as *const MulTable;
        assert_eq!(first, second, "same coefficient must reuse its table");
        assert_eq!(tables.cached_coefficients(), 1);
        // Fast-path coefficients do not populate the cache.
        let mut dst = vec![0u8; 8];
        tables.mul_add_slice(Gf256::ZERO, &[0; 8], &mut dst);
        tables.mul_add_slice(Gf256::ONE, &[1; 8], &mut dst);
        assert_eq!(tables.cached_coefficients(), 1);
    }

    #[test]
    fn try_mul_add_slice_reports_mismatch() {
        let tables = CoeffTables::new();
        let mut dst = vec![0u8; 4];
        let err = tables
            .try_mul_add_slice(Gf256::ONE, &[0u8; 5], &mut dst)
            .unwrap_err();
        assert_eq!(
            err,
            LengthMismatch {
                expected: 4,
                actual: 5
            }
        );
        assert!(tables.try_mul_add_slice(Gf256::ONE, &[1u8; 4], &mut dst).is_ok());
        assert_eq!(dst, vec![1u8; 4]);
    }

    #[test]
    #[should_panic(expected = "mul_add_slice requires equally sized byte shards (dst 2 vs src 3)")]
    fn mul_add_slice_length_mismatch_panics() {
        let mut dst = [0u8; 2];
        mul_add_slice(Gf256::ONE, &[0u8; 3], &mut dst);
    }

    #[test]
    #[should_panic(expected = "xor_accumulate requires equally sized byte shards")]
    fn xor_accumulate_length_mismatch_panics() {
        let mut dst = [0u8; 2];
        xor_accumulate(&mut dst, &[&[0u8; 2], &[0u8; 1]]);
    }
}
