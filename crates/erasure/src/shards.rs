//! Shard-level bulk encoding and decoding.
//!
//! A real storage object is much larger than `k` field symbols. The standard
//! layout splits it into `k` equally sized *data shards*; each coded symbol
//! of the `(n, k)` code then becomes a *coded shard* of the same length,
//! where the generator coefficient multiplies the whole shard element-wise.
//! This module provides that layer on top of [`SecCode`], using the bulk
//! kernels from `sec-gf` for the inner loops.

use sec_gf::{bulk, GaloisField};
use sec_linalg::ops;

use crate::code::{SecCode, Share};
use crate::error::CodeError;

/// Encodes `k` equally sized data shards into `n` coded shards.
///
/// # Errors
///
/// * [`CodeError::DataLengthMismatch`] if the number of shards is not `k`.
/// * [`CodeError::ShardSizeMismatch`] if the shards are not equally sized.
pub fn encode_shards<F: GaloisField>(
    code: &SecCode<F>,
    data_shards: &[Vec<F>],
) -> Result<Vec<Vec<F>>, CodeError> {
    let k = code.k();
    if data_shards.len() != k {
        return Err(CodeError::DataLengthMismatch {
            expected: k,
            actual: data_shards.len(),
        });
    }
    let shard_len = data_shards.first().map_or(0, Vec::len);
    for shard in data_shards {
        if shard.len() != shard_len {
            return Err(CodeError::ShardSizeMismatch {
                expected: shard_len,
                actual: shard.len(),
            });
        }
    }
    let g = code.generator();
    let mut out = vec![vec![F::ZERO; shard_len]; code.n()];
    for (row, coded) in out.iter_mut().enumerate() {
        for (col, data) in data_shards.iter().enumerate() {
            bulk::mul_add_assign(coded, g.get(row, col), data);
        }
    }
    Ok(out)
}

/// Decodes the original `k` data shards from any `k` coded shards
/// (given with their node indices).
///
/// # Errors
///
/// * [`CodeError::NotEnoughShares`] with fewer than `k` shards.
/// * [`CodeError::ShardSizeMismatch`] if the shards are not equally sized.
/// * [`CodeError::ShareIndexOutOfRange`] / [`CodeError::DuplicateShare`] for
///   malformed indices.
pub fn decode_shards<F: GaloisField>(
    code: &SecCode<F>,
    coded_shards: &[(usize, Vec<F>)],
) -> Result<Vec<Vec<F>>, CodeError> {
    let k = code.k();
    let n = code.n();
    if coded_shards.len() < k {
        return Err(CodeError::NotEnoughShares {
            needed: k,
            available: coded_shards.len(),
        });
    }
    let shard_len = coded_shards[0].1.len();
    let mut seen = vec![false; n];
    for (idx, shard) in coded_shards {
        if *idx >= n {
            return Err(CodeError::ShareIndexOutOfRange { index: *idx, n });
        }
        if seen[*idx] {
            return Err(CodeError::DuplicateShare { index: *idx });
        }
        seen[*idx] = true;
        if shard.len() != shard_len {
            return Err(CodeError::ShardSizeMismatch {
                expected: shard_len,
                actual: shard.len(),
            });
        }
    }

    // Use the first k shards; the MDS property guarantees invertibility.
    let rows: Vec<usize> = coded_shards.iter().take(k).map(|(i, _)| *i).collect();
    let sub = code.generator().select_rows(&rows)?;
    let inv = ops::invert(&sub).map_err(|_| CodeError::UndecodableShareSet)?;

    let mut data = vec![vec![F::ZERO; shard_len]; k];
    for (out_row, data_shard) in data.iter_mut().enumerate() {
        for (in_row, (_, coded_shard)) in coded_shards.iter().take(k).enumerate() {
            bulk::mul_add_assign(data_shard, inv.get(out_row, in_row), coded_shard);
        }
    }
    Ok(data)
}

/// Splits a flat symbol buffer into `k` equally sized shards, zero-padding the
/// tail — the "application object → fixed-size coding object" transformation
/// the paper assumes implicitly.
pub fn split_into_shards<F: GaloisField>(data: &[F], k: usize) -> Vec<Vec<F>> {
    assert!(k > 0, "cannot split into zero shards");
    let shard_len = data.len().div_ceil(k);
    let mut shards = Vec::with_capacity(k);
    for i in 0..k {
        let start = (i * shard_len).min(data.len());
        let end = ((i + 1) * shard_len).min(data.len());
        let mut shard = data[start..end].to_vec();
        shard.resize(shard_len, F::ZERO);
        shards.push(shard);
    }
    shards
}

/// Reassembles shards produced by [`split_into_shards`], trimming the final
/// zero padding down to `original_len` symbols.
pub fn join_shards<F: GaloisField>(shards: &[Vec<F>], original_len: usize) -> Vec<F> {
    let mut out: Vec<F> = shards.iter().flatten().copied().collect();
    out.truncate(original_len);
    out
}

/// Reconstructs the shares of one *symbol position* across shards — a helper
/// for turning shard-level storage into the per-symbol [`Share`] form used by
/// the sparse decoder.
pub fn symbol_shares<F: GaloisField>(
    coded_shards: &[(usize, Vec<F>)],
    position: usize,
) -> Vec<Share<F>> {
    coded_shards
        .iter()
        .filter(|(_, shard)| position < shard.len())
        .map(|(idx, shard)| (*idx, shard[position]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::GeneratorForm;
    use sec_gf::Gf256;

    fn code63() -> SecCode<Gf256> {
        SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap()
    }

    fn shard(vals: &[u64]) -> Vec<Gf256> {
        vals.iter().map(|&v| Gf256::from_u64(v)).collect()
    }

    #[test]
    fn encode_decode_round_trip() {
        let code = code63();
        let data = vec![
            shard(&[1, 2, 3, 4]),
            shard(&[5, 6, 7, 8]),
            shard(&[9, 10, 11, 12]),
        ];
        let coded = encode_shards(&code, &data).unwrap();
        assert_eq!(coded.len(), 6);
        for rows in sec_linalg::combinatorics::combinations(6, 3) {
            let shares: Vec<(usize, Vec<Gf256>)> = rows.iter().map(|&i| (i, coded[i].clone())).collect();
            assert_eq!(decode_shards(&code, &shares).unwrap(), data, "rows {rows:?}");
        }
    }

    #[test]
    fn systematic_coded_shards_start_with_data() {
        let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
        let data = vec![shard(&[1, 2]), shard(&[3, 4]), shard(&[5, 6])];
        let coded = encode_shards(&code, &data).unwrap();
        assert_eq!(&coded[..3], data.as_slice());
    }

    #[test]
    fn shard_errors() {
        let code = code63();
        assert!(matches!(
            encode_shards(&code, &[shard(&[1])]),
            Err(CodeError::DataLengthMismatch {
                expected: 3,
                actual: 1
            })
        ));
        assert!(matches!(
            encode_shards(&code, &[shard(&[1, 2]), shard(&[3]), shard(&[4, 5])]),
            Err(CodeError::ShardSizeMismatch {
                expected: 2,
                actual: 1
            })
        ));
        let data = vec![shard(&[1]), shard(&[2]), shard(&[3])];
        let coded = encode_shards(&code, &data).unwrap();
        assert!(matches!(
            decode_shards(&code, &[(0, coded[0].clone()), (1, coded[1].clone())]),
            Err(CodeError::NotEnoughShares { .. })
        ));
        assert!(matches!(
            decode_shards(
                &code,
                &[
                    (0, coded[0].clone()),
                    (0, coded[0].clone()),
                    (1, coded[1].clone())
                ]
            ),
            Err(CodeError::DuplicateShare { index: 0 })
        ));
        assert!(matches!(
            decode_shards(
                &code,
                &[
                    (9, coded[0].clone()),
                    (1, coded[1].clone()),
                    (2, coded[2].clone())
                ]
            ),
            Err(CodeError::ShareIndexOutOfRange { .. })
        ));
        let ragged = vec![
            (0, coded[0].clone()),
            (1, shard(&[1, 2, 3])),
            (2, coded[2].clone()),
        ];
        assert!(matches!(
            decode_shards(&code, &ragged),
            Err(CodeError::ShardSizeMismatch { .. })
        ));
    }

    #[test]
    fn split_and_join_round_trip_with_padding() {
        let data = shard(&[1, 2, 3, 4, 5, 6, 7]);
        let shards = split_into_shards(&data, 3);
        assert_eq!(shards.len(), 3);
        assert!(shards.iter().all(|s| s.len() == 3));
        assert_eq!(join_shards(&shards, data.len()), data);
        // Exact division, no padding.
        let data = shard(&[1, 2, 3, 4]);
        let shards = split_into_shards(&data, 2);
        assert_eq!(join_shards(&shards, 4), data);
        // Fewer symbols than shards.
        let data = shard(&[9]);
        let shards = split_into_shards(&data, 3);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 3);
        assert_eq!(join_shards(&shards, 1), data);
    }

    #[test]
    fn symbol_shares_extracts_one_position() {
        let code = code63();
        let data = vec![shard(&[1, 2]), shard(&[3, 4]), shard(&[5, 6])];
        let coded = encode_shards(&code, &data).unwrap();
        let stored: Vec<(usize, Vec<Gf256>)> = coded.iter().cloned().enumerate().collect();
        let pos0 = symbol_shares(&stored, 0);
        assert_eq!(pos0.len(), 6);
        // Decoding position 0 symbol-wise matches the shard decode.
        let decoded = code.decode_full(&pos0[..3]).unwrap();
        assert_eq!(decoded, vec![data[0][0], data[1][0], data[2][0]]);
        assert!(symbol_shares(&stored, 99).is_empty());
    }
}
