//! Property-based tests of the erasure-coding layer: encode/decode round
//! trips through random share subsets, sparse recovery of random sparse
//! deltas, and shard-level consistency.

use proptest::prelude::*;

use sec_gf::{GaloisField, Gf256};

use crate::code::{GeneratorForm, SecCode, Share};
use crate::read_plan::{plan_and_decode, ReadTarget};
use crate::shards;

const N: usize = 10;
const K: usize = 5;

fn code(form: GeneratorForm) -> SecCode<Gf256> {
    SecCode::cauchy(N, K, form).expect("(10,5) fits in GF(256)")
}

fn form_strategy() -> impl Strategy<Value = GeneratorForm> {
    prop_oneof![
        Just(GeneratorForm::Systematic),
        Just(GeneratorForm::NonSystematic),
    ]
}

fn data_strategy() -> impl Strategy<Value = Vec<Gf256>> {
    prop::collection::vec((0u64..256).prop_map(Gf256::from_u64), K)
}

fn sparse_strategy(max_gamma: usize) -> impl Strategy<Value = Vec<Gf256>> {
    prop::collection::btree_set(0usize..K, 0..=max_gamma).prop_flat_map(|support| {
        let support: Vec<usize> = support.into_iter().collect();
        prop::collection::vec(1u64..256, support.len()).prop_map(move |vals| {
            let mut v = vec![Gf256::ZERO; K];
            for (&pos, &val) in support.iter().zip(&vals) {
                v[pos] = Gf256::from_u64(val);
            }
            v
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decode_full_from_any_k_random_shares(
        form in form_strategy(),
        data in data_strategy(),
        subset in prop::collection::btree_set(0usize..N, K..=N),
    ) {
        let code = code(form);
        let c = code.encode(&data).unwrap();
        let shares: Vec<Share<Gf256>> = subset.iter().map(|&i| (i, c[i])).collect();
        prop_assert_eq!(code.decode_full(&shares).unwrap(), data);
    }

    #[test]
    fn sparse_decode_recovers_random_sparse_deltas(
        delta in sparse_strategy(2),
        subset in prop::collection::btree_set(0usize..N, 4..=N),
    ) {
        // Non-systematic Cauchy: any 4 shares recover any 2-sparse delta.
        let code = code(GeneratorForm::NonSystematic);
        let c = code.encode(&delta).unwrap();
        let shares: Vec<Share<Gf256>> = subset.iter().take(4).map(|&i| (i, c[i])).collect();
        prop_assert_eq!(code.decode_sparse(&shares, 2).unwrap(), delta);
    }

    #[test]
    fn systematic_sparse_decode_from_parity_rows(
        delta in sparse_strategy(2),
    ) {
        let code = code(GeneratorForm::Systematic);
        let c = code.encode(&delta).unwrap();
        // Parity rows K..N always qualify (they form a Cauchy block).
        let shares: Vec<Share<Gf256>> = (K..K + 4).map(|i| (i, c[i])).collect();
        prop_assert_eq!(code.decode_sparse(&shares, 2).unwrap(), delta);
    }

    #[test]
    fn plan_and_decode_is_consistent_with_direct_decode(
        form in form_strategy(),
        delta in sparse_strategy(2),
        live in prop::collection::btree_set(0usize..N, K..=N),
    ) {
        let code = code(form);
        let c = code.encode(&delta).unwrap();
        let live: Vec<usize> = live.into_iter().collect();
        let gamma = delta.iter().filter(|v| !v.is_zero()).count().max(1);
        let (plan, decoded) = plan_and_decode(&code, &c, &live, ReadTarget::Sparse { gamma }).unwrap();
        prop_assert_eq!(&decoded, &delta);
        prop_assert!(plan.io_reads <= K);
        prop_assert!(plan.io_reads >= 2 * gamma.min((K - 1) / 2).min(plan.io_reads));
        let (full_plan, full_decoded) = plan_and_decode(&code, &c, &live, ReadTarget::Full).unwrap();
        prop_assert_eq!(full_decoded, delta);
        prop_assert_eq!(full_plan.io_reads, K);
    }

    #[test]
    fn shard_round_trip_random_data(
        form in form_strategy(),
        flat in prop::collection::vec((0u64..256).prop_map(Gf256::from_u64), 1..80),
        subset in prop::collection::btree_set(0usize..N, K..=N),
    ) {
        let code = code(form);
        let data_shards = shards::split_into_shards(&flat, K);
        let coded = shards::encode_shards(&code, &data_shards).unwrap();
        let survivors: Vec<(usize, Vec<Gf256>)> = subset.iter().map(|&i| (i, coded[i].clone())).collect();
        let recovered = shards::decode_shards(&code, &survivors).unwrap();
        prop_assert_eq!(shards::join_shards(&recovered, flat.len()), flat);
    }

    #[test]
    fn io_reads_formula_monotone_in_gamma(form in form_strategy()) {
        let code = code(form);
        let mut prev = 0usize;
        for gamma in 0..=K {
            let reads = code.io_reads_for_sparsity(gamma);
            prop_assert!(reads >= prev || reads == K, "reads must not decrease before saturating at k");
            prop_assert!(reads <= K);
            prev = reads;
        }
    }
}
