//! Verification reports for the SEC design criteria of a concrete code.
//!
//! [`CriteriaReport::for_code`] checks Criterion 1 (full-object decodability)
//! and, for every exploitable sparsity level `γ < k/2`, Criterion 2 (existence
//! of a `2γ × k` submatrix whose every `2γ` columns are independent). It also
//! counts *how many* `2γ`-row subsets qualify, which drives the paper's
//! resilience comparison between systematic and non-systematic SEC
//! (§IV-C and §V-A: 15 qualifying subsets vs 3 for the (6,3) example).

use sec_gf::GaloisField;
use sec_linalg::checks;
use sec_linalg::combinatorics::binomial_exact;

use crate::code::SecCode;

/// Criterion-2 verification result for one sparsity level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GammaReport {
    /// The sparsity level `γ`.
    pub gamma: usize,
    /// Number of coded symbols needed to recover a `γ`-sparse object (`2γ`).
    pub reads_needed: usize,
    /// Whether at least one qualifying `2γ`-row subset exists (Criterion 2).
    pub satisfied: bool,
    /// Number of `2γ`-row subsets of the generator whose columns are all
    /// independent.
    pub qualifying_subsets: usize,
    /// Total number of `2γ`-row subsets, `C(n, 2γ)`.
    pub total_subsets: u128,
}

impl GammaReport {
    /// Fraction of `2γ`-row subsets that qualify, in `[0, 1]`.
    pub fn qualifying_fraction(&self) -> f64 {
        if self.total_subsets == 0 {
            0.0
        } else {
            self.qualifying_subsets as f64 / self.total_subsets as f64
        }
    }
}

/// Full design-criteria report for a code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriteriaReport {
    /// Whether Criterion 1 holds (some `k × k` submatrix is invertible).
    pub criterion1: bool,
    /// Whether the generator is MDS (every `k × k` row submatrix invertible) —
    /// a stronger property than Criterion 1 that Cauchy codes enjoy.
    pub mds: bool,
    /// Criterion-2 report per exploitable sparsity level, ordered by `γ`.
    pub gammas: Vec<GammaReport>,
}

impl CriteriaReport {
    /// Verifies both criteria for `code`, covering every exploitable sparsity
    /// level `1 ≤ γ ≤ (k-1)/2`.
    ///
    /// This enumerates row subsets, so it is intended for design-time checks
    /// and experiments rather than per-request paths.
    pub fn for_code<F: GaloisField>(code: &SecCode<F>) -> Self {
        let g = code.generator();
        let n = code.n();
        let max_gamma = code.params().max_exploitable_sparsity();
        let gammas = (1..=max_gamma)
            .map(|gamma| {
                let qualifying = checks::count_criterion2_subsets(g, gamma);
                GammaReport {
                    gamma,
                    reads_needed: 2 * gamma,
                    satisfied: qualifying > 0,
                    qualifying_subsets: qualifying,
                    total_subsets: binomial_exact(n as u64, 2 * gamma as u64),
                }
            })
            .collect();
        Self {
            criterion1: checks::has_invertible_k_submatrix(g),
            mds: checks::is_mds(g),
            gammas,
        }
    }

    /// Report for a single sparsity level, if it is exploitable.
    pub fn gamma(&self, gamma: usize) -> Option<&GammaReport> {
        self.gammas.iter().find(|g| g.gamma == gamma)
    }

    /// `true` when both criteria hold for every exploitable sparsity level.
    pub fn all_satisfied(&self) -> bool {
        self.criterion1 && self.gammas.iter().all(|g| g.satisfied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::GeneratorForm;
    use sec_gf::{Gf1024, Gf256};

    #[test]
    fn non_systematic_6_3_report_matches_paper() {
        let code: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        let report = CriteriaReport::for_code(&code);
        assert!(report.criterion1);
        assert!(report.mds);
        assert!(report.all_satisfied());
        assert_eq!(report.gammas.len(), 1);
        let g1 = report.gamma(1).unwrap();
        // Paper §V-A: all 15 two-row submatrices of G_N satisfy Criterion 2.
        assert_eq!(g1.qualifying_subsets, 15);
        assert_eq!(g1.total_subsets, 15);
        assert_eq!(g1.qualifying_fraction(), 1.0);
        assert_eq!(g1.reads_needed, 2);
    }

    #[test]
    fn systematic_6_3_report_matches_paper() {
        let code: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
        let report = CriteriaReport::for_code(&code);
        assert!(report.criterion1);
        assert!(report.mds);
        let g1 = report.gamma(1).unwrap();
        // Paper §V-A: only 3 two-row submatrices of G_S satisfy Criterion 2
        // (the ones drawn from the Cauchy parity block).
        assert_eq!(g1.qualifying_subsets, 3);
        assert_eq!(g1.total_subsets, 15);
        assert!(g1.satisfied);
        assert!((g1.qualifying_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn larger_code_covers_multiple_gammas() {
        let code: SecCode<Gf256> = SecCode::cauchy(10, 5, GeneratorForm::NonSystematic).unwrap();
        let report = CriteriaReport::for_code(&code);
        assert_eq!(report.gammas.len(), 2);
        for g in &report.gammas {
            assert!(g.satisfied, "gamma {} unsatisfied", g.gamma);
            assert_eq!(g.qualifying_subsets as u128, g.total_subsets);
        }
        assert!(report.all_satisfied());
        assert!(report.gamma(3).is_none());
    }

    #[test]
    fn systematic_10_5_has_fewer_qualifying_subsets() {
        let sys: SecCode<Gf256> = SecCode::cauchy(10, 5, GeneratorForm::Systematic).unwrap();
        let ns: SecCode<Gf256> = SecCode::cauchy(10, 5, GeneratorForm::NonSystematic).unwrap();
        let rs = CriteriaReport::for_code(&sys);
        let rn = CriteriaReport::for_code(&ns);
        for gamma in 1..=2usize {
            let s = rs.gamma(gamma).unwrap();
            let n = rn.gamma(gamma).unwrap();
            assert!(s.qualifying_subsets < n.qualifying_subsets);
            assert!(s.satisfied);
        }
    }
}
