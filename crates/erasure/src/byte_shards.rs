//! The byte-shard fast path: contiguous `GF(2^8)` shards and a batched
//! encode / decode / sparse-recovery pipeline built on the
//! [`bulk8`](sec_gf::bulk8) kernels.
//!
//! The generic [`shards`](crate::shards) module models a stored object as
//! `Vec<Vec<F>>` — one heap vector per shard, one field element per symbol.
//! That is the *reference implementation*: simple, field-generic, and slow.
//! This module is the production-shaped equivalent for `GF(2^8)`:
//!
//! * [`ByteShards`] keeps all shards of an object in one contiguous byte
//!   buffer, so a `(6, 3)` encode of a 1 MiB object streams cache lines
//!   instead of chasing per-symbol allocations;
//! * [`ByteCodec`] wraps an [`Arc`]-shared [`SecCode<Gf256>`] and
//!   per-coefficient multiplication-table cache, and exposes the batched
//!   pipeline: [`ByteCodec::encode_blocks`], [`ByteCodec::decode_blocks`] and
//!   [`ByteCodec::recover_sparse_blocks`]. Every method takes `&self`, so one
//!   codec can serve many decoding threads; the scratch arena sparse recovery
//!   needs lives in a caller-supplied (or thread-local) [`DecodeScratch`].
//!
//! The differential property suite in `tests/byte_path_equiv.rs` locks every
//! pipeline stage to the scalar reference: for any coefficients, shard sizes
//! (including 0, 1 and non-multiple-of-64 lengths) and erasure patterns, the
//! byte path produces byte-identical output.
//!
//! # Example
//!
//! ```rust
//! use sec_erasure::{ByteCodec, ByteShards, GeneratorForm, SecCode};
//!
//! # fn main() -> Result<(), sec_erasure::CodeError> {
//! let code = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic)?;
//! let codec = ByteCodec::new(code);
//!
//! let object = b"the quick brown fox jumps over the lazy dog";
//! let data = ByteShards::from_flat(object, 3);
//! let coded = codec.encode_blocks(&data)?;
//!
//! // Any k = 3 coded shards reconstruct the object.
//! let shares: Vec<(usize, &[u8])> = [5, 1, 3].iter().map(|&i| (i, coded.shard(i))).collect();
//! let decoded = codec.decode_blocks(&shares)?;
//! assert_eq!(decoded.join(object.len()), object);
//! # Ok(())
//! # }
//! ```

use std::cell::RefCell;
use std::sync::Arc;

use sec_gf::bulk8::{mul_multi, CoeffTables, MulTable};
use sec_gf::{GaloisField, Gf256};
use sec_linalg::combinatorics::Combinations;
use sec_linalg::{ops, Matrix};

use crate::code::SecCode;
use crate::error::CodeError;

/// One output row of a blocked application: each source shard paired with
/// the split tables of its coefficient (zero coefficients filtered out).
type RowSources<'a> = Vec<(&'a MulTable, &'a [u8])>;

/// A set of equally sized byte shards stored in one contiguous buffer.
///
/// Shard `i` occupies bytes `i·shard_len .. (i+1)·shard_len` of the backing
/// buffer. The type is the byte-level analogue of the `Vec<Vec<F>>` shard
/// lists used by the generic [`shards`](crate::shards) reference path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ByteShards {
    shards: usize,
    shard_len: usize,
    data: Vec<u8>,
}

impl ByteShards {
    /// Creates `shards` all-zero shards of `shard_len` bytes each.
    pub fn zeroed(shards: usize, shard_len: usize) -> Self {
        Self {
            shards,
            shard_len,
            data: vec![0u8; shards * shard_len],
        }
    }

    /// Splits a flat byte object into `k` equally sized shards, zero-padding
    /// the tail — the byte-level analogue of
    /// [`shards::split_into_shards`](crate::shards::split_into_shards).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn from_flat(object: &[u8], k: usize) -> Self {
        assert!(k > 0, "cannot split into zero shards");
        let shard_len = object.len().div_ceil(k);
        let mut data = object.to_vec();
        data.resize(k * shard_len, 0);
        Self {
            shards: k,
            shard_len,
            data,
        }
    }

    /// Builds shards from per-shard row vectors, validating equal lengths.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ShardSizeMismatch`] when the rows are ragged.
    pub fn from_rows(rows: &[Vec<u8>]) -> Result<Self, CodeError> {
        let shard_len = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * shard_len);
        for row in rows {
            if row.len() != shard_len {
                return Err(CodeError::ShardSizeMismatch {
                    expected: shard_len,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            shards: rows.len(),
            shard_len,
            data,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Length of each shard in bytes.
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    /// Total number of stored bytes (`shard_count · shard_len`).
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// Shard `i` as a byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard(&self, i: usize) -> &[u8] {
        assert!(i < self.shards, "shard index {i} out of range ({})", self.shards);
        &self.data[i * self.shard_len..(i + 1) * self.shard_len]
    }

    /// Mutable access to shard `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_mut(&mut self, i: usize) -> &mut [u8] {
        assert!(i < self.shards, "shard index {i} out of range ({})", self.shards);
        &mut self.data[i * self.shard_len..(i + 1) * self.shard_len]
    }

    /// The whole contiguous buffer (shard-major order).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Copies the shards out as per-shard row vectors (reference-path shape).
    pub fn to_rows(&self) -> Vec<Vec<u8>> {
        (0..self.shards).map(|i| self.shard(i).to_vec()).collect()
    }

    /// Reassembles the flat object, trimming zero padding down to
    /// `original_len` bytes — the inverse of [`ByteShards::from_flat`].
    pub fn join(&self, original_len: usize) -> Vec<u8> {
        let mut out = self.data.clone();
        out.truncate(original_len);
        out
    }

    /// Number of non-zero shards — the per-block sparsity level `γ` of a
    /// delta object (Definition 1 of the paper, lifted from symbols to
    /// blocks).
    pub fn weight(&self) -> usize {
        (0..self.shards)
            .filter(|&i| self.shard(i).iter().any(|&b| b != 0))
            .count()
    }

    /// XORs `other` into `self` shard-by-shard — delta application in
    /// characteristic two. Runs through the fallible `try_` kernel so a
    /// corrupt shard length surfaces as an error instead of aborting.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ShardSizeMismatch`] when the shapes differ.
    pub fn xor_with(&mut self, other: &ByteShards) -> Result<(), CodeError> {
        if self.shards != other.shards {
            return Err(CodeError::ShardSizeMismatch {
                expected: self.shard_len,
                actual: other.shard_len,
            });
        }
        // Shard counts match, so a flat-length mismatch from the fallible
        // kernel means the per-shard lengths differ; report those (the unit
        // every other producer of this error uses).
        sec_gf::bulk8::try_mul_add_slice(Gf256::ONE, &other.data, &mut self.data).map_err(|_| {
            CodeError::ShardSizeMismatch {
                expected: self.shard_len,
                actual: other.shard_len,
            }
        })
    }
}

/// Reusable buffers for the batched pipeline, so steady-state decode /
/// recovery performs no per-call row allocation.
///
/// The scratch is deliberately *outside* the codec: every [`ByteCodec`]
/// method takes `&self`, so any number of threads can decode through one
/// shared codec, each threading its own `DecodeScratch` (or relying on the
/// thread-local one used by the convenience methods).
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// One shard-sized row used for consistency checks in sparse recovery.
    row: Vec<u8>,
}

impl DecodeScratch {
    /// Creates an empty scratch arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed scratch row of exactly `len` bytes.
    fn row(&mut self, len: usize) -> &mut [u8] {
        self.row.clear();
        self.row.resize(len, 0);
        &mut self.row
    }
}

thread_local! {
    /// Per-thread scratch backing the convenience (`&self`, no explicit
    /// scratch) entry points, so steady-state decoding stays allocation-free
    /// without forcing every caller to carry a [`DecodeScratch`].
    static THREAD_SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::new());
}

/// Batched `GF(2^8)` encoder/decoder: a [`SecCode<Gf256>`] plus the
/// per-coefficient table cache the byte kernels need.
///
/// Both the code and the table cache sit behind [`Arc`]s, so cloning a codec
/// is cheap and every clone shares the same lazily built multiplication
/// tables — archives, stores and serving engines all reuse one set of tables
/// per code instead of rebuilding 256 × 288-byte tables each. All methods
/// take `&self` and are safe to call from many threads at once; sparse
/// recovery needs a scratch row, threaded explicitly via the `_with` variants
/// or borrowed from a thread-local arena by the convenience forms.
#[derive(Debug, Clone)]
pub struct ByteCodec {
    code: Arc<SecCode<Gf256>>,
    tables: Arc<CoeffTables>,
}

impl ByteCodec {
    /// Wraps a `GF(2^8)` code in the byte-shard pipeline.
    pub fn new(code: SecCode<Gf256>) -> Self {
        Self::from_shared(Arc::new(code), Arc::new(CoeffTables::new()))
    }

    /// Builds a codec around an already shared code and table cache, so
    /// several codecs (e.g. an archive's and its store's) reuse one set of
    /// multiplication tables.
    pub fn from_shared(code: Arc<SecCode<Gf256>>, tables: Arc<CoeffTables>) -> Self {
        Self { code, tables }
    }

    /// The underlying code.
    pub fn code(&self) -> &SecCode<Gf256> {
        &self.code
    }

    /// The shared handle to the underlying code.
    pub fn shared_code(&self) -> Arc<SecCode<Gf256>> {
        Arc::clone(&self.code)
    }

    /// The shared per-coefficient multiplication-table cache.
    pub fn shared_tables(&self) -> Arc<CoeffTables> {
        Arc::clone(&self.tables)
    }

    /// Encodes `k` data shards into `n` coded shards (`C = G · X` applied
    /// block-wise), the batched analogue of
    /// [`shards::encode_shards`](crate::shards::encode_shards).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::DataLengthMismatch`] when `data` does not hold
    /// exactly `k` shards.
    pub fn encode_blocks(&self, data: &ByteShards) -> Result<ByteShards, CodeError> {
        let mut out = ByteShards::zeroed(self.code.n(), data.shard_len());
        self.encode_blocks_into(data, &mut out)?;
        Ok(out)
    }

    /// Like [`ByteCodec::encode_blocks`] but writes into a caller-provided
    /// output, reusing its allocation across calls.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::DataLengthMismatch`] for a wrong shard count and
    /// [`CodeError::ShardSizeMismatch`] when `out` has the wrong shape.
    pub fn encode_blocks_into(&self, data: &ByteShards, out: &mut ByteShards) -> Result<(), CodeError> {
        let (n, k) = (self.code.n(), self.code.k());
        if data.shard_count() != k {
            return Err(CodeError::DataLengthMismatch {
                expected: k,
                actual: data.shard_count(),
            });
        }
        if out.shard_count() != n || out.shard_len() != data.shard_len() {
            return Err(CodeError::ShardSizeMismatch {
                expected: n * data.shard_len(),
                actual: out.total_len(),
            });
        }
        let g = self.code.generator();
        // One fused source list per output row (zero coefficients dropped),
        // then a strip-blocked application: every row consumes a strip of the
        // sources before the pipeline moves on, so a multi-MiB encode streams
        // each source strip through cache once instead of making `n` full
        // passes over all `k` shards.
        let rows: Vec<Vec<(&MulTable, &[u8])>> = (0..n)
            .map(|row| {
                (0..k)
                    .filter(|&col| !g.get(row, col).is_zero())
                    .map(|col| (self.tables.get(g.get(row, col)), data.shard(col)))
                    .collect()
            })
            .collect();
        apply_rows_blocked(&rows, data.shard_len(), &mut out.data);
        Ok(())
    }

    /// Decodes the original `k` data shards from any `k` (or more) coded
    /// shards given with their node indices — the batched analogue of
    /// [`shards::decode_shards`](crate::shards::decode_shards).
    ///
    /// # Errors
    ///
    /// * [`CodeError::NotEnoughShares`] with fewer than `k` shards.
    /// * [`CodeError::ShardSizeMismatch`] for ragged shard lengths.
    /// * [`CodeError::ShareIndexOutOfRange`] / [`CodeError::DuplicateShare`]
    ///   for malformed indices.
    pub fn decode_blocks(&self, shares: &[(usize, &[u8])]) -> Result<ByteShards, CodeError> {
        let k = self.code.k();
        let shard_len = self.validate_shares(shares, k)?;

        // Use the first k shards; the MDS property guarantees invertibility.
        let rows: Vec<usize> = shares.iter().take(k).map(|&(i, _)| i).collect();
        let sub = self.code.generator().select_rows(&rows)?;
        let inv = ops::invert(&sub).map_err(|_| CodeError::UndecodableShareSet)?;

        let mut out = ByteShards::zeroed(k, shard_len);
        let rows: Vec<Vec<(&MulTable, &[u8])>> = (0..k)
            .map(|row| {
                shares
                    .iter()
                    .take(k)
                    .enumerate()
                    .filter(|&(col, _)| !inv.get(row, col).is_zero())
                    .map(|(col, &(_, shard))| (self.tables.get(inv.get(row, col)), shard))
                    .collect()
            })
            .collect();
        apply_rows_blocked(&rows, shard_len, &mut out.data);
        Ok(out)
    }

    /// Recovers a block-level `γ`-sparse object (at most `γ` of its `k`
    /// shards are non-zero) from `2γ` or more coded shards, the batched
    /// analogue of [`SecCode::decode_sparse`].
    ///
    /// The candidate supports are searched in the same order as the scalar
    /// reference ([`sparse::recover_sparse`](crate::sparse::recover_sparse)):
    /// weights `0, 1, …, γ`, lexicographic supports within each weight, first
    /// consistent solution wins.
    ///
    /// # Errors
    ///
    /// * [`CodeError::SparsityNotExploitable`] when `γ = 0` or `2γ ≥ k`.
    /// * [`CodeError::NotEnoughShares`] with fewer than `2γ` shards.
    /// * [`CodeError::SparseRecoveryFailed`] when no block-`γ`-sparse object
    ///   is consistent with the shares.
    /// * [`CodeError::ShardSizeMismatch`] and index errors as for
    ///   [`ByteCodec::decode_blocks`].
    pub fn recover_sparse_blocks(
        &self,
        shares: &[(usize, &[u8])],
        gamma: usize,
    ) -> Result<ByteShards, CodeError> {
        THREAD_SCRATCH
            .with(|scratch| self.recover_sparse_blocks_with(shares, gamma, &mut scratch.borrow_mut()))
    }

    /// Like [`ByteCodec::recover_sparse_blocks`] but with an explicit scratch
    /// arena instead of the thread-local one — the reentrant form for callers
    /// that manage their own per-worker buffers.
    ///
    /// # Errors
    ///
    /// As for [`ByteCodec::recover_sparse_blocks`].
    pub fn recover_sparse_blocks_with(
        &self,
        shares: &[(usize, &[u8])],
        gamma: usize,
        scratch: &mut DecodeScratch,
    ) -> Result<ByteShards, CodeError> {
        let k = self.code.k();
        if gamma == 0 || 2 * gamma >= k {
            return Err(CodeError::SparsityNotExploitable { gamma, k });
        }
        let needed = 2 * gamma;
        if shares.len() < needed {
            return Err(CodeError::NotEnoughShares {
                needed,
                available: shares.len(),
            });
        }
        let shard_len = self.validate_shares(shares, 0)?;

        // Weight-0 fast path: an all-zero observation decodes to zero.
        if shares.iter().all(|(_, s)| s.iter().all(|&b| b == 0)) {
            return Ok(ByteShards::zeroed(k, shard_len));
        }

        let rows: Vec<usize> = shares.iter().map(|&(i, _)| i).collect();
        let phi = self.code.generator().select_rows(&rows)?;
        for weight in 1..=gamma.min(k) {
            for support in Combinations::new(k, weight) {
                if let Some(out) = self.try_support(&phi, shares, &support, shard_len, scratch) {
                    return Ok(out);
                }
            }
        }
        Err(CodeError::SparseRecoveryFailed { gamma })
    }

    /// Attempts to explain the observed shards with non-zero blocks exactly
    /// on `support`, returning the recovered object when the (overdetermined)
    /// block system is consistent.
    fn try_support(
        &self,
        phi: &Matrix<Gf256>,
        shares: &[(usize, &[u8])],
        support: &[usize],
        shard_len: usize,
        scratch: &mut DecodeScratch,
    ) -> Option<ByteShards> {
        let r = phi.rows();
        let w = support.len();
        let restricted = phi.select_cols(support).expect("support indices in range");

        // Gauss-Jordan on the restricted matrix, tracking the row transform T
        // so that T · restricted = [I_w ; 0]. The same T applied to the
        // observed shards yields the candidate solution (rows 0..w) and the
        // consistency residuals (rows w..r).
        let mut a: Vec<Vec<Gf256>> = (0..r)
            .map(|i| (0..w).map(|j| restricted.get(i, j)).collect())
            .collect();
        let mut t: Vec<Vec<Gf256>> = (0..r)
            .map(|i| {
                (0..r)
                    .map(|j| if i == j { Gf256::ONE } else { Gf256::ZERO })
                    .collect()
            })
            .collect();
        for col in 0..w {
            let pivot = (col..r).find(|&row| !a[row][col].is_zero())?;
            a.swap(col, pivot);
            t.swap(col, pivot);
            let inv = a[col][col].inv().expect("pivot chosen non-zero");
            for x in &mut a[col] {
                *x *= inv;
            }
            for x in &mut t[col] {
                *x *= inv;
            }
            let pivot_a = a[col].clone();
            let pivot_t = t[col].clone();
            for row in 0..r {
                if row != col && !a[row][col].is_zero() {
                    let factor = a[row][col];
                    for (x, &p) in a[row].iter_mut().zip(&pivot_a) {
                        *x += factor * p;
                    }
                    for (x, &p) in t[row].iter_mut().zip(&pivot_t) {
                        *x += factor * p;
                    }
                }
            }
        }

        // Strip-blocked application of T. Consistency rows (w..r of T) must
        // map the observation to the zero shard; checking them strip-first
        // rejects an inconsistent support after at most one strip of work
        // instead of a full-shard pass, and the solution rows (0..w) reuse
        // the same cache-resident share strips.
        let collect_row = |trow: &[Gf256]| -> RowSources<'_> {
            trow.iter()
                .zip(shares)
                .filter(|(coeff, _)| !coeff.is_zero())
                .map(|(&coeff, &(_, shard))| (self.tables.get(coeff), shard))
                .collect()
        };
        let residual_rows: Vec<RowSources<'_>> =
            t.iter().take(r).skip(w).map(|trow| collect_row(trow)).collect();
        let out_rows: Vec<(usize, RowSources<'_>)> = support
            .iter()
            .enumerate()
            .map(|(j, &col)| (col, collect_row(&t[j])))
            .collect();

        let k = self.code.k();
        let mut out = ByteShards::zeroed(k, shard_len);
        let max_sources = residual_rows
            .iter()
            .map(Vec::len)
            .chain(out_rows.iter().map(|(_, sources)| sources.len()))
            .max()
            .unwrap_or(0);
        let strip = strip_len(max_sources);
        let residual = scratch.row(strip.min(shard_len));
        let mut strip_sources: Vec<(&MulTable, &[u8])> = Vec::with_capacity(max_sources);
        let mut start = 0;
        while start < shard_len {
            let end = (start + strip).min(shard_len);
            for sources in &residual_rows {
                strip_sources.clear();
                strip_sources.extend(sources.iter().map(|&(table, s)| (table, &s[start..end])));
                let res = &mut residual[..end - start];
                mul_multi(&strip_sources, res);
                if res.iter().any(|&b| b != 0) {
                    return None;
                }
            }
            for (col, sources) in &out_rows {
                strip_sources.clear();
                strip_sources.extend(sources.iter().map(|&(table, s)| (table, &s[start..end])));
                let dst = &mut out.data[col * shard_len + start..col * shard_len + end];
                mul_multi(&strip_sources, dst);
            }
            start = end;
        }
        Some(out)
    }

    /// Validates indices (range, duplicates) and equal shard lengths,
    /// returning the common length. With `min_shares > 0` also enforces a
    /// minimum share count.
    fn validate_shares(&self, shares: &[(usize, &[u8])], min_shares: usize) -> Result<usize, CodeError> {
        let n = self.code.n();
        if shares.len() < min_shares {
            return Err(CodeError::NotEnoughShares {
                needed: min_shares,
                available: shares.len(),
            });
        }
        let shard_len = shares.first().map_or(0, |(_, s)| s.len());
        let mut seen = vec![false; n];
        for &(idx, shard) in shares {
            if idx >= n {
                return Err(CodeError::ShareIndexOutOfRange { index: idx, n });
            }
            if seen[idx] {
                return Err(CodeError::DuplicateShare { index: idx });
            }
            seen[idx] = true;
            if shard.len() != shard_len {
                return Err(CodeError::ShardSizeMismatch {
                    expected: shard_len,
                    actual: shard.len(),
                });
            }
        }
        Ok(shard_len)
    }
}

/// Strip size (bytes per shard) for the blocked row applications: sized so
/// the combined source strips (~`sources` of them) fit in L2 (~128 KiB
/// budget), clamped to `[4 KiB, 32 KiB]` and rounded down to a whole number
/// of 64-byte cache lines.
fn strip_len(sources: usize) -> usize {
    (128 * 1024 / sources.max(1)).clamp(4096, 32 * 1024) & !63
}

/// Applies every fused source list in `rows` into the corresponding
/// `shard_len`-sized row of `out` (shard-major), strip-blocked: all rows
/// consume one strip of the sources before the pipeline advances, so each
/// source strip is pulled through cache once per *strip*, not once per row.
fn apply_rows_blocked(rows: &[Vec<(&MulTable, &[u8])>], shard_len: usize, out: &mut [u8]) {
    debug_assert_eq!(out.len(), rows.len() * shard_len);
    let max_sources = rows.iter().map(Vec::len).max().unwrap_or(0);
    let strip = strip_len(max_sources);
    let mut strip_sources: Vec<(&MulTable, &[u8])> = Vec::with_capacity(max_sources);
    let mut start = 0;
    while start < shard_len {
        let end = (start + strip).min(shard_len);
        for (row, sources) in rows.iter().enumerate() {
            strip_sources.clear();
            strip_sources.extend(sources.iter().map(|&(table, s)| (table, &s[start..end])));
            let dst = &mut out[row * shard_len + start..row * shard_len + end];
            mul_multi(&strip_sources, dst);
        }
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::GeneratorForm;
    use crate::shards;

    fn codec(n: usize, k: usize, form: GeneratorForm) -> ByteCodec {
        ByteCodec::new(SecCode::cauchy(n, k, form).unwrap())
    }

    fn object(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn byte_shards_shape_accessors() {
        let s = ByteShards::from_flat(&object(10), 3);
        assert_eq!(s.shard_count(), 3);
        assert_eq!(s.shard_len(), 4);
        assert_eq!(s.total_len(), 12);
        assert_eq!(s.join(10), object(10));
        assert_eq!(s.to_rows().len(), 3);
        assert_eq!(s.as_bytes().len(), 12);
        // Empty object: zero-length shards.
        let empty = ByteShards::from_flat(&[], 4);
        assert_eq!(empty.shard_count(), 4);
        assert_eq!(empty.shard_len(), 0);
        assert_eq!(empty.weight(), 0);
    }

    #[test]
    fn byte_shards_from_rows_validates() {
        assert!(ByteShards::from_rows(&[vec![1, 2], vec![3, 4]]).is_ok());
        assert!(matches!(
            ByteShards::from_rows(&[vec![1, 2], vec![3]]),
            Err(CodeError::ShardSizeMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn byte_shards_weight_and_xor() {
        let mut a = ByteShards::from_flat(&[0, 0, 5, 0, 0, 0], 3);
        assert_eq!(a.weight(), 1);
        let b = ByteShards::from_flat(&[1, 0, 5, 0, 0, 9], 3);
        a.xor_with(&b).unwrap();
        assert_eq!(a.as_bytes(), &[1, 0, 0, 0, 0, 9]);
        assert_eq!(a.weight(), 2);
        let ragged = ByteShards::from_flat(&[1, 2], 2);
        assert!(a.xor_with(&ragged).is_err());
    }

    #[test]
    fn encode_decode_round_trip_matches_reference() {
        for form in [GeneratorForm::Systematic, GeneratorForm::NonSystematic] {
            let codec = codec(6, 3, form);
            let obj = object(100);
            let data = ByteShards::from_flat(&obj, 3);
            let coded = codec.encode_blocks(&data).unwrap();
            assert_eq!(coded.shard_count(), 6);

            // Reference: generic shard path over Gf256 symbols.
            let ref_data: Vec<Vec<Gf256>> = data
                .to_rows()
                .iter()
                .map(|row| sec_gf::bulk::bytes_to_symbols(row))
                .collect();
            let ref_coded = shards::encode_shards(codec.code(), &ref_data).unwrap();
            for (i, ref_row) in ref_coded.iter().enumerate() {
                assert_eq!(
                    coded.shard(i),
                    sec_gf::bulk::symbols_to_bytes(ref_row).as_slice(),
                    "{form} row {i}"
                );
            }

            let shares: Vec<(usize, &[u8])> = [4, 2, 5].iter().map(|&i| (i, coded.shard(i))).collect();
            let decoded = codec.decode_blocks(&shares).unwrap();
            assert_eq!(decoded.join(obj.len()), obj, "{form}");
        }
    }

    #[test]
    fn encode_blocks_into_reuses_output() {
        let codec = codec(6, 3, GeneratorForm::NonSystematic);
        let data = ByteShards::from_flat(&object(64), 3);
        let mut out = ByteShards::zeroed(6, data.shard_len());
        codec.encode_blocks_into(&data, &mut out).unwrap();
        let fresh = codec.encode_blocks(&data).unwrap();
        assert_eq!(out, fresh);
        // Wrong output shape is rejected.
        let mut bad = ByteShards::zeroed(5, data.shard_len());
        assert!(matches!(
            codec.encode_blocks_into(&data, &mut bad),
            Err(CodeError::ShardSizeMismatch { .. })
        ));
    }

    #[test]
    fn sparse_recovery_of_block_sparse_delta() {
        let codec = codec(6, 3, GeneratorForm::NonSystematic);
        // 1-block-sparse delta: only the middle shard is non-zero.
        let mut delta = ByteShards::zeroed(3, 33);
        delta.shard_mut(1).copy_from_slice(&object(33));
        let coded = codec.encode_blocks(&delta).unwrap();
        for pair in sec_linalg::combinatorics::combinations(6, 2) {
            let shares: Vec<(usize, &[u8])> = pair.iter().map(|&i| (i, coded.shard(i))).collect();
            let recovered = codec.recover_sparse_blocks(&shares, 1).unwrap();
            assert_eq!(recovered, delta, "rows {pair:?}");
        }
    }

    #[test]
    fn sparse_recovery_zero_delta_and_failure() {
        let codec = codec(6, 3, GeneratorForm::NonSystematic);
        let zero = ByteShards::zeroed(6, 8);
        let shares: Vec<(usize, &[u8])> = vec![(0, zero.shard(0)), (3, zero.shard(3))];
        let recovered = codec.recover_sparse_blocks(&shares, 1).unwrap();
        assert_eq!(recovered.weight(), 0);

        // A dense (3-block) object cannot be explained as 1-sparse.
        let dense = ByteShards::from_flat(&object(30), 3);
        let coded = codec.encode_blocks(&dense).unwrap();
        let shares: Vec<(usize, &[u8])> = vec![(0, coded.shard(0)), (1, coded.shard(1))];
        match codec.recover_sparse_blocks(&shares, 1) {
            Err(CodeError::SparseRecoveryFailed { gamma: 1 }) => {}
            Ok(wrong) => assert_ne!(wrong, dense),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn pipeline_error_paths() {
        let codec = codec(6, 3, GeneratorForm::NonSystematic);
        let data = ByteShards::from_flat(&object(9), 3);
        let coded = codec.encode_blocks(&data).unwrap();
        assert!(matches!(
            codec.encode_blocks(&ByteShards::from_flat(&object(9), 2)),
            Err(CodeError::DataLengthMismatch {
                expected: 3,
                actual: 2
            })
        ));
        assert!(matches!(
            codec.decode_blocks(&[(0, coded.shard(0))]),
            Err(CodeError::NotEnoughShares { .. })
        ));
        assert!(matches!(
            codec.decode_blocks(&[(0, coded.shard(0)), (0, coded.shard(0)), (1, coded.shard(1))]),
            Err(CodeError::DuplicateShare { index: 0 })
        ));
        assert!(matches!(
            codec.decode_blocks(&[(9, coded.shard(0)), (1, coded.shard(1)), (2, coded.shard(2))]),
            Err(CodeError::ShareIndexOutOfRange { index: 9, n: 6 })
        ));
        let short = [0u8; 1];
        assert!(matches!(
            codec.decode_blocks(&[(0, coded.shard(0)), (1, &short), (2, coded.shard(2))]),
            Err(CodeError::ShardSizeMismatch { .. })
        ));
        assert!(matches!(
            codec.recover_sparse_blocks(&[(0, coded.shard(0)), (1, coded.shard(1))], 0),
            Err(CodeError::SparsityNotExploitable { gamma: 0, .. })
        ));
        assert!(matches!(
            codec.recover_sparse_blocks(&[(0, coded.shard(0)), (1, coded.shard(1))], 2),
            Err(CodeError::SparsityNotExploitable { gamma: 2, k: 3 })
        ));
        assert!(matches!(
            codec.recover_sparse_blocks(&[(0, coded.shard(0))], 1),
            Err(CodeError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn clones_share_code_and_tables() {
        let codec = codec(6, 3, GeneratorForm::NonSystematic);
        let clone = codec.clone();
        assert!(Arc::ptr_eq(&codec.shared_code(), &clone.shared_code()));
        assert!(Arc::ptr_eq(&codec.shared_tables(), &clone.shared_tables()));
        // Tables built through one clone are visible through the other.
        let data = ByteShards::from_flat(&object(32), 3);
        let coded = clone.encode_blocks(&data).unwrap();
        assert!(codec.shared_tables().cached_coefficients() > 0);
        let shares: Vec<(usize, &[u8])> = (0..3).map(|i| (i, coded.shard(i))).collect();
        assert_eq!(codec.decode_blocks(&shares).unwrap(), data);
    }

    #[test]
    fn cached_coefficients_counts_distinct_nontrivial_generator_entries() {
        let codec = codec(6, 3, GeneratorForm::NonSystematic);
        assert_eq!(
            codec.shared_tables().cached_coefficients(),
            0,
            "cache starts empty"
        );
        let data = ByteShards::from_flat(&object(96), 3);
        codec.encode_blocks(&data).unwrap();
        // Tables are built lazily, one per *distinct* coefficient the encode
        // actually multiplies by: the c = 0 / c = 1 fast paths never touch
        // the cache, so the count after an encode is exactly the number of
        // distinct generator entries outside {0, 1}.
        let g = codec.code().generator();
        let expect: std::collections::BTreeSet<u64> = (0..codec.code().n())
            .flat_map(|row| (0..codec.code().k()).map(move |col| g.get(row, col).to_u64()))
            .filter(|&v| v > 1)
            .collect();
        assert_eq!(codec.shared_tables().cached_coefficients(), expect.len());
        // Re-encoding reuses every cached table: the count must not grow.
        codec.encode_blocks(&data).unwrap();
        assert_eq!(codec.shared_tables().cached_coefficients(), expect.len());
    }

    #[test]
    fn explicit_scratch_matches_thread_local_path() {
        let codec = codec(6, 3, GeneratorForm::NonSystematic);
        let mut delta = ByteShards::zeroed(3, 17);
        delta.shard_mut(2).copy_from_slice(&object(17));
        let coded = codec.encode_blocks(&delta).unwrap();
        let shares: Vec<(usize, &[u8])> = vec![(1, coded.shard(1)), (4, coded.shard(4))];
        let mut scratch = DecodeScratch::new();
        let with_scratch = codec
            .recover_sparse_blocks_with(&shares, 1, &mut scratch)
            .unwrap();
        let thread_local = codec.recover_sparse_blocks(&shares, 1).unwrap();
        assert_eq!(with_scratch, thread_local);
        assert_eq!(with_scratch, delta);
        // The same scratch can be reused across calls and shard lengths.
        let zero = ByteShards::zeroed(6, 4);
        let zero_shares: Vec<(usize, &[u8])> = vec![(0, zero.shard(0)), (5, zero.shard(5))];
        let recovered = codec
            .recover_sparse_blocks_with(&zero_shares, 1, &mut scratch)
            .unwrap();
        assert_eq!(recovered.weight(), 0);
    }

    #[test]
    fn concurrent_decodes_through_one_codec() {
        let codec = std::sync::Arc::new(codec(6, 3, GeneratorForm::NonSystematic));
        let obj = object(96);
        let coded = codec.encode_blocks(&ByteShards::from_flat(&obj, 3)).unwrap();
        let coded = std::sync::Arc::new(coded);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let codec = std::sync::Arc::clone(&codec);
                let coded = std::sync::Arc::clone(&coded);
                let expect = obj.clone();
                std::thread::spawn(move || {
                    let rows = [[0, 1, 2], [3, 4, 5], [0, 2, 4], [1, 3, 5]][t % 4];
                    for _ in 0..25 {
                        let shares: Vec<(usize, &[u8])> =
                            rows.iter().map(|&i| (i, coded.shard(i))).collect();
                        let decoded = codec.decode_blocks(&shares).unwrap();
                        assert_eq!(decoded.join(expect.len()), expect);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn zero_length_shards_round_trip() {
        let codec = codec(6, 3, GeneratorForm::NonSystematic);
        let data = ByteShards::zeroed(3, 0);
        let coded = codec.encode_blocks(&data).unwrap();
        assert_eq!(coded.shard_len(), 0);
        let shares: Vec<(usize, &[u8])> = (0..3).map(|i| (i, coded.shard(i))).collect();
        let decoded = codec.decode_blocks(&shares).unwrap();
        assert_eq!(decoded.total_len(), 0);
    }
}
