//! The [`SecCode`] type: an `(n, k)` MDS code with both full and sparse
//! decoding, in systematic or non-systematic form.

use core::fmt;

use sec_gf::GaloisField;
use sec_linalg::cauchy::{cauchy_matrix, cauchy_parity_block, CauchyError};
use sec_linalg::{checks, ops, Matrix};

use crate::error::CodeError;
use crate::sparse;

/// The `(n, k)` parameters of a linear code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeParams {
    /// Code length: number of coded symbols / storage nodes per object.
    pub n: usize,
    /// Code dimension: number of source symbols per object.
    pub k: usize,
}

impl CodeParams {
    /// Creates and validates the parameter pair.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] unless `0 < k < n`.
    pub fn new(n: usize, k: usize) -> Result<Self, CodeError> {
        if k == 0 {
            return Err(CodeError::InvalidParams {
                n,
                k,
                reason: "k must be positive",
            });
        }
        if k >= n {
            return Err(CodeError::InvalidParams {
                n,
                k,
                reason: "k must be less than n",
            });
        }
        Ok(Self { n, k })
    }

    /// Storage overhead `n / k` of the code.
    pub fn overhead(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// Code rate `k / n`.
    pub fn rate(&self) -> f64 {
        self.k as f64 / self.n as f64
    }

    /// Largest sparsity level whose deltas are cheaper to read than a full
    /// object, i.e. the largest `γ` with `2γ < k`.
    pub fn max_exploitable_sparsity(&self) -> usize {
        if self.k == 0 {
            0
        } else {
            (self.k - 1) / 2
        }
    }
}

impl fmt::Display for CodeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.n, self.k)
    }
}

/// Whether the generator matrix is in systematic form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeneratorForm {
    /// `G_S = [I_k ; B]`: the first `k` coded symbols are the data itself.
    Systematic,
    /// `G_N`: a dense (Cauchy) matrix with no identity block.
    NonSystematic,
}

impl fmt::Display for GeneratorForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorForm::Systematic => write!(f, "systematic"),
            GeneratorForm::NonSystematic => write!(f, "non-systematic"),
        }
    }
}

/// One coded symbol together with the index of the node that stores it.
pub type Share<F> = (usize, F);

/// An `(n, k)` linear MDS code with SEC's two decoding modes.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecCode<F> {
    params: CodeParams,
    form: GeneratorForm,
    generator: Matrix<F>,
}

impl<F: GaloisField> SecCode<F> {
    /// Builds an `(n, k)` Cauchy-matrix code in the requested form
    /// (paper, Examples 1 and 2).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] for a bad `(n, k)` pair or
    /// [`CodeError::FieldTooSmall`] when the field cannot host the Cauchy
    /// construction.
    pub fn cauchy(n: usize, k: usize, form: GeneratorForm) -> Result<Self, CodeError> {
        let params = CodeParams::new(n, k)?;
        let generator = match form {
            GeneratorForm::NonSystematic => map_cauchy_err(cauchy_matrix::<F>(n, k), n, k)?,
            GeneratorForm::Systematic => {
                let parity = map_cauchy_err(cauchy_parity_block::<F>(n, k), n, k)?;
                Matrix::identity(k).stack(&parity)?
            }
        };
        Ok(Self {
            params,
            form,
            generator,
        })
    }

    /// Wraps an arbitrary generator matrix, validating its shape and the MDS
    /// property (Criterion 1 in its strongest form).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] when the matrix shape is not
    /// `n × k` with `k < n`, or when the matrix is not MDS.
    pub fn from_generator(generator: Matrix<F>, form: GeneratorForm) -> Result<Self, CodeError> {
        let (n, k) = generator.shape();
        let params = CodeParams::new(n, k)?;
        if !checks::is_mds(&generator) {
            return Err(CodeError::InvalidParams {
                n,
                k,
                reason: "generator matrix is not MDS (some k rows are linearly dependent)",
            });
        }
        if form == GeneratorForm::Systematic {
            let top = generator.select_rows(&(0..k).collect::<Vec<_>>())?;
            if top != Matrix::identity(k) {
                return Err(CodeError::InvalidParams {
                    n,
                    k,
                    reason: "systematic form requires the first k rows to be the identity",
                });
            }
        }
        Ok(Self {
            params,
            form,
            generator,
        })
    }

    /// The `(n, k)` parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// Code length `n`.
    pub fn n(&self) -> usize {
        self.params.n
    }

    /// Code dimension `k`.
    pub fn k(&self) -> usize {
        self.params.k
    }

    /// The generator form (systematic or not).
    pub fn form(&self) -> GeneratorForm {
        self.form
    }

    /// The full `n × k` generator matrix.
    pub fn generator(&self) -> &Matrix<F> {
        &self.generator
    }

    /// Rows of the generator restricted to the parity block (`B`) for a
    /// systematic code, or all rows for a non-systematic one. These are the
    /// rows from which Criterion-2 submatrices are drawn for systematic codes
    /// (paper §III-C).
    pub fn sparse_eligible_rows(&self) -> Vec<usize> {
        match self.form {
            GeneratorForm::Systematic => (self.params.k..self.params.n).collect(),
            GeneratorForm::NonSystematic => (0..self.params.n).collect(),
        }
    }

    /// Encodes a `k`-symbol object into its `n`-symbol codeword `c = G·x`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::DataLengthMismatch`] when `data.len() != k`.
    pub fn encode(&self, data: &[F]) -> Result<Vec<F>, CodeError> {
        if data.len() != self.params.k {
            return Err(CodeError::DataLengthMismatch {
                expected: self.params.k,
                actual: data.len(),
            });
        }
        Ok(self
            .generator
            .mul_vec(data)
            .expect("data length validated against generator columns"))
    }

    /// Validates a share list against the code: indices in range, no
    /// duplicates.
    fn validate_shares(&self, shares: &[Share<F>]) -> Result<(), CodeError> {
        let mut seen = vec![false; self.params.n];
        for &(idx, _) in shares {
            if idx >= self.params.n {
                return Err(CodeError::ShareIndexOutOfRange {
                    index: idx,
                    n: self.params.n,
                });
            }
            if seen[idx] {
                return Err(CodeError::DuplicateShare { index: idx });
            }
            seen[idx] = true;
        }
        Ok(())
    }

    /// Recovers the full `k`-symbol object from at least `k` shares
    /// (Criterion 1 / MDS decoding).
    ///
    /// For a systematic code, if the supplied shares contain all `k`
    /// systematic symbols they are returned directly with no matrix
    /// inversion.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NotEnoughShares`] with fewer than `k` shares, or
    /// [`CodeError::UndecodableShareSet`] if no invertible `k`-subset exists
    /// among the supplied shares (impossible for a validated MDS code).
    pub fn decode_full(&self, shares: &[Share<F>]) -> Result<Vec<F>, CodeError> {
        self.validate_shares(shares)?;
        let k = self.params.k;
        if shares.len() < k {
            return Err(CodeError::NotEnoughShares {
                needed: k,
                available: shares.len(),
            });
        }

        // Systematic fast path: all data symbols present.
        if self.form == GeneratorForm::Systematic {
            let mut data = vec![None; k];
            for &(idx, value) in shares {
                if idx < k {
                    data[idx] = Some(value);
                }
            }
            if data.iter().all(Option::is_some) {
                return Ok(data.into_iter().map(|v| v.expect("checked by all()")).collect());
            }
        }

        // General path: pick the first k shares forming an invertible system.
        let rows: Vec<usize> = shares.iter().map(|&(idx, _)| idx).collect();
        let values: Vec<F> = shares.iter().map(|&(_, v)| v).collect();
        for subset in sec_linalg::combinatorics::Combinations::new(shares.len(), k) {
            let row_idx: Vec<usize> = subset.iter().map(|&i| rows[i]).collect();
            let sub = self.generator.select_rows(&row_idx)?;
            if let Ok(inv) = ops::invert(&sub) {
                let y: Vec<F> = subset.iter().map(|&i| values[i]).collect();
                return Ok(inv.mul_vec(&y)?);
            }
        }
        Err(CodeError::UndecodableShareSet)
    }

    /// Recovers a `γ`-sparse object from `2γ` (or more) shares using the
    /// Criterion-2 property (Proposition 1 of the paper).
    ///
    /// The caller asserts the object is at most `γ`-sparse; if it is not, the
    /// recovery fails rather than returning a wrong vector (the supplied
    /// equations over-determine the support search).
    ///
    /// # Errors
    ///
    /// * [`CodeError::SparsityNotExploitable`] when `2γ ≥ k` (read the full
    ///   object instead) or `γ = 0` shares with non-zero syndrome.
    /// * [`CodeError::NotEnoughShares`] with fewer than `2γ` shares.
    /// * [`CodeError::SparseRecoveryFailed`] when no `γ`-sparse vector is
    ///   consistent with the shares.
    pub fn decode_sparse(&self, shares: &[Share<F>], gamma: usize) -> Result<Vec<F>, CodeError> {
        self.validate_shares(shares)?;
        let k = self.params.k;
        if gamma == 0 || 2 * gamma >= k {
            return Err(CodeError::SparsityNotExploitable { gamma, k });
        }
        let needed = 2 * gamma;
        if shares.len() < needed {
            return Err(CodeError::NotEnoughShares {
                needed,
                available: shares.len(),
            });
        }
        let rows: Vec<usize> = shares.iter().map(|&(idx, _)| idx).collect();
        let values: Vec<F> = shares.iter().map(|&(_, v)| v).collect();
        let sub = self.generator.select_rows(&rows)?;
        sparse::recover_sparse(&sub, &values, gamma).ok_or(CodeError::SparseRecoveryFailed { gamma })
    }

    /// Number of I/O reads needed to retrieve an object of sparsity `γ`
    /// through this code when all nodes are alive: `min(2γ, k)` when the
    /// sparsity is exploitable, `k` otherwise (paper, eq. 3).
    ///
    /// For systematic codes, sparsity is only exploitable when the `2γ`
    /// symbols can be drawn from the `n − k` parity rows (paper §III-C).
    pub fn io_reads_for_sparsity(&self, gamma: usize) -> usize {
        let k = self.params.k;
        if gamma == 0 {
            return 0;
        }
        if 2 * gamma >= k {
            return k;
        }
        match self.form {
            GeneratorForm::NonSystematic => 2 * gamma,
            GeneratorForm::Systematic => {
                if 2 * gamma <= self.params.n - k {
                    2 * gamma
                } else {
                    k
                }
            }
        }
    }
}

fn map_cauchy_err<T>(res: Result<T, CauchyError>, n: usize, k: usize) -> Result<T, CodeError> {
    res.map_err(|err| match err {
        CauchyError::FieldTooSmall { field_order, .. } => CodeError::FieldTooSmall { n, k, field_order },
        CauchyError::InvalidPoints => CodeError::Internal("invalid cauchy points".to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::{Gf1024, Gf16, Gf256};

    fn data256(vals: &[u64]) -> Vec<Gf256> {
        vals.iter().map(|&v| Gf256::from_u64(v)).collect()
    }

    #[test]
    fn params_validation_and_accessors() {
        assert!(CodeParams::new(6, 3).is_ok());
        assert!(matches!(
            CodeParams::new(3, 3),
            Err(CodeError::InvalidParams { .. })
        ));
        assert!(matches!(
            CodeParams::new(3, 0),
            Err(CodeError::InvalidParams { .. })
        ));
        let p = CodeParams::new(20, 10).unwrap();
        assert_eq!(p.overhead(), 2.0);
        assert_eq!(p.rate(), 0.5);
        assert_eq!(p.max_exploitable_sparsity(), 4);
        assert_eq!(CodeParams::new(6, 3).unwrap().max_exploitable_sparsity(), 1);
        assert_eq!(format!("{p}"), "(20, 10)");
    }

    #[test]
    fn cauchy_codes_build_in_both_forms() {
        for form in [GeneratorForm::Systematic, GeneratorForm::NonSystematic] {
            let code: SecCode<Gf256> = SecCode::cauchy(6, 3, form).unwrap();
            assert_eq!(code.n(), 6);
            assert_eq!(code.k(), 3);
            assert_eq!(code.form(), form);
            assert_eq!(code.generator().shape(), (6, 3));
        }
        assert!(matches!(
            SecCode::<Gf16>::cauchy(14, 5, GeneratorForm::NonSystematic),
            Err(CodeError::FieldTooSmall { .. })
        ));
        assert!(matches!(
            SecCode::<Gf256>::cauchy(3, 3, GeneratorForm::Systematic),
            Err(CodeError::InvalidParams { .. })
        ));
    }

    #[test]
    fn systematic_generator_starts_with_identity() {
        let code: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
        let g = code.generator();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { Gf1024::ONE } else { Gf1024::ZERO };
                assert_eq!(g.get(i, j), expect);
            }
        }
        assert_eq!(code.sparse_eligible_rows(), vec![3, 4, 5]);
        let ns: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        assert_eq!(ns.sparse_eligible_rows(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn encode_then_decode_full_from_any_k_shares() {
        let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        let x = data256(&[17, 0, 202]);
        let c = code.encode(&x).unwrap();
        assert_eq!(c.len(), 6);
        for rows in sec_linalg::combinatorics::combinations(6, 3) {
            let shares: Vec<Share<Gf256>> = rows.iter().map(|&i| (i, c[i])).collect();
            assert_eq!(code.decode_full(&shares).unwrap(), x, "rows {rows:?}");
        }
    }

    #[test]
    fn systematic_fast_path_returns_data_directly() {
        let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
        let x = data256(&[1, 2, 3]);
        let c = code.encode(&x).unwrap();
        assert_eq!(&c[..3], x.as_slice());
        let shares: Vec<Share<Gf256>> = vec![(0, c[0]), (1, c[1]), (2, c[2])];
        assert_eq!(code.decode_full(&shares).unwrap(), x);
        // Decoding from parity symbols also works (general path).
        let shares: Vec<Share<Gf256>> = vec![(3, c[3]), (4, c[4]), (5, c[5])];
        assert_eq!(code.decode_full(&shares).unwrap(), x);
    }

    #[test]
    fn decode_full_error_paths() {
        let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        let x = data256(&[5, 6, 7]);
        let c = code.encode(&x).unwrap();
        assert!(matches!(
            code.decode_full(&[(0, c[0])]),
            Err(CodeError::NotEnoughShares {
                needed: 3,
                available: 1
            })
        ));
        assert!(matches!(
            code.decode_full(&[(0, c[0]), (0, c[0]), (1, c[1])]),
            Err(CodeError::DuplicateShare { index: 0 })
        ));
        assert!(matches!(
            code.decode_full(&[(9, c[0]), (1, c[1]), (2, c[2])]),
            Err(CodeError::ShareIndexOutOfRange { index: 9, n: 6 })
        ));
        assert!(matches!(
            code.encode(&data256(&[1, 2])),
            Err(CodeError::DataLengthMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn sparse_decode_from_two_shares() {
        let code: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        // 1-sparse delta in an arbitrary position.
        for pos in 0..3 {
            let mut z = vec![Gf1024::ZERO; 3];
            z[pos] = Gf1024::from_u64(999);
            let c = code.encode(&z).unwrap();
            // Any 2 shares suffice for the non-systematic Cauchy code.
            for rows in sec_linalg::combinatorics::combinations(6, 2) {
                let shares: Vec<Share<Gf1024>> = rows.iter().map(|&i| (i, c[i])).collect();
                assert_eq!(
                    code.decode_sparse(&shares, 1).unwrap(),
                    z,
                    "rows {rows:?} pos {pos}"
                );
            }
        }
    }

    #[test]
    fn sparse_decode_systematic_uses_parity_rows() {
        let code: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
        let z = vec![Gf1024::from_u64(77), Gf1024::ZERO, Gf1024::ZERO];
        let c = code.encode(&z).unwrap();
        // Two parity shares (rows from B) recover the delta.
        let shares: Vec<Share<Gf1024>> = vec![(3, c[3]), (4, c[4])];
        assert_eq!(code.decode_sparse(&shares, 1).unwrap(), z);
        // Two identity rows that both miss the support cannot see the delta:
        // rows 1 and 2 read zeros and sparse recovery returns the zero vector,
        // which is *wrong* for z — this is exactly why Criterion 2 restricts
        // which submatrices may be used.
        let shares: Vec<Share<Gf1024>> = vec![(1, c[1]), (2, c[2])];
        let recovered = code.decode_sparse(&shares, 1).unwrap();
        assert_ne!(recovered, z);
    }

    #[test]
    fn sparse_decode_error_paths() {
        let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        let z = data256(&[9, 0, 0]);
        let c = code.encode(&z).unwrap();
        assert!(matches!(
            code.decode_sparse(&[(0, c[0])], 1),
            Err(CodeError::NotEnoughShares {
                needed: 2,
                available: 1
            })
        ));
        // γ too large relative to k.
        assert!(matches!(
            code.decode_sparse(&[(0, c[0]), (1, c[1])], 2),
            Err(CodeError::SparsityNotExploitable { gamma: 2, k: 3 })
        ));
        assert!(matches!(
            code.decode_sparse(&[(0, c[0]), (1, c[1])], 0),
            Err(CodeError::SparsityNotExploitable { gamma: 0, .. })
        ));
        // A non-sparse object cannot be recovered as 1-sparse: the decoder
        // either reports failure or returns some 1-sparse vector, but never
        // the true dense object.
        let dense = data256(&[1, 2, 3]);
        let cd = code.encode(&dense).unwrap();
        match code.decode_sparse(&[(0, cd[0]), (1, cd[1])], 1) {
            Err(CodeError::SparseRecoveryFailed { gamma: 1 }) => {}
            Ok(wrong) => assert_ne!(wrong, dense),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn io_reads_match_paper_formulas() {
        // (20,10) rate-1/2 code: both forms give min(2γ, k).
        for form in [GeneratorForm::Systematic, GeneratorForm::NonSystematic] {
            let code: SecCode<Gf1024> = SecCode::cauchy(20, 10, form).unwrap();
            assert_eq!(code.io_reads_for_sparsity(0), 0);
            assert_eq!(code.io_reads_for_sparsity(3), 6);
            assert_eq!(code.io_reads_for_sparsity(4), 8);
            assert_eq!(code.io_reads_for_sparsity(5), 10);
            assert_eq!(code.io_reads_for_sparsity(8), 10);
        }
        // High-rate (6,4) systematic code: only γ ≤ (n-k)/2 = 1 exploitable.
        let sys: SecCode<Gf256> = SecCode::cauchy(6, 4, GeneratorForm::Systematic).unwrap();
        assert_eq!(sys.io_reads_for_sparsity(1), 2);
        // γ = 2 would need 4 parity rows but only 2 exist → falls back to k.
        // (2γ = 4 ≥ k = 4 anyway, so both forms read k.)
        assert_eq!(sys.io_reads_for_sparsity(2), 4);
        // High-rate (8, 5): non-systematic exploits γ = 2, systematic cannot.
        let ns: SecCode<Gf256> = SecCode::cauchy(8, 5, GeneratorForm::NonSystematic).unwrap();
        let sy: SecCode<Gf256> = SecCode::cauchy(8, 5, GeneratorForm::Systematic).unwrap();
        assert_eq!(ns.io_reads_for_sparsity(2), 4);
        assert_eq!(sy.io_reads_for_sparsity(2), 5);
    }

    #[test]
    fn from_generator_validates() {
        let g = sec_linalg::cauchy::cauchy_matrix::<Gf256>(5, 2).unwrap();
        let code = SecCode::from_generator(g.clone(), GeneratorForm::NonSystematic).unwrap();
        assert_eq!(code.params(), CodeParams::new(5, 2).unwrap());
        // Claiming systematic form for a dense matrix is rejected.
        assert!(matches!(
            SecCode::from_generator(g, GeneratorForm::Systematic),
            Err(CodeError::InvalidParams { .. })
        ));
        // A rank-deficient generator is rejected.
        let bad = Matrix::<Gf256>::zeros(4, 2);
        assert!(matches!(
            SecCode::from_generator(bad, GeneratorForm::NonSystematic),
            Err(CodeError::InvalidParams { .. })
        ));
    }

    #[test]
    fn paper_example_table1_io_reads() {
        // §IV-C / Table I: (6,3) code, z2 1-sparse → 2 I/O reads for both SEC
        // forms, 3 for the non-differential scheme (full object read).
        let ns: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        let sy: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
        assert_eq!(ns.io_reads_for_sparsity(1), 2);
        assert_eq!(sy.io_reads_for_sparsity(1), 2);
        assert_eq!(ns.k(), 3);
    }
}
