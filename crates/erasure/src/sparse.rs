//! Sparse recovery: reconstruct a `γ`-sparse vector `z ∈ F^k` from the
//! under-determined observation `y = Φ·z`, where `Φ` is a `2γ × k` submatrix
//! of the generator in which every `2γ` columns are linearly independent
//! (Proposition 1 of the SEC paper — the finite-field analogue of
//! compressed sensing).
//!
//! Two decoders are provided:
//!
//! * [`recover_sparse`] — minimal-weight support search. It tries supports of
//!   size 0, 1, …, γ and solves the corresponding over-determined system for
//!   each candidate support. Uniqueness of the answer is guaranteed by the
//!   column-independence hypothesis; complexity is `O(C(k, γ))` solves, which
//!   is entirely practical at the paper's scales (`k ≤ 10`, `γ ≤ 4`).
//! * [`recover_sparse_incremental`] — the same search but returning the full
//!   diagnostic (support, number of candidate systems examined), used by the
//!   benches to compare decoder strategies.

use sec_gf::GaloisField;
use sec_linalg::combinatorics::Combinations;
use sec_linalg::{ops, Matrix};

/// Outcome of a sparse recovery with diagnostics attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseRecovery<F> {
    /// The recovered `k`-symbol vector.
    pub vector: Vec<F>,
    /// Indices of the non-zero entries that were solved for.
    pub support: Vec<usize>,
    /// Number of candidate supports examined before success.
    pub candidates_examined: usize,
}

/// Recovers the minimal-weight vector `z` with `weight(z) ≤ gamma` satisfying
/// `phi · z = y`, or `None` when no such vector exists.
///
/// When every `2γ` columns of `phi` are linearly independent and the true
/// vector has weight at most `γ`, the result is unique and equals the true
/// vector. When those hypotheses do not hold the function still returns *a*
/// minimal-weight consistent vector if one exists — callers that cannot
/// guarantee the hypotheses must validate the result against other shares.
pub fn recover_sparse<F: GaloisField>(phi: &Matrix<F>, y: &[F], gamma: usize) -> Option<Vec<F>> {
    recover_sparse_incremental(phi, y, gamma).map(|r| r.vector)
}

/// Same as [`recover_sparse`] but also reports the recovered support and how
/// many candidate supports were examined.
pub fn recover_sparse_incremental<F: GaloisField>(
    phi: &Matrix<F>,
    y: &[F],
    gamma: usize,
) -> Option<SparseRecovery<F>> {
    if y.len() != phi.rows() {
        return None;
    }
    let k = phi.cols();
    let mut examined = 0usize;

    // Weight-0 fast path.
    if y.iter().all(|v| v.is_zero()) {
        return Some(SparseRecovery {
            vector: vec![F::ZERO; k],
            support: Vec::new(),
            candidates_examined: 0,
        });
    }

    for weight in 1..=gamma.min(k) {
        for support in Combinations::new(k, weight) {
            examined += 1;
            let restricted = phi
                .select_cols(&support)
                .expect("support indices generated in range");
            if let Some(coeffs) = ops::solve_consistent(&restricted, y) {
                // Reject solutions whose actual weight is lower than `weight`
                // only in the sense that a zero coefficient would mean the
                // same vector was already reachable at a smaller weight; it
                // cannot happen because smaller weights were tried first, but
                // normalize anyway by dropping zero coefficients.
                let mut vector = vec![F::ZERO; k];
                let mut support_out = Vec::with_capacity(weight);
                for (&col, &c) in support.iter().zip(&coeffs) {
                    if !c.is_zero() {
                        vector[col] = c;
                        support_out.push(col);
                    }
                }
                return Some(SparseRecovery {
                    vector,
                    support: support_out,
                    candidates_examined: examined,
                });
            }
        }
    }
    None
}

/// Checks whether `candidate` explains the observation: `phi · candidate == y`.
///
/// Useful as a cheap post-hoc validation when the caller is not certain the
/// Criterion-2 hypotheses hold for the rows it read.
pub fn is_consistent<F: GaloisField>(phi: &Matrix<F>, candidate: &[F], y: &[F]) -> bool {
    match phi.mul_vec(candidate) {
        Ok(prod) => prod == y,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::{GaloisField, Gf1024, Gf256};
    use sec_linalg::cauchy::cauchy_matrix;

    fn sparse_vec<F: GaloisField>(k: usize, entries: &[(usize, u64)]) -> Vec<F> {
        let mut v = vec![F::ZERO; k];
        for &(i, val) in entries {
            v[i] = F::from_u64(val);
        }
        v
    }

    #[test]
    fn recovers_one_sparse_from_two_rows() {
        let g = cauchy_matrix::<Gf1024>(6, 3).unwrap();
        let z = sparse_vec::<Gf1024>(3, &[(1, 513)]);
        let phi = g.select_rows(&[2, 5]).unwrap();
        let y = phi.mul_vec(&z).unwrap();
        let rec = recover_sparse_incremental(&phi, &y, 1).unwrap();
        assert_eq!(rec.vector, z);
        assert_eq!(rec.support, vec![1]);
        assert!(rec.candidates_examined >= 1 && rec.candidates_examined <= 3);
    }

    #[test]
    fn recovers_two_sparse_from_four_rows() {
        let g = cauchy_matrix::<Gf256>(10, 5).unwrap();
        let z = sparse_vec::<Gf256>(5, &[(0, 7), (4, 201)]);
        let phi = g.select_rows(&[1, 3, 6, 9]).unwrap();
        let y = phi.mul_vec(&z).unwrap();
        assert_eq!(recover_sparse(&phi, &y, 2).unwrap(), z);
    }

    #[test]
    fn recovers_up_to_gamma_even_if_actual_weight_smaller() {
        let g = cauchy_matrix::<Gf256>(10, 5).unwrap();
        let z = sparse_vec::<Gf256>(5, &[(2, 9)]);
        let phi = g.select_rows(&[0, 2, 5, 7]).unwrap();
        let y = phi.mul_vec(&z).unwrap();
        // Asking for up to 2-sparse still finds the 1-sparse answer first.
        let rec = recover_sparse_incremental(&phi, &y, 2).unwrap();
        assert_eq!(rec.vector, z);
        assert_eq!(rec.support, vec![2]);
    }

    #[test]
    fn zero_vector_recovered_without_search() {
        let g = cauchy_matrix::<Gf256>(6, 3).unwrap();
        let phi = g.select_rows(&[0, 4]).unwrap();
        let y = vec![Gf256::ZERO; 2];
        let rec = recover_sparse_incremental(&phi, &y, 1).unwrap();
        assert!(rec.vector.iter().all(|c| c.is_zero()));
        assert_eq!(rec.candidates_examined, 0);
    }

    #[test]
    fn fails_when_vector_is_denser_than_gamma() {
        let g = cauchy_matrix::<Gf1024>(20, 10).unwrap();
        // 5-sparse vector but only gamma = 3 allowed with 6 observation rows:
        // the recovery must not silently return a wrong vector that matches
        // the true one; it either fails or returns some ≤3-sparse consistent
        // vector that is necessarily different from the true 5-sparse one.
        let z = sparse_vec::<Gf1024>(10, &[(0, 3), (2, 5), (4, 7), (6, 11), (8, 13)]);
        let phi = g.select_rows(&[0, 1, 2, 3, 4, 5]).unwrap();
        let y = phi.mul_vec(&z).unwrap();
        match recover_sparse(&phi, &y, 3) {
            None => {}
            Some(v) => assert_ne!(v, z),
        }
    }

    #[test]
    fn unique_recovery_across_all_row_choices() {
        // Criterion 2 for the Cauchy generator means *any* 2γ rows recover a
        // γ-sparse vector. Exhaustively verify for (10,5), γ = 2.
        let g = cauchy_matrix::<Gf256>(10, 5).unwrap();
        let z = sparse_vec::<Gf256>(5, &[(1, 33), (3, 77)]);
        for rows in sec_linalg::combinatorics::combinations(10, 4) {
            let phi = g.select_rows(&rows).unwrap();
            let y = phi.mul_vec(&z).unwrap();
            assert_eq!(recover_sparse(&phi, &y, 2).unwrap(), z, "rows {rows:?}");
        }
    }

    #[test]
    fn mismatched_observation_length_returns_none() {
        let g = cauchy_matrix::<Gf256>(6, 3).unwrap();
        let phi = g.select_rows(&[0, 1]).unwrap();
        assert!(recover_sparse(&phi, &[Gf256::ONE], 1).is_none());
    }

    #[test]
    fn consistency_check() {
        let g = cauchy_matrix::<Gf256>(6, 3).unwrap();
        let phi = g.select_rows(&[1, 4]).unwrap();
        let z = sparse_vec::<Gf256>(3, &[(0, 9)]);
        let y = phi.mul_vec(&z).unwrap();
        assert!(is_consistent(&phi, &z, &y));
        let mut wrong = z.clone();
        wrong[0] += Gf256::ONE;
        assert!(!is_consistent(&phi, &wrong, &y));
        assert!(!is_consistent(&phi, &z[..2], &y));
    }

    #[test]
    fn identity_rows_do_not_satisfy_criterion_two() {
        // Two identity rows that miss the support see a zero observation and
        // return the zero vector — demonstrating why systematic codes must
        // draw their Criterion-2 submatrices from the parity block.
        let mut rows = vec![vec![Gf256::ZERO; 3]; 2];
        rows[0][1] = Gf256::ONE;
        rows[1][2] = Gf256::ONE;
        let phi = Matrix::from_rows(&rows).unwrap();
        let z = sparse_vec::<Gf256>(3, &[(0, 42)]);
        let y = phi.mul_vec(&z).unwrap();
        let rec = recover_sparse(&phi, &y, 1).unwrap();
        assert_ne!(rec, z);
        assert!(rec.iter().all(|c| c.is_zero()));
    }
}
