//! Puncturing of sparse-delta codewords — the storage optimization the paper
//! flags as immediate future work (§IV-D and the conclusion).
//!
//! Observation: with colocated placement, the availability of the whole
//! archive is bottlenecked by the fully coded first (or last) version, which
//! needs `k` of its `n` symbols and therefore tolerates `n − k` failures. A
//! `γ`-sparse delta stored under non-systematic SEC needs only `2γ < k`
//! symbols, so storing all `n` coded symbols gives it *more* fault tolerance
//! than the archive can ever use. Puncturing drops the surplus: keep only
//! `n' = 2γ + (n − k)` coded symbols, so the delta still tolerates exactly
//! `n − k` failures (matching the archive bottleneck) while saving
//! `n − n' = k − 2γ` symbols of storage per delta.
//!
//! Because every square submatrix of a Cauchy generator is invertible, *any*
//! `2γ` of the retained symbols still recover the delta, so no extra
//! bookkeeping is required beyond remembering which positions were kept.

use sec_gf::GaloisField;

use crate::code::{GeneratorForm, SecCode, Share};
use crate::error::CodeError;

/// A punctured delta codeword: the retained coded symbols and their original
/// positions in the full `n`-symbol codeword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PuncturedCodeword<F> {
    /// Original codeword positions that were kept, in increasing order.
    pub positions: Vec<usize>,
    /// The retained coded symbols, aligned with `positions`.
    pub symbols: Vec<F>,
    /// The sparsity bound the puncturing was planned for.
    pub gamma: usize,
}

impl<F: GaloisField> PuncturedCodeword<F> {
    /// Number of symbols actually stored.
    pub fn stored_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// The shares (position, symbol) of the retained symbols, optionally
    /// restricted to the positions listed in `live`.
    pub fn shares(&self, live: Option<&[usize]>) -> Vec<Share<F>> {
        self.positions
            .iter()
            .zip(&self.symbols)
            .filter(|(pos, _)| live.map_or(true, |l| l.contains(*pos)))
            .map(|(&pos, &sym)| (pos, sym))
            .collect()
    }
}

/// Plans the set of codeword positions to retain for a `γ`-sparse delta so
/// that it tolerates exactly `target_failures` node failures.
///
/// Returns the retained positions (the first `2γ + target_failures` codeword
/// positions, which for a Cauchy generator are as good as any other choice).
///
/// # Errors
///
/// * [`CodeError::SparsityNotExploitable`] if `γ = 0` or `2γ ≥ k` (puncturing
///   only applies to exploitable deltas) or the code is systematic (its
///   identity rows do not provide universal `2γ`-recovery).
/// * [`CodeError::InvalidParams`] if the requested retention exceeds `n`.
pub fn puncture_plan<F: GaloisField>(
    code: &SecCode<F>,
    gamma: usize,
    target_failures: usize,
) -> Result<Vec<usize>, CodeError> {
    let k = code.k();
    let n = code.n();
    if code.form() != GeneratorForm::NonSystematic {
        return Err(CodeError::SparsityNotExploitable { gamma, k });
    }
    if gamma == 0 || 2 * gamma >= k {
        return Err(CodeError::SparsityNotExploitable { gamma, k });
    }
    let keep = 2 * gamma + target_failures;
    if keep > n {
        return Err(CodeError::InvalidParams {
            n,
            k,
            reason: "puncturing would need to retain more symbols than the code produces",
        });
    }
    Ok((0..keep).collect())
}

/// Encodes a `γ`-sparse delta and immediately punctures the codeword so that
/// it tolerates `target_failures` failures (typically `n − k`, the archive's
/// bottleneck tolerance).
///
/// # Errors
///
/// Propagates [`puncture_plan`] and [`SecCode::encode`] errors, and rejects a
/// delta whose actual weight exceeds `gamma`.
pub fn encode_punctured<F: GaloisField>(
    code: &SecCode<F>,
    delta: &[F],
    gamma: usize,
    target_failures: usize,
) -> Result<PuncturedCodeword<F>, CodeError> {
    let weight = delta.iter().filter(|s| !s.is_zero()).count();
    if weight > gamma {
        return Err(CodeError::SparseRecoveryFailed { gamma });
    }
    let positions = puncture_plan(code, gamma, target_failures)?;
    let full = code.encode(delta)?;
    let symbols = positions.iter().map(|&i| full[i]).collect();
    Ok(PuncturedCodeword {
        positions,
        symbols,
        gamma,
    })
}

/// Recovers the delta from a punctured codeword, reading only from the listed
/// live positions (or all retained positions when `live` is `None`).
///
/// # Errors
///
/// Returns [`CodeError::NotEnoughShares`] when fewer than `2γ` retained
/// symbols are alive, or a sparse-recovery failure from the decoder.
pub fn decode_punctured<F: GaloisField>(
    code: &SecCode<F>,
    punctured: &PuncturedCodeword<F>,
    live: Option<&[usize]>,
) -> Result<Vec<F>, CodeError> {
    let shares = punctured.shares(live);
    let needed = 2 * punctured.gamma;
    if shares.len() < needed {
        return Err(CodeError::NotEnoughShares {
            needed,
            available: shares.len(),
        });
    }
    code.decode_sparse(&shares[..needed], punctured.gamma)
}

/// Storage saved by puncturing one delta, in coded symbols: `n − (2γ + f)`.
pub fn symbols_saved(n: usize, k: usize, gamma: usize, target_failures: usize) -> usize {
    if gamma == 0 || 2 * gamma >= k {
        return 0;
    }
    n.saturating_sub(2 * gamma + target_failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::{GaloisField, Gf1024};
    use sec_linalg::combinatorics::combinations;

    fn code() -> SecCode<Gf1024> {
        SecCode::cauchy(20, 10, GeneratorForm::NonSystematic).unwrap()
    }

    fn sparse_delta(k: usize, entries: &[(usize, u64)]) -> Vec<Gf1024> {
        let mut z = vec![Gf1024::ZERO; k];
        for &(i, v) in entries {
            z[i] = Gf1024::from_u64(v);
        }
        z
    }

    #[test]
    fn plan_keeps_2gamma_plus_tolerance_symbols() {
        let c = code();
        let plan = puncture_plan(&c, 3, 10).unwrap();
        assert_eq!(plan.len(), 16);
        assert_eq!(symbols_saved(20, 10, 3, 10), 4);
        // γ = 1 saves the most: keep 12 of 20.
        assert_eq!(puncture_plan(&c, 1, 10).unwrap().len(), 12);
        assert_eq!(symbols_saved(20, 10, 1, 10), 8);
        // Dense deltas cannot be punctured.
        assert!(matches!(
            puncture_plan(&c, 5, 10),
            Err(CodeError::SparsityNotExploitable { .. })
        ));
        assert_eq!(symbols_saved(20, 10, 5, 10), 0);
        // Requesting more tolerance than the code has symbols is rejected.
        assert!(matches!(
            puncture_plan(&c, 4, 15),
            Err(CodeError::InvalidParams { .. })
        ));
        // Systematic codes are rejected.
        let sys: SecCode<Gf1024> = SecCode::cauchy(20, 10, GeneratorForm::Systematic).unwrap();
        assert!(matches!(
            puncture_plan(&sys, 2, 10),
            Err(CodeError::SparsityNotExploitable { .. })
        ));
    }

    #[test]
    fn punctured_delta_round_trips() {
        let c = code();
        let delta = sparse_delta(10, &[(2, 700), (7, 13)]);
        let punctured = encode_punctured(&c, &delta, 2, 10).unwrap();
        assert_eq!(punctured.stored_symbols(), 14);
        assert_eq!(decode_punctured(&c, &punctured, None).unwrap(), delta);
    }

    #[test]
    fn punctured_delta_tolerates_target_failures() {
        // Keep 2γ + (n-k) = 2 + 10 = 12 symbols; ANY 10 failures among the
        // retained positions still leave 2 symbols, which recover the delta.
        let c = code();
        let delta = sparse_delta(10, &[(4, 999)]);
        let punctured = encode_punctured(&c, &delta, 1, 10).unwrap();
        assert_eq!(punctured.stored_symbols(), 12);
        for surviving in combinations(12, 2) {
            let live: Vec<usize> = surviving.iter().map(|&i| punctured.positions[i]).collect();
            let recovered = decode_punctured(&c, &punctured, Some(&live)).unwrap();
            assert_eq!(recovered, delta, "survivors {live:?}");
        }
        // With only one live symbol the delta is lost.
        let live = vec![punctured.positions[0]];
        assert!(matches!(
            decode_punctured(&c, &punctured, Some(&live)),
            Err(CodeError::NotEnoughShares {
                needed: 2,
                available: 1
            })
        ));
    }

    #[test]
    fn overweight_delta_is_rejected_at_encode_time() {
        let c = code();
        let delta = sparse_delta(10, &[(0, 1), (1, 2), (2, 3)]);
        assert!(matches!(
            encode_punctured(&c, &delta, 2, 10),
            Err(CodeError::SparseRecoveryFailed { gamma: 2 })
        ));
    }

    #[test]
    fn storage_overhead_comparison_with_unpunctured_sec() {
        // For the §III-D profile {3, 8, 3, 6} on a (20,10) code with tolerance
        // n - k = 10, puncturing saves 4 + 0 + 4 + 0 = 8 of the 80 delta
        // symbols (10%), without reducing the archive's fault tolerance.
        let saved: usize = [3usize, 8, 3, 6]
            .iter()
            .map(|&g| symbols_saved(20, 10, g, 10))
            .sum();
        assert_eq!(saved, 8);
    }
}
