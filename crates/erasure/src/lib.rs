//! Systematic and non-systematic Cauchy MDS erasure codes with
//! sparse-delta recovery — the coding layer of SEC (Sparsity Exploiting
//! Coding).
//!
//! The SEC paper archives a sequence of versions `x_1, x_2, …` by erasure
//! coding the first version in full and every later version as its delta
//! `z_{j+1} = x_{j+1} − x_j`. The coding layer must therefore support two
//! retrieval modes from the same `(n, k)` code:
//!
//! 1. **Full decode** — recover an arbitrary `k`-symbol object from any `k`
//!    coded symbols (the MDS property / Criterion 1);
//! 2. **Sparse decode** — recover a `γ`-sparse delta (`γ < k/2`) from only
//!    `2γ` coded symbols drawn from a row set in which every `2γ` columns are
//!    linearly independent (Criterion 2, Proposition 1).
//!
//! [`SecCode`] packages a generator matrix (non-systematic Cauchy, or
//! systematic `[I_k ; B]` with a Cauchy parity block `B`) together with both
//! decoders, read planning over live/failed nodes, and shard-level bulk
//! encoding. [`ReplicationCode`] and the plain "encode every version in full"
//! usage of [`SecCode`] serve as the paper's baselines.
//!
//! # Example
//!
//! ```rust
//! use sec_gf::{GaloisField, Gf256};
//! use sec_erasure::{GeneratorForm, SecCode};
//!
//! # fn main() -> Result<(), sec_erasure::CodeError> {
//! let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic)?;
//!
//! // A 1-sparse delta: only the first symbol changed.
//! let delta = vec![Gf256::from_u64(0x2A), Gf256::ZERO, Gf256::ZERO];
//! let codeword = code.encode(&delta)?;
//!
//! // Any 2·γ = 2 coded symbols recover it.
//! let shares = vec![(4, codeword[4]), (1, codeword[1])];
//! let recovered = code.decode_sparse(&shares, 1)?;
//! assert_eq!(recovered, delta);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

mod code;
mod error;

pub mod baseline;
pub mod byte_shards;
pub mod criteria;
pub mod puncture;
pub mod read_plan;
pub mod shards;
pub mod sparse;

pub use baseline::ReplicationCode;
pub use byte_shards::{ByteCodec, ByteShards, DecodeScratch};
pub use code::{CodeParams, GeneratorForm, SecCode, Share};
pub use criteria::{CriteriaReport, GammaReport};
pub use error::CodeError;
pub use read_plan::{DecodeMethod, ReadPlan, ReadTarget};

#[cfg(test)]
mod proptests;
