//! Read planning: given the set of live storage nodes and a retrieval target,
//! decide which coded symbols to fetch, how many disk I/O reads that costs,
//! and which decoder to run.
//!
//! This module is the algorithmic core behind the paper's average-I/O
//! experiments (Figs. 4 and 5): provided enough nodes are alive, a γ-sparse
//! delta costs `2γ` reads whenever some qualifying `2γ`-subset of the live
//! nodes exists (always true for non-systematic Cauchy SEC, only sometimes
//! true for systematic SEC), and `k` reads otherwise.

use sec_gf::GaloisField;
use sec_linalg::checks;
use sec_linalg::combinatorics::Combinations;

use crate::code::{GeneratorForm, SecCode};
use crate::error::CodeError;

/// What the reader wants to reconstruct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadTarget {
    /// A fully (non-sparsely) encoded object; requires `k` symbols.
    Full,
    /// A delta known to be at most `gamma`-sparse.
    Sparse {
        /// Upper bound on the number of non-zero entries.
        gamma: usize,
    },
}

/// Which decoding procedure the plan calls for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeMethod {
    /// The systematic symbols are read directly; no arithmetic needed.
    SystematicDirect,
    /// Invert a `k × k` submatrix of the generator (full MDS decode).
    Inversion,
    /// Run sparse recovery on a `2γ × k` Criterion-2 submatrix.
    SparseRecovery,
}

/// A concrete plan: which node indices to read and how to decode them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPlan {
    /// Indices of the coded symbols (nodes) to read, in read order.
    pub nodes: Vec<usize>,
    /// Number of disk I/O reads the plan costs (`nodes.len()`).
    pub io_reads: usize,
    /// Decoder to apply to the fetched symbols.
    pub method: DecodeMethod,
}

/// Plans a read of `target` from the nodes listed in `live` (indices into
/// `0..n`, unordered, duplicates ignored).
///
/// # Errors
///
/// * [`CodeError::ShareIndexOutOfRange`] if a live index is not a valid node.
/// * [`CodeError::NotEnoughShares`] if the live set cannot possibly serve the
///   target (fewer than `k` nodes for a full read, and no sparse shortcut).
pub fn plan_read<F: GaloisField>(
    code: &SecCode<F>,
    live: &[usize],
    target: ReadTarget,
) -> Result<ReadPlan, CodeError> {
    let n = code.n();
    let k = code.k();
    let mut live_sorted: Vec<usize> = Vec::with_capacity(live.len());
    for &idx in live {
        if idx >= n {
            return Err(CodeError::ShareIndexOutOfRange { index: idx, n });
        }
        if !live_sorted.contains(&idx) {
            live_sorted.push(idx);
        }
    }
    live_sorted.sort_unstable();

    match target {
        ReadTarget::Full => plan_full(code, &live_sorted),
        ReadTarget::Sparse { gamma } => {
            if gamma == 0 || 2 * gamma >= k {
                // Sparsity not exploitable; read as a full object.
                return plan_full(code, &live_sorted);
            }
            if let Some(plan) = plan_sparse(code, &live_sorted, gamma) {
                return Ok(plan);
            }
            // No qualifying 2γ-subset among live nodes: fall back to a full read.
            plan_full(code, &live_sorted)
        }
    }
}

fn plan_full<F: GaloisField>(code: &SecCode<F>, live: &[usize]) -> Result<ReadPlan, CodeError> {
    let k = code.k();
    if live.len() < k {
        return Err(CodeError::NotEnoughShares {
            needed: k,
            available: live.len(),
        });
    }
    if code.form() == GeneratorForm::Systematic {
        let systematic: Vec<usize> = live.iter().copied().filter(|&i| i < k).collect();
        if systematic.len() == k {
            return Ok(ReadPlan {
                nodes: systematic,
                io_reads: k,
                method: DecodeMethod::SystematicDirect,
            });
        }
    }
    // MDS property: any k live nodes decode; take the first k.
    Ok(ReadPlan {
        nodes: live[..k].to_vec(),
        io_reads: k,
        method: DecodeMethod::Inversion,
    })
}

fn plan_sparse<F: GaloisField>(code: &SecCode<F>, live: &[usize], gamma: usize) -> Option<ReadPlan> {
    let needed = 2 * gamma;
    if live.len() < needed {
        return None;
    }
    match code.form() {
        GeneratorForm::NonSystematic => {
            // Every 2γ rows of a Cauchy generator qualify (superregularity),
            // so the first 2γ live nodes do the job.
            Some(ReadPlan {
                nodes: live[..needed].to_vec(),
                io_reads: needed,
                method: DecodeMethod::SparseRecovery,
            })
        }
        GeneratorForm::Systematic => {
            // Prefer subsets drawn from the parity block, then fall back to a
            // full search over live subsets (mixed identity/parity subsets
            // occasionally qualify too, and the paper counts them — e.g. 12
            // of the 15 two-row subsets of the (6,3) G_S do *not* qualify).
            let generator = code.generator();
            let parity_live: Vec<usize> = live.iter().copied().filter(|&i| i >= code.k()).collect();
            if parity_live.len() >= needed {
                let candidate = &parity_live[..needed];
                let sub = generator.select_rows(candidate).ok()?;
                if checks::all_columns_independent(&sub) {
                    return Some(ReadPlan {
                        nodes: candidate.to_vec(),
                        io_reads: needed,
                        method: DecodeMethod::SparseRecovery,
                    });
                }
            }
            for subset in Combinations::new(live.len(), needed) {
                let candidate: Vec<usize> = subset.iter().map(|&i| live[i]).collect();
                let sub = generator.select_rows(&candidate).ok()?;
                if checks::all_columns_independent(&sub) {
                    return Some(ReadPlan {
                        nodes: candidate,
                        io_reads: needed,
                        method: DecodeMethod::SparseRecovery,
                    });
                }
            }
            None
        }
    }
}

/// Convenience: plans the read and immediately decodes from a full codeword
/// (used by simulations where the codeword is available in memory).
///
/// # Errors
///
/// Propagates planning and decoding errors.
pub fn plan_and_decode<F: GaloisField>(
    code: &SecCode<F>,
    codeword: &[F],
    live: &[usize],
    target: ReadTarget,
) -> Result<(ReadPlan, Vec<F>), CodeError> {
    let plan = plan_read(code, live, target)?;
    let shares: Vec<(usize, F)> = plan.nodes.iter().map(|&i| (i, codeword[i])).collect();
    let decoded = match plan.method {
        DecodeMethod::SystematicDirect | DecodeMethod::Inversion => code.decode_full(&shares)?,
        DecodeMethod::SparseRecovery => match target {
            ReadTarget::Sparse { gamma } => code.decode_sparse(&shares, gamma)?,
            ReadTarget::Full => unreachable!("sparse recovery is only planned for sparse targets"),
        },
    };
    Ok((plan, decoded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::{GaloisField, Gf1024, Gf256};

    fn all_nodes(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn full_read_prefers_systematic_nodes() {
        let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
        let plan = plan_read(&code, &all_nodes(6), ReadTarget::Full).unwrap();
        assert_eq!(plan.nodes, vec![0, 1, 2]);
        assert_eq!(plan.io_reads, 3);
        assert_eq!(plan.method, DecodeMethod::SystematicDirect);
        // With a systematic node down, fall back to inversion.
        let plan = plan_read(&code, &[1, 2, 3, 4, 5], ReadTarget::Full).unwrap();
        assert_eq!(plan.io_reads, 3);
        assert_eq!(plan.method, DecodeMethod::Inversion);
    }

    #[test]
    fn full_read_non_systematic_uses_inversion() {
        let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        let plan = plan_read(&code, &[5, 1, 3], ReadTarget::Full).unwrap();
        assert_eq!(plan.nodes, vec![1, 3, 5]);
        assert_eq!(plan.method, DecodeMethod::Inversion);
        assert!(matches!(
            plan_read(&code, &[0, 1], ReadTarget::Full),
            Err(CodeError::NotEnoughShares {
                needed: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn sparse_read_costs_two_gamma() {
        let code: SecCode<Gf1024> = SecCode::cauchy(20, 10, GeneratorForm::NonSystematic).unwrap();
        let plan = plan_read(&code, &all_nodes(20), ReadTarget::Sparse { gamma: 3 }).unwrap();
        assert_eq!(plan.io_reads, 6);
        assert_eq!(plan.method, DecodeMethod::SparseRecovery);
        // γ ≥ k/2 degenerates to a full read.
        let plan = plan_read(&code, &all_nodes(20), ReadTarget::Sparse { gamma: 8 }).unwrap();
        assert_eq!(plan.io_reads, 10);
        assert_ne!(plan.method, DecodeMethod::SparseRecovery);
    }

    #[test]
    fn sparse_read_systematic_needs_parity_nodes() {
        let code: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
        // All nodes alive: the parity nodes 3,4 are used.
        let plan = plan_read(&code, &all_nodes(6), ReadTarget::Sparse { gamma: 1 }).unwrap();
        assert_eq!(plan.io_reads, 2);
        assert!(plan.nodes.iter().all(|&i| i >= 3));
        // Only identity nodes alive: no qualifying pair, falls back to k reads.
        let plan = plan_read(&code, &[0, 1, 2], ReadTarget::Sparse { gamma: 1 }).unwrap();
        assert_eq!(plan.io_reads, 3);
        assert_eq!(plan.method, DecodeMethod::SystematicDirect);
        // One parity node plus identity nodes: a mixed qualifying pair exists
        // (identity row i and parity row are independent in every column pair
        // only if the identity row's zero pattern cooperates) — verify the
        // planner returns *some* valid plan and its submatrix qualifies.
        let plan = plan_read(&code, &[0, 1, 2, 4], ReadTarget::Sparse { gamma: 1 }).unwrap();
        if plan.method == DecodeMethod::SparseRecovery {
            let sub = code.generator().select_rows(&plan.nodes).unwrap();
            assert!(sec_linalg::checks::all_columns_independent(&sub));
            assert_eq!(plan.io_reads, 2);
        } else {
            assert_eq!(plan.io_reads, 3);
        }
    }

    #[test]
    fn plan_and_decode_round_trips() {
        let code: SecCode<Gf1024> = SecCode::cauchy(10, 5, GeneratorForm::NonSystematic).unwrap();
        let mut z = vec![Gf1024::ZERO; 5];
        z[2] = Gf1024::from_u64(500);
        z[4] = Gf1024::from_u64(1);
        let c = code.encode(&z).unwrap();
        let live: Vec<usize> = vec![0, 2, 4, 6, 8, 9];
        let (plan, decoded) =
            plan_and_decode(&code, &c, &live, ReadTarget::Sparse { gamma: 2 }).unwrap();
        assert_eq!(plan.io_reads, 4);
        assert_eq!(decoded, z);
        let (plan, decoded) = plan_and_decode(&code, &c, &live, ReadTarget::Full).unwrap();
        assert_eq!(plan.io_reads, 5);
        assert_eq!(decoded, z);
    }

    #[test]
    fn invalid_live_index_is_rejected() {
        let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        assert!(matches!(
            plan_read(&code, &[0, 1, 7], ReadTarget::Full),
            Err(CodeError::ShareIndexOutOfRange { index: 7, n: 6 })
        ));
    }

    #[test]
    fn duplicate_live_indices_are_deduplicated() {
        let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        let plan = plan_read(&code, &[2, 2, 3, 3, 5, 5], ReadTarget::Full).unwrap();
        assert_eq!(plan.nodes, vec![2, 3, 5]);
    }
}
