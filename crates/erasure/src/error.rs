//! Error type shared by the erasure-coding layer.

use core::fmt;

/// Errors returned by code construction, encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The requested `(n, k)` pair is invalid (`k` must satisfy `0 < k < n`).
    InvalidParams {
        /// Requested code length.
        n: usize,
        /// Requested code dimension.
        k: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The field cannot accommodate the requested code (too few elements).
    FieldTooSmall {
        /// Requested code length.
        n: usize,
        /// Requested code dimension.
        k: usize,
        /// Field size.
        field_order: u64,
    },
    /// The data object passed to `encode` has the wrong number of symbols.
    DataLengthMismatch {
        /// Expected length (the code dimension `k`).
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// A share referenced a coded-symbol index outside `0..n`.
    ShareIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Code length `n`.
        n: usize,
    },
    /// The same coded-symbol index was supplied more than once.
    DuplicateShare {
        /// The duplicated index.
        index: usize,
    },
    /// Not enough shares were supplied for the requested decode.
    NotEnoughShares {
        /// Number of shares required.
        needed: usize,
        /// Number of shares supplied.
        available: usize,
    },
    /// The selected shares do not form a decodable set (singular submatrix).
    UndecodableShareSet,
    /// Sparse recovery failed: no vector of the requested sparsity is
    /// consistent with the supplied shares.
    SparseRecoveryFailed {
        /// The sparsity bound that was attempted.
        gamma: usize,
    },
    /// The requested sparsity level cannot be exploited by this code
    /// (e.g. `γ ≥ k/2`, or a systematic code with `γ > (n-k)/2`).
    SparsityNotExploitable {
        /// The requested sparsity level.
        gamma: usize,
        /// Code dimension.
        k: usize,
    },
    /// Shards passed to a bulk operation have inconsistent lengths.
    ShardSizeMismatch {
        /// Length of the first shard.
        expected: usize,
        /// Length of the offending shard.
        actual: usize,
    },
    /// Underlying matrix failure that should not occur for validated codes.
    Internal(String),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParams { n, k, reason } => {
                write!(f, "invalid code parameters (n={n}, k={k}): {reason}")
            }
            CodeError::FieldTooSmall { n, k, field_order } => write!(
                f,
                "field of order {field_order} is too small for an (n={n}, k={k}) Cauchy code"
            ),
            CodeError::DataLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data object has {actual} symbols but the code dimension is {expected}"
                )
            }
            CodeError::ShareIndexOutOfRange { index, n } => {
                write!(f, "share index {index} out of range for code length {n}")
            }
            CodeError::DuplicateShare { index } => {
                write!(f, "share index {index} supplied more than once")
            }
            CodeError::NotEnoughShares { needed, available } => {
                write!(
                    f,
                    "decode needs {needed} shares but only {available} were supplied"
                )
            }
            CodeError::UndecodableShareSet => {
                write!(f, "the supplied shares do not form an invertible decoding system")
            }
            CodeError::SparseRecoveryFailed { gamma } => {
                write!(
                    f,
                    "no {gamma}-sparse vector is consistent with the supplied shares"
                )
            }
            CodeError::SparsityNotExploitable { gamma, k } => {
                write!(
                    f,
                    "sparsity level {gamma} cannot be exploited by this code (k={k})"
                )
            }
            CodeError::ShardSizeMismatch { expected, actual } => {
                write!(f, "shard length mismatch: expected {expected}, got {actual}")
            }
            CodeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for CodeError {}

impl From<sec_linalg::MatrixError> for CodeError {
    fn from(err: sec_linalg::MatrixError) -> Self {
        CodeError::Internal(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CodeError, &str)> = vec![
            (
                CodeError::InvalidParams {
                    n: 3,
                    k: 5,
                    reason: "k must be less than n",
                },
                "k must be less than n",
            ),
            (
                CodeError::FieldTooSmall {
                    n: 300,
                    k: 100,
                    field_order: 256,
                },
                "256",
            ),
            (
                CodeError::DataLengthMismatch {
                    expected: 3,
                    actual: 7,
                },
                "dimension is 3",
            ),
            (CodeError::ShareIndexOutOfRange { index: 9, n: 6 }, "out of range"),
            (CodeError::DuplicateShare { index: 2 }, "more than once"),
            (
                CodeError::NotEnoughShares {
                    needed: 3,
                    available: 1,
                },
                "needs 3",
            ),
            (CodeError::UndecodableShareSet, "invertible"),
            (CodeError::SparseRecoveryFailed { gamma: 2 }, "2-sparse"),
            (
                CodeError::SparsityNotExploitable { gamma: 4, k: 6 },
                "cannot be exploited",
            ),
            (
                CodeError::ShardSizeMismatch {
                    expected: 8,
                    actual: 9,
                },
                "mismatch",
            ),
            (CodeError::Internal("boom".into()), "boom"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn matrix_error_converts() {
        let merr = sec_linalg::MatrixError::Singular;
        let cerr: CodeError = merr.into();
        assert!(matches!(cerr, CodeError::Internal(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodeError>();
    }
}
