//! Baseline redundancy schemes the paper compares against.
//!
//! * **Non-differential erasure coding** — encode every version in full with
//!   the same `(n, k)` code. This needs no extra type: it is simply
//!   [`SecCode`](crate::SecCode) used without deltas, and the versioning
//!   layer exposes it as a strategy. Its I/O cost per version is always `k`.
//! * **Replication** — store `r` verbatim copies of each object. Included
//!   because it is the classical alternative the introduction contrasts with
//!   erasure coding (better I/O, much worse storage overhead for the same
//!   fault tolerance).

use sec_gf::GaloisField;

use crate::error::CodeError;

/// `r`-way replication of a `k`-symbol object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicationCode {
    replicas: usize,
    object_len: usize,
}

impl ReplicationCode {
    /// Creates an `r`-way replication scheme for objects of `object_len`
    /// symbols.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] when `replicas == 0` or
    /// `object_len == 0`.
    pub fn new(replicas: usize, object_len: usize) -> Result<Self, CodeError> {
        if replicas == 0 {
            return Err(CodeError::InvalidParams {
                n: replicas,
                k: object_len,
                reason: "replication factor must be positive",
            });
        }
        if object_len == 0 {
            return Err(CodeError::InvalidParams {
                n: replicas,
                k: object_len,
                reason: "object length must be positive",
            });
        }
        Ok(Self { replicas, object_len })
    }

    /// Number of replicas stored.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Number of symbols per object.
    pub fn object_len(&self) -> usize {
        self.object_len
    }

    /// Storage overhead (always the replica count).
    pub fn overhead(&self) -> f64 {
        self.replicas as f64
    }

    /// Number of node failures the scheme tolerates (`r - 1`).
    pub fn fault_tolerance(&self) -> usize {
        self.replicas - 1
    }

    /// "Encodes" by producing `r` identical copies.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::DataLengthMismatch`] for a wrong object length.
    pub fn encode<F: GaloisField>(&self, data: &[F]) -> Result<Vec<Vec<F>>, CodeError> {
        if data.len() != self.object_len {
            return Err(CodeError::DataLengthMismatch {
                expected: self.object_len,
                actual: data.len(),
            });
        }
        Ok(vec![data.to_vec(); self.replicas])
    }

    /// Decodes from any surviving replica.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NotEnoughShares`] when every replica is lost.
    pub fn decode<F: GaloisField>(&self, replicas: &[Option<Vec<F>>]) -> Result<Vec<F>, CodeError> {
        replicas
            .iter()
            .flatten()
            .next()
            .cloned()
            .ok_or(CodeError::NotEnoughShares {
                needed: 1,
                available: 0,
            })
    }

    /// I/O reads needed to retrieve the object (one replica's worth of
    /// symbols — replication never reads redundant data).
    pub fn io_reads(&self) -> usize {
        self.object_len
    }

    /// Probability the object is lost when each replica fails independently
    /// with probability `p` (all replicas must fail).
    pub fn loss_probability(&self, p: f64) -> f64 {
        p.powi(self.replicas as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::{GaloisField, Gf256};

    fn obj(vals: &[u64]) -> Vec<Gf256> {
        vals.iter().map(|&v| Gf256::from_u64(v)).collect()
    }

    #[test]
    fn construction_validation() {
        assert!(ReplicationCode::new(3, 4).is_ok());
        assert!(matches!(
            ReplicationCode::new(0, 4),
            Err(CodeError::InvalidParams { .. })
        ));
        assert!(matches!(
            ReplicationCode::new(3, 0),
            Err(CodeError::InvalidParams { .. })
        ));
        let r = ReplicationCode::new(3, 4).unwrap();
        assert_eq!(r.replicas(), 3);
        assert_eq!(r.object_len(), 4);
        assert_eq!(r.overhead(), 3.0);
        assert_eq!(r.fault_tolerance(), 2);
        assert_eq!(r.io_reads(), 4);
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = ReplicationCode::new(3, 3).unwrap();
        let x = obj(&[1, 2, 3]);
        let copies = r.encode(&x).unwrap();
        assert_eq!(copies.len(), 3);
        assert!(copies.iter().all(|c| c == &x));
        // Any surviving replica decodes.
        let survivors = vec![None, Some(copies[1].clone()), None];
        assert_eq!(r.decode(&survivors).unwrap(), x);
        let none: Vec<Option<Vec<Gf256>>> = vec![None, None, None];
        assert!(matches!(r.decode(&none), Err(CodeError::NotEnoughShares { .. })));
        assert!(matches!(
            r.encode(&obj(&[1])),
            Err(CodeError::DataLengthMismatch { .. })
        ));
    }

    #[test]
    fn loss_probability_is_p_to_the_r() {
        let r = ReplicationCode::new(3, 5).unwrap();
        assert!((r.loss_probability(0.1) - 0.001).abs() < 1e-12);
        assert_eq!(r.loss_probability(0.0), 0.0);
        assert_eq!(r.loss_probability(1.0), 1.0);
    }

    #[test]
    fn replication_vs_mds_overhead_for_same_tolerance() {
        // To tolerate 3 failures, 4-way replication has overhead 4 while a
        // (6,3) MDS code has overhead 2 — the classical motivation for
        // erasure coding cited in the paper's introduction.
        let repl = ReplicationCode::new(4, 3).unwrap();
        let mds = crate::CodeParams::new(6, 3).unwrap();
        assert_eq!(repl.fault_tolerance(), 3);
        assert_eq!(mds.n - mds.k, 3);
        assert!(mds.overhead() < repl.overhead());
    }
}
