//! Differential property tests locking the byte-shard fast path to the
//! scalar `GaloisField` reference implementation.
//!
//! For random coefficients, shard sizes (including 0, 1, odd and
//! non-multiple-of-64 lengths) and erasure patterns, the `ByteCodec`
//! pipeline must produce *byte-identical* output to the generic per-symbol
//! path for all three stages: encode, full decode, and `2γ`-read sparse
//! recovery. Any divergence — a wrong table entry, a chunk-boundary bug, a
//! support-search ordering change — fails these tests (verified during
//! development by mutating the kernels).

use proptest::prelude::*;

use sec_erasure::{shards, ByteCodec, ByteShards, GeneratorForm, SecCode, Share};
use sec_gf::{bulk, GaloisField, Gf256};

const N: usize = 10;
const K: usize = 5;

fn code(form: GeneratorForm) -> SecCode<Gf256> {
    SecCode::cauchy(N, K, form).expect("(10,5) fits in GF(256)")
}

fn form_strategy() -> impl Strategy<Value = GeneratorForm> {
    prop_oneof![
        Just(GeneratorForm::Systematic),
        Just(GeneratorForm::NonSystematic),
    ]
}

/// Shard lengths biased toward the kernel's edge cases: empty, single-byte,
/// odd, exactly one chunk, and just past chunk boundaries.
fn shard_len_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(63usize),
        Just(64usize),
        Just(65usize),
        Just(129usize),
        2usize..200,
    ]
}

/// A deterministic pseudo-random byte object of `len` bytes.
fn object(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(i as u64 + 0x9E37).wrapping_add(i as u64) >> 11) as u8)
        .collect()
}

/// Lifts byte shards into the symbol-vector shape of the reference path.
fn to_symbol_rows(data: &ByteShards) -> Vec<Vec<Gf256>> {
    data.to_rows()
        .iter()
        .map(|row| bulk::bytes_to_symbols(row))
        .collect()
}

/// Flattens reference symbol rows back to bytes for comparison.
fn rows_to_bytes(rows: &[Vec<Gf256>]) -> Vec<Vec<u8>> {
    rows.iter().map(|row| bulk::symbols_to_bytes(row)).collect()
}

/// A block-sparse delta: at most `max_gamma` of the K shards are non-zero.
fn block_sparse(shard_len: usize, support: &[usize], seed: u64) -> ByteShards {
    let mut delta = ByteShards::zeroed(K, shard_len);
    for (pos, &s) in support.iter().enumerate() {
        let bytes = object(shard_len, seed.wrapping_add(pos as u64 * 7919));
        delta.shard_mut(s).copy_from_slice(&bytes);
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_blocks_matches_scalar_encode_shards(
        form in form_strategy(),
        shard_len in shard_len_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let code = code(form);
        let codec = ByteCodec::new(code.clone());
        let data = ByteShards::from_flat(&object(shard_len * K, seed), K);

        let fast = codec.encode_blocks(&data).unwrap();
        let reference = shards::encode_shards(&code, &to_symbol_rows(&data)).unwrap();

        prop_assert_eq!(fast.shard_count(), N);
        let reference_bytes = rows_to_bytes(&reference);
        for (i, ref_row) in reference_bytes.iter().enumerate() {
            prop_assert_eq!(fast.shard(i), ref_row.as_slice(), "row {}", i);
        }
    }

    #[test]
    fn decode_blocks_matches_scalar_decode_shards(
        form in form_strategy(),
        shard_len in shard_len_strategy(),
        survivors in prop::collection::btree_set(0usize..N, K..=N),
        seed in 0u64..u64::MAX,
    ) {
        let code = code(form);
        let codec = ByteCodec::new(code.clone());
        let original = object(shard_len * K, seed);
        let data = ByteShards::from_flat(&original, K);
        let coded = codec.encode_blocks(&data).unwrap();

        let byte_shares: Vec<(usize, &[u8])> =
            survivors.iter().map(|&i| (i, coded.shard(i))).collect();
        let fast = codec.decode_blocks(&byte_shares).unwrap();

        let ref_coded = shards::encode_shards(&code, &to_symbol_rows(&data)).unwrap();
        let ref_shares: Vec<(usize, Vec<Gf256>)> =
            survivors.iter().map(|&i| (i, ref_coded[i].clone())).collect();
        let reference = shards::decode_shards(&code, &ref_shares).unwrap();

        let reference_bytes = rows_to_bytes(&reference);
        for (i, ref_row) in reference_bytes.iter().enumerate() {
            prop_assert_eq!(fast.shard(i), ref_row.as_slice(), "data shard {}", i);
        }
        prop_assert_eq!(fast.join(original.len()), original);
    }

    #[test]
    fn recover_sparse_blocks_matches_scalar_sparse_decode(
        shard_len in shard_len_strategy(),
        support in prop::collection::btree_set(0usize..K, 0..=2),
        erased in prop::collection::btree_set(0usize..N, 0..=(N - 4)),
        seed in 0u64..u64::MAX,
    ) {
        // Non-systematic Cauchy: every 2γ-row submatrix satisfies Criterion 2,
        // so any 2γ live shards recover a γ-block-sparse delta.
        let gamma = 2usize;
        let code = code(GeneratorForm::NonSystematic);
        let codec = ByteCodec::new(code.clone());
        let support: Vec<usize> = support.into_iter().collect();
        let delta = block_sparse(shard_len, &support, seed);
        let coded = codec.encode_blocks(&delta).unwrap();

        // Erasure pattern: drop up to n - 2γ shards, read the first 2γ live.
        let live: Vec<usize> = (0..N).filter(|i| !erased.contains(i)).collect();
        let read: Vec<usize> = live.into_iter().take(2 * gamma).collect();
        prop_assert_eq!(read.len(), 2 * gamma);

        let byte_shares: Vec<(usize, &[u8])> = read.iter().map(|&i| (i, coded.shard(i))).collect();
        let fast = codec.recover_sparse_blocks(&byte_shares, gamma).unwrap();
        prop_assert_eq!(&fast, &delta);

        // Scalar reference: run the per-symbol sparse decoder at every byte
        // position and reassemble; the result must be byte-identical.
        for position in 0..shard_len {
            let shares: Vec<Share<Gf256>> = read
                .iter()
                .map(|&i| (i, Gf256::from_u64(u64::from(coded.shard(i)[position]))))
                .collect();
            let reference = code.decode_sparse(&shares, gamma).unwrap();
            for (shard_idx, symbol) in reference.iter().enumerate() {
                prop_assert_eq!(
                    u64::from(fast.shard(shard_idx)[position]),
                    symbol.to_u64(),
                    "shard {} position {}",
                    shard_idx,
                    position
                );
            }
        }
    }

    #[test]
    fn systematic_sparse_recovery_from_parity_rows_matches_scalar(
        shard_len in shard_len_strategy(),
        support in prop::collection::btree_set(0usize..K, 0..=2),
        seed in 0u64..u64::MAX,
    ) {
        // Systematic codes draw Criterion-2 submatrices from the parity
        // block; rows K..K+2γ always qualify.
        let gamma = 2usize;
        let code = code(GeneratorForm::Systematic);
        let codec = ByteCodec::new(code.clone());
        let support: Vec<usize> = support.into_iter().collect();
        let delta = block_sparse(shard_len, &support, seed);
        let coded = codec.encode_blocks(&delta).unwrap();

        let read: Vec<usize> = (K..K + 2 * gamma).collect();
        let byte_shares: Vec<(usize, &[u8])> = read.iter().map(|&i| (i, coded.shard(i))).collect();
        let fast = codec.recover_sparse_blocks(&byte_shares, gamma).unwrap();
        prop_assert_eq!(&fast, &delta);

        for position in 0..shard_len {
            let shares: Vec<Share<Gf256>> = read
                .iter()
                .map(|&i| (i, Gf256::from_u64(u64::from(coded.shard(i)[position]))))
                .collect();
            let reference = code.decode_sparse(&shares, gamma).unwrap();
            let fast_column: Vec<u64> =
                (0..K).map(|s| u64::from(fast.shard(s)[position])).collect();
            let ref_column: Vec<u64> = reference.iter().map(|v| v.to_u64()).collect();
            prop_assert_eq!(fast_column, ref_column, "position {}", position);
        }
    }
}
