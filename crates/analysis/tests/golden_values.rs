//! Golden-value regression tests pinning the paper-facing outputs of
//! `sec-analysis` — average I/O reads `μ_γ` (Figs. 4–5), static resilience
//! (eqs. 6–7, §IV-A) and the §IV-C failure-pattern census / Table I — so
//! refactors of the numeric layers (fields, kernels, linalg, read planning)
//! cannot silently drift away from the published values.
//!
//! Where a quantity has a closed form (non-systematic SEC, the
//! non-differential baseline, the binomial loss probabilities) the expected
//! value is hand-derived in this file, independent of the library code under
//! test. Systematic-SEC values, which depend on which `2γ`-row subsets
//! qualify, are pinned to 4-decimal literals cross-checked against an
//! independent enumeration for the `(6, 3)` code.

use sec_analysis::io::{average_io_exact, IoScheme};
use sec_analysis::patterns::census;
use sec_analysis::resilience::{
    prob_lose_full, prob_lose_sparse_exact, prob_lose_sparse_non_systematic,
};
use sec_analysis::tables::table1;
use sec_erasure::{CodeParams, GeneratorForm, SecCode};
use sec_gf::{Gf1024, Gf256};

const TOL: f64 = 1e-12;
/// Tolerance for values pinned as 4-decimal literals (half an ulp + margin).
const TOL4: f64 = 6e-5;

fn assert_close(actual: f64, expected: f64, tol: f64, what: &str) {
    assert!(
        (actual - expected).abs() <= tol,
        "{what}: got {actual}, expected {expected} (±{tol})"
    );
}

#[test]
fn fig4_average_io_for_6_3_code_gamma_1() {
    let sys: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
    let ns: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();

    for p in [0.01, 0.05, 0.10, 0.15, 0.20] {
        // Non-systematic Cauchy SEC: every 2-row subset qualifies, so μ_1 is
        // exactly 2 reads at any failure probability (Fig. 4, flat line).
        let r = average_io_exact(&ns, IoScheme::Sec(GeneratorForm::NonSystematic), 1, p);
        assert_close(r.average_reads, 2.0, TOL, &format!("non-systematic μ_1 at p={p}"));
        assert_close(
            r.prob_sparse_reads,
            1.0,
            TOL,
            &format!("non-systematic p_2γ at p={p}"),
        );

        // Non-differential baseline: always k = 3 reads.
        let r = average_io_exact(&ns, IoScheme::NonDifferential, 1, p);
        assert_close(r.average_reads, 3.0, TOL, &format!("non-differential at p={p}"));
    }

    // Systematic SEC (6,3): only the 3 parity pairs (of 15 two-row subsets)
    // qualify, so μ_1 = 2·P + 3·(1−P) where P is the conditional probability
    // that ≥ 2 of the 3 parity nodes are alive given ≥ 3 live nodes overall.
    // Independent enumeration over the 2^6 failure patterns:
    for p in [0.01, 0.10, 0.20] {
        let q: f64 = 1.0 - p;
        let mut prob_alive_enough = 0.0;
        let mut prob_sparse = 0.0;
        for mask in 0u32..64 {
            let alive = 6 - mask.count_ones() as usize;
            if alive < 3 {
                continue;
            }
            let weight = p.powi(mask.count_ones() as i32) * q.powi(alive as i32);
            prob_alive_enough += weight;
            // Parity nodes are positions 3, 4, 5 of the systematic codeword.
            let parity_alive = [3u32, 4, 5].iter().filter(|&&b| mask & (1 << b) == 0).count();
            if parity_alive >= 2 {
                prob_sparse += weight;
            }
        }
        let p2g = prob_sparse / prob_alive_enough;
        let expected = 2.0 * p2g + 3.0 * (1.0 - p2g);
        let r = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 1, p);
        assert_close(
            r.average_reads,
            expected,
            1e-9,
            &format!("systematic μ_1 at p={p}"),
        );
    }

    // Pin the published curve points (4-decimal rendering of Fig. 4).
    let sys_mu =
        |p: f64| average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 1, p).average_reads;
    assert_close(sys_mu(0.01), 2.0003, TOL4, "systematic μ_1 at p=0.01");
    assert_close(sys_mu(0.10), 2.0270, TOL4, "systematic μ_1 at p=0.10");
    assert_close(sys_mu(0.20), 2.0917, TOL4, "systematic μ_1 at p=0.20");
}

#[test]
fn fig5_average_io_for_10_5_code() {
    let sys: SecCode<Gf256> = SecCode::cauchy(10, 5, GeneratorForm::Systematic).unwrap();
    let ns: SecCode<Gf256> = SecCode::cauchy(10, 5, GeneratorForm::NonSystematic).unwrap();

    for gamma in [1usize, 2] {
        for p in [0.01, 0.10, 0.20] {
            let r = average_io_exact(&ns, IoScheme::Sec(GeneratorForm::NonSystematic), gamma, p);
            assert_close(
                r.average_reads,
                2.0 * gamma as f64,
                TOL,
                &format!("non-systematic μ_{gamma} at p={p}"),
            );
            let r = average_io_exact(&ns, IoScheme::NonDifferential, gamma, p);
            assert_close(r.average_reads, 5.0, TOL, &format!("non-differential at p={p}"));
        }
    }

    // Pinned systematic curve points (Fig. 5 shape: γ = 2 degrades faster
    // than γ = 1 because it needs 4 live parity-heavy rows).
    let sys_mu = |gamma: usize, p: f64| {
        average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), gamma, p).average_reads
    };
    assert_close(sys_mu(1, 0.10), 2.0013, TOL4, "systematic μ_1 at p=0.10");
    assert_close(sys_mu(1, 0.20), 2.0146, TOL4, "systematic μ_1 at p=0.20");
    assert_close(sys_mu(2, 0.01), 4.0010, TOL4, "systematic μ_2 at p=0.01");
    assert_close(sys_mu(2, 0.10), 4.0813, TOL4, "systematic μ_2 at p=0.10");
    assert_close(sys_mu(2, 0.20), 4.2581, TOL4, "systematic μ_2 at p=0.20");
}

#[test]
fn static_resilience_closed_forms() {
    // Eq. (6): losing a fully encoded (6,3) object at p = 0.1 requires ≥ 4
    // failures: p^6 + 6·p^5·q + 15·p^4·q^2 = 1e-6 + 5.4e-5 + 1.215e-3.
    assert_close(prob_lose_full(6, 3, 0.1), 1.27e-3, 1e-15, "eq. 6 at (6,3), p=0.1");

    // Eq. (7): a 1-sparse delta under non-systematic SEC survives with any
    // υ = 2 live nodes: loss = p^6 + 6·p^5·q = 5.5e-5.
    assert_close(
        prob_lose_sparse_non_systematic(6, 3, 1, 0.1),
        5.5e-5,
        1e-15,
        "eq. 7 at (6,3), γ=1, p=0.1",
    );

    // Exact systematic loss for (6,3), γ = 1: survivable with ≥ 3 live nodes
    // or with exactly the 3 qualifying parity pairs among the C(6,2) = 15
    // two-node patterns: loss = p^6 + 6·p^5·q + 12·p^4·q^2.
    let sys: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
    let p: f64 = 0.1;
    let q: f64 = 0.9;
    let expected = p.powi(6) + 6.0 * p.powi(5) * q + 12.0 * p.powi(4) * q.powi(2);
    assert_close(
        prob_lose_sparse_exact(&sys, 1, p),
        expected,
        1e-15,
        "exact systematic loss at (6,3), γ=1, p=0.1",
    );
    assert_close(expected, 1.027e-3, 1e-15, "hand-derived systematic loss value");

    // Sanity ordering of §IV-A: sparse deltas are strictly more resilient
    // than full objects, and non-systematic dominates systematic.
    let ns: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
    let full = prob_lose_full(6, 3, 0.1);
    let sparse_ns = prob_lose_sparse_exact(&ns, 1, 0.1);
    let sparse_sys = prob_lose_sparse_exact(&sys, 1, 0.1);
    assert!(sparse_ns < sparse_sys && sparse_sys < full);
    assert_close(sparse_ns, 5.5e-5, 1e-15, "exact non-systematic matches eq. 7");
}

#[test]
fn pattern_census_matches_section_iv_c() {
    // §IV-C, (6,3), γ = 1: 63 non-empty failure patterns, 41 recoverable by
    // the MDS property alone, 56 under non-systematic SEC, 44 under
    // systematic SEC.
    let ns: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
    let sys: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();
    let census_ns = census(&ns, 1);
    assert_eq!(census_ns.total_patterns, 63);
    assert_eq!(census_ns.mds_recoverable, 41);
    assert_eq!(census_ns.recoverable(), 56);
    let census_sys = census(&sys, 1);
    assert_eq!(census_sys.total_patterns, 63);
    assert_eq!(census_sys.recoverable(), 44);
}

#[test]
fn table1_io_reads_match_the_paper() {
    // Table I (§IV-C): (6,3) code, second version 1-sparse. Both SEC forms
    // retrieve z_2 with 2 reads; the non-differential scheme pays k = 3.
    let columns = table1(CodeParams::new(6, 3).unwrap(), 1);
    assert_eq!(columns.len(), 3);
    for column in &columns {
        assert_eq!(column.io_reads_v1, 3, "{:?}", column.scheme);
        assert_eq!(column.nodes, 6, "{:?}", column.scheme);
    }
    assert_eq!(columns[0].io_reads_v2, 2); // non-systematic SEC
    assert_eq!(columns[1].io_reads_v2, 2); // systematic SEC
    assert_eq!(columns[2].io_reads_v2, 3); // non-differential
}
