//! Expected I/O under a sparsity PMF (§V-B of the paper, Figs. 7–8).
//!
//! With two versions archived and the delta sparsity `Γ` random, the expected
//! number of reads to fetch both versions is `E[η] = k + E[min(2Γ, k)]`
//! (for SEC) versus `2k` (non-differential). Fig. 7 reports the percentage
//! *reduction* for the joint read; Fig. 8 the percentage *increase* paid to
//! read the second version alone, for the Basic and Optimized variants.

use sec_versioning::{EncodingStrategy, IoModel};
use sec_workload::SparsityPmf;

/// Expected number of reads to retrieve both versions `x_1, x_2` under SEC
/// when the delta sparsity follows `pmf`.
pub fn expected_joint_reads(model: &IoModel, pmf: &SparsityPmf) -> f64 {
    let k = model.full_object_reads() as f64;
    k + pmf.expect(|gamma| model.delta_reads(gamma) as f64)
}

/// Expected reads for the non-differential baseline (always `2k`).
pub fn expected_joint_reads_non_differential(model: &IoModel) -> f64 {
    2.0 * model.full_object_reads() as f64
}

/// Percentage reduction in I/O reads for fetching both versions, relative to
/// the non-differential baseline: `(2k − E[η]) / 2k × 100` (Fig. 7).
pub fn joint_read_reduction_percent(model: &IoModel, pmf: &SparsityPmf) -> f64 {
    let baseline = expected_joint_reads_non_differential(model);
    (baseline - expected_joint_reads(model, pmf)) / baseline * 100.0
}

/// Expected reads to retrieve the *second version alone* (Fig. 8).
///
/// * Basic SEC must reconstruct `x_1` first, so the cost equals the joint
///   cost `E[η(x_1, x_2)]`.
/// * Optimized SEC stores `x_2` in full whenever `γ ≥ k/2`; otherwise it
///   still needs `x_1` plus the delta: `t(γ) = k` if `γ ≥ k/2`, else `k + 2γ`.
pub fn expected_second_version_reads(
    model: &IoModel,
    strategy: EncodingStrategy,
    pmf: &SparsityPmf,
) -> f64 {
    let k = model.full_object_reads() as f64;
    match strategy {
        EncodingStrategy::NonDifferential => k,
        EncodingStrategy::BasicSec => expected_joint_reads(model, pmf),
        EncodingStrategy::OptimizedSec => pmf.expect(|gamma| {
            if model.optimized_stores_full(gamma) {
                k
            } else {
                k + model.delta_reads(gamma) as f64
            }
        }),
        EncodingStrategy::ReversedSec => {
            // With two versions, Reversed SEC stores {z_2, x_2}: the second
            // version is read directly with k reads.
            k
        }
    }
}

/// Percentage increase in I/O reads to fetch the second version alone,
/// relative to the non-differential baseline: `(E[η(x_2)] − k) / k × 100`
/// (Fig. 8).
pub fn second_version_increase_percent(
    model: &IoModel,
    strategy: EncodingStrategy,
    pmf: &SparsityPmf,
) -> f64 {
    let k = model.full_object_reads() as f64;
    (expected_second_version_reads(model, strategy, pmf) - k) / k * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_erasure::{CodeParams, GeneratorForm};

    fn model_6_3() -> IoModel {
        IoModel::new(CodeParams::new(6, 3).unwrap(), GeneratorForm::NonSystematic)
    }

    #[test]
    fn joint_reads_formula_for_known_pmf() {
        // Fixed γ = 1: E[η] = 3 + 2 = 5, reduction = (6-5)/6 = 16.7%.
        let model = model_6_3();
        let pmf = SparsityPmf::fixed(1, 3).unwrap();
        assert!((expected_joint_reads(&model, &pmf) - 5.0).abs() < 1e-12);
        assert!((joint_read_reduction_percent(&model, &pmf) - 100.0 / 6.0).abs() < 1e-9);
        // Fixed γ = 3 (not exploitable): no reduction.
        let dense = SparsityPmf::fixed(3, 3).unwrap();
        assert!((expected_joint_reads(&model, &dense) - 6.0).abs() < 1e-12);
        assert_eq!(joint_read_reduction_percent(&model, &dense), 0.0);
    }

    #[test]
    fn fig7_reduction_increases_with_alpha_decreases_with_lambda() {
        // Exponential PMFs: larger α concentrates on γ = 1 → larger savings.
        let model = model_6_3();
        let alphas = [0.1, 0.6, 1.1, 1.6];
        let mut prev = -1.0;
        for &alpha in &alphas {
            let pmf = SparsityPmf::truncated_exponential(alpha, 3).unwrap();
            let red = joint_read_reduction_percent(&model, &pmf);
            assert!(red > prev, "alpha={alpha}");
            assert!(red > 0.0 && red < 100.0 / 6.0 + 1e-9);
            prev = red;
        }
        // Paper reports reductions roughly in the 6–14% band for these alphas.
        let low =
            joint_read_reduction_percent(&model, &SparsityPmf::truncated_exponential(0.1, 3).unwrap());
        let high =
            joint_read_reduction_percent(&model, &SparsityPmf::truncated_exponential(1.6, 3).unwrap());
        assert!(low > 4.0 && low < 10.0, "low = {low}");
        assert!(high > 10.0 && high < 15.0, "high = {high}");

        // Poisson PMFs: larger λ pushes mass to γ = 3 → smaller savings.
        let lambdas = [3.0, 5.0, 7.0, 9.0];
        let mut prev = f64::INFINITY;
        for &lambda in &lambdas {
            let pmf = SparsityPmf::truncated_poisson(lambda, 3).unwrap();
            let red = joint_read_reduction_percent(&model, &pmf);
            assert!(red < prev, "lambda={lambda}");
            assert!(red > 0.0, "lambda={lambda}");
            prev = red;
        }
        // Paper reports reductions roughly in the 0.5–4.5% band for these lambdas.
        let best =
            joint_read_reduction_percent(&model, &SparsityPmf::truncated_poisson(3.0, 3).unwrap());
        assert!(best > 2.0 && best < 5.0, "best = {best}");
    }

    #[test]
    fn fig8_optimized_never_exceeds_basic() {
        let model = model_6_3();
        for &alpha in &[0.1, 0.6, 1.1, 1.6] {
            let pmf = SparsityPmf::truncated_exponential(alpha, 3).unwrap();
            let basic = second_version_increase_percent(&model, EncodingStrategy::BasicSec, &pmf);
            let optimized =
                second_version_increase_percent(&model, EncodingStrategy::OptimizedSec, &pmf);
            assert!(optimized <= basic + 1e-12, "alpha={alpha}");
            assert!(basic > 0.0);
            assert!(optimized >= 0.0);
        }
        for &lambda in &[3.0, 5.0, 7.0, 9.0] {
            let pmf = SparsityPmf::truncated_poisson(lambda, 3).unwrap();
            let basic = second_version_increase_percent(&model, EncodingStrategy::BasicSec, &pmf);
            let optimized =
                second_version_increase_percent(&model, EncodingStrategy::OptimizedSec, &pmf);
            assert!(optimized <= basic + 1e-12, "lambda={lambda}");
        }
    }

    #[test]
    fn fig8_limits_for_degenerate_pmfs() {
        let model = model_6_3();
        // Always-sparse deltas: basic pays (k+2-k)/k = 66.7%, optimized the same
        // (it stores the delta when exploitable).
        let sparse = SparsityPmf::fixed(1, 3).unwrap();
        let basic = second_version_increase_percent(&model, EncodingStrategy::BasicSec, &sparse);
        let opt = second_version_increase_percent(&model, EncodingStrategy::OptimizedSec, &sparse);
        assert!((basic - 200.0 / 3.0).abs() < 1e-9);
        assert!((opt - 200.0 / 3.0).abs() < 1e-9);
        // Always-dense deltas: basic pays 100% extra, optimized 0%.
        let dense = SparsityPmf::fixed(3, 3).unwrap();
        let basic = second_version_increase_percent(&model, EncodingStrategy::BasicSec, &dense);
        let opt = second_version_increase_percent(&model, EncodingStrategy::OptimizedSec, &dense);
        assert!((basic - 100.0).abs() < 1e-9);
        assert!(opt.abs() < 1e-9);
    }

    #[test]
    fn baseline_and_reversed_have_no_second_version_penalty() {
        let model = model_6_3();
        let pmf = SparsityPmf::uniform(3).unwrap();
        assert_eq!(
            second_version_increase_percent(&model, EncodingStrategy::NonDifferential, &pmf),
            0.0
        );
        assert_eq!(
            second_version_increase_percent(&model, EncodingStrategy::ReversedSec, &pmf),
            0.0
        );
    }
}
