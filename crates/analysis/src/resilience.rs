//! Static resilience: probability of losing individual stored objects under
//! i.i.d. node failures (§IV-A of the paper).

use sec_erasure::SecCode;
use sec_gf::GaloisField;
use sec_linalg::checks;
use sec_linalg::combinatorics::{binomial, Combinations};

/// Probability that a fully encoded object (needing any `k` of its `n` coded
/// symbols) is lost when each node fails independently with probability `p`
/// — eq. (6) of the paper:
///
/// `Prob(E_1) = Σ_{j=0}^{k-1} C(n, n-j) p^{n-j} (1-p)^j`.
pub fn prob_lose_full(n: usize, k: usize, p: f64) -> f64 {
    (0..k)
        .map(|alive| {
            binomial(n as u64, alive as u64) * p.powi((n - alive) as i32) * (1.0 - p).powi(alive as i32)
        })
        .sum()
}

/// Probability that a `γ`-sparse delta stored with **non-systematic** SEC is
/// lost — eq. (7): any `υ = min(2γ, k)` live nodes suffice, so loss requires
/// more than `n − υ` failures.
pub fn prob_lose_sparse_non_systematic(n: usize, k: usize, gamma: usize, p: f64) -> f64 {
    let upsilon = (2 * gamma).min(k);
    (0..upsilon)
        .map(|alive| {
            binomial(n as u64, alive as u64) * p.powi((n - alive) as i32) * (1.0 - p).powi(alive as i32)
        })
        .sum()
}

/// Lower bound of eq. (9) on the loss probability of a sparse delta under
/// **systematic** SEC (the true value depends on which `2γ`-subsets qualify;
/// use [`prob_lose_sparse_exact`] for the exact number).
pub fn prob_lose_sparse_systematic_lower_bound(n: usize, k: usize, gamma: usize, p: f64) -> f64 {
    prob_lose_sparse_non_systematic(n, k, gamma, p)
}

/// Exact probability that a `γ`-sparse delta is lost under the given concrete
/// code, computed by enumerating all `2^n` failure patterns.
///
/// A pattern is survivable when either at least `k` nodes are alive (full MDS
/// decode, sparsity ignored) or some `2γ`-subset of the live rows satisfies
/// Criterion 2 (sparse decode with `2γ` reads).
///
/// # Panics
///
/// Panics when `n > 24` (exhaustive enumeration guard).
pub fn prob_lose_sparse_exact<F: GaloisField>(code: &SecCode<F>, gamma: usize, p: f64) -> f64 {
    let n = code.n();
    assert!(n <= 24, "exhaustive resilience analysis is limited to n <= 24");
    let k = code.k();
    let reads = 2 * gamma;
    // Precompute which 2γ-subsets of rows qualify.
    let qualifying: Vec<Vec<usize>> = if reads < k && reads >= 1 {
        Combinations::new(n, reads)
            .filter(|rows| {
                let sub = code
                    .generator()
                    .select_rows(rows)
                    .expect("row indices generated in range");
                checks::all_columns_independent(&sub)
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut lost = 0.0;
    for mask in 0u64..(1 << n) {
        let alive_count = (n as u32 - mask.count_ones()) as usize;
        let survivable = if alive_count >= k {
            true
        } else if alive_count >= reads && reads >= 1 && reads < k {
            qualifying
                .iter()
                .any(|rows| rows.iter().all(|&r| mask & (1 << r) == 0))
        } else {
            false
        };
        if !survivable {
            lost += p.powi(mask.count_ones() as i32) * (1.0 - p).powi(alive_count as i32);
        }
    }
    lost
}

/// Exact probability that a fully encoded object is lost under the given
/// concrete MDS code (cross-check of eq. (6) by enumeration).
///
/// # Panics
///
/// Panics when `n > 24`.
pub fn prob_lose_full_exact<F: GaloisField>(code: &SecCode<F>, p: f64) -> f64 {
    let n = code.n();
    assert!(n <= 24, "exhaustive resilience analysis is limited to n <= 24");
    let k = code.k();
    let mut lost = 0.0;
    for mask in 0u64..(1 << n) {
        let alive_count = (n as u32 - mask.count_ones()) as usize;
        if alive_count < k {
            lost += p.powi(mask.count_ones() as i32) * (1.0 - p).powi(alive_count as i32);
        }
    }
    lost
}

/// The closed form of eq. (20): loss probability of the 1-sparse delta under
/// the paper's (6,3) **systematic** example,
/// `p^6 + C(6,5) p^5 (1-p) + 12 p^4 (1-p)^2`.
pub fn paper_eq20_systematic_loss(p: f64) -> f64 {
    p.powi(6) + 6.0 * p.powi(5) * (1.0 - p) + 12.0 * p.powi(4) * (1.0 - p).powi(2)
}

/// The closed form of eq. (18): loss probability of the 1-sparse delta under
/// the paper's (6,3) **non-systematic** example, `p^6 + C(6,5) p^5 (1-p)`.
pub fn paper_eq18_non_systematic_loss(p: f64) -> f64 {
    p.powi(6) + 6.0 * p.powi(5) * (1.0 - p)
}

/// The closed form of eqs. (17)/(19): loss probability of the fully encoded
/// first version of the (6,3) example,
/// `p^6 + C(6,5) p^5 (1-p) + C(6,4) p^4 (1-p)^2`.
pub fn paper_eq17_full_loss(p: f64) -> f64 {
    p.powi(6) + 6.0 * p.powi(5) * (1.0 - p) + 15.0 * p.powi(4) * (1.0 - p).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_erasure::GeneratorForm;
    use sec_gf::Gf1024;

    const PS: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.15, 0.2];

    fn code(form: GeneratorForm) -> SecCode<Gf1024> {
        SecCode::cauchy(6, 3, form).unwrap()
    }

    #[test]
    fn closed_form_full_loss_matches_enumeration() {
        let c = code(GeneratorForm::NonSystematic);
        for &p in &PS {
            let closed = prob_lose_full(6, 3, p);
            let exact = prob_lose_full_exact(&c, p);
            assert!((closed - exact).abs() < 1e-12, "p={p}");
            assert!((closed - paper_eq17_full_loss(p)).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn non_systematic_sparse_loss_matches_eq18() {
        let c = code(GeneratorForm::NonSystematic);
        for &p in &PS {
            let closed = prob_lose_sparse_non_systematic(6, 3, 1, p);
            let exact = prob_lose_sparse_exact(&c, 1, p);
            assert!((closed - exact).abs() < 1e-12, "p={p}");
            assert!(
                (closed - paper_eq18_non_systematic_loss(p)).abs() < 1e-12,
                "p={p}"
            );
        }
    }

    #[test]
    fn systematic_sparse_loss_matches_eq20() {
        let c = code(GeneratorForm::Systematic);
        for &p in &PS {
            let exact = prob_lose_sparse_exact(&c, 1, p);
            assert!(
                (exact - paper_eq20_systematic_loss(p)).abs() < 1e-12,
                "p={p}: exact={exact} paper={}",
                paper_eq20_systematic_loss(p)
            );
        }
    }

    #[test]
    fn paper_inequalities_hold() {
        // Eq. (10): ProbS(E_l) ≥ ProbN(E_l), and both are below the full-object
        // loss probability (sparse deltas are more resilient).
        let sys = code(GeneratorForm::Systematic);
        let ns = code(GeneratorForm::NonSystematic);
        for &p in &PS[1..] {
            let full = prob_lose_full(6, 3, p);
            let s = prob_lose_sparse_exact(&sys, 1, p);
            let n = prob_lose_sparse_exact(&ns, 1, p);
            assert!(s >= n - 1e-15, "p={p}");
            assert!(n < full, "p={p}");
            assert!(s < full, "p={p}");
        }
    }

    #[test]
    fn sparse_loss_reduces_to_full_loss_when_not_exploitable() {
        // γ with 2γ ≥ k: υ = k and the formulas coincide with eq. (6).
        for &p in &PS {
            assert!(
                (prob_lose_sparse_non_systematic(6, 3, 2, p) - prob_lose_full(6, 3, p)).abs() < 1e-12
            );
        }
        let sys = code(GeneratorForm::Systematic);
        for &p in &PS {
            assert!((prob_lose_sparse_exact(&sys, 2, p) - prob_lose_full(6, 3, p)).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_are_monotone_in_p_and_bounded() {
        let mut prev = 0.0;
        for &p in &PS {
            let v = prob_lose_full(20, 10, p);
            assert!((0.0..=1.0).contains(&v));
            assert!(v >= prev);
            prev = v;
        }
        assert_eq!(prob_lose_full(6, 3, 0.0), 0.0);
        assert!((prob_lose_full(6, 3, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_is_a_lower_bound() {
        let sys = code(GeneratorForm::Systematic);
        for &p in &PS[1..] {
            let bound = prob_lose_sparse_systematic_lower_bound(6, 3, 1, p);
            let exact = prob_lose_sparse_exact(&sys, 1, p);
            assert!(exact >= bound - 1e-15, "p={p}");
        }
    }

    #[test]
    fn larger_code_10_5_exact_vs_closed_form() {
        let ns: SecCode<Gf1024> = SecCode::cauchy(10, 5, GeneratorForm::NonSystematic).unwrap();
        for gamma in 1..=2usize {
            for &p in &[0.05, 0.15] {
                let exact = prob_lose_sparse_exact(&ns, gamma, p);
                let closed = prob_lose_sparse_non_systematic(10, 5, gamma, p);
                assert!((exact - closed).abs() < 1e-12, "gamma={gamma} p={p}");
            }
        }
    }
}
