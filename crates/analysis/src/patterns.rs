//! Exhaustive failure-pattern census (§IV-C of the paper).
//!
//! For the (6,3) example with a 1-sparse delta the paper counts, among the 63
//! patterns with at least one failed node:
//!
//! * 41 patterns recoverable through the plain MDS property (≥ k live nodes);
//! * 15 additional patterns (exactly `2γ = 2` live nodes) recoverable by
//!   non-systematic SEC — total 56;
//! * only 3 additional patterns recoverable by systematic SEC — total 44.

use sec_erasure::SecCode;
use sec_gf::GaloisField;
use sec_linalg::checks;
use sec_linalg::combinatorics::Combinations;

/// Census of failure patterns for one code and sparsity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternCensus {
    /// Code length `n`.
    pub n: usize,
    /// Code dimension `k`.
    pub k: usize,
    /// Sparsity level analysed.
    pub gamma: usize,
    /// Number of failure patterns considered (patterns with ≥ 1 failed node).
    pub total_patterns: u64,
    /// Patterns recoverable via the MDS property alone (≥ k live nodes).
    pub mds_recoverable: u64,
    /// Additional patterns recoverable only through sparse recovery
    /// (fewer than `k` live nodes but a qualifying `2γ`-subset alive).
    pub sparse_only_recoverable: u64,
}

impl PatternCensus {
    /// Total number of recoverable patterns.
    pub fn recoverable(&self) -> u64 {
        self.mds_recoverable + self.sparse_only_recoverable
    }

    /// Number of unrecoverable patterns.
    pub fn unrecoverable(&self) -> u64 {
        self.total_patterns - self.recoverable()
    }
}

/// Runs the census for a concrete code and sparsity level by enumerating all
/// `2^n − 1` failure patterns (the all-alive pattern is excluded, matching the
/// paper's count of 63 for `n = 6`).
///
/// # Panics
///
/// Panics when `n > 24`.
pub fn census<F: GaloisField>(code: &SecCode<F>, gamma: usize) -> PatternCensus {
    let n = code.n();
    assert!(n <= 24, "exhaustive pattern census is limited to n <= 24");
    let k = code.k();
    let reads = 2 * gamma;
    let qualifying: Vec<Vec<usize>> = if reads >= 1 && reads < k {
        Combinations::new(n, reads)
            .filter(|rows| {
                let sub = code
                    .generator()
                    .select_rows(rows)
                    .expect("row indices generated in range");
                checks::all_columns_independent(&sub)
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut mds_recoverable = 0u64;
    let mut sparse_only = 0u64;
    let total = (1u64 << n) - 1;
    for mask in 1u64..=total {
        let alive = n - mask.count_ones() as usize;
        if alive >= k {
            mds_recoverable += 1;
        } else if alive >= reads
            && reads >= 1
            && reads < k
            && qualifying
                .iter()
                .any(|rows| rows.iter().all(|&r| mask & (1 << r) == 0))
        {
            sparse_only += 1;
        }
    }

    PatternCensus {
        n,
        k,
        gamma,
        total_patterns: total,
        mds_recoverable,
        sparse_only_recoverable: sparse_only,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_erasure::GeneratorForm;
    use sec_gf::Gf1024;

    #[test]
    fn paper_section_iv_c_counts() {
        let ns: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        let sys: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap();

        let census_ns = census(&ns, 1);
        assert_eq!(census_ns.total_patterns, 63);
        assert_eq!(census_ns.mds_recoverable, 41);
        assert_eq!(census_ns.sparse_only_recoverable, 15);
        assert_eq!(census_ns.recoverable(), 56);
        assert_eq!(census_ns.unrecoverable(), 7);

        let census_sys = census(&sys, 1);
        assert_eq!(census_sys.total_patterns, 63);
        assert_eq!(census_sys.mds_recoverable, 41);
        assert_eq!(census_sys.sparse_only_recoverable, 3);
        assert_eq!(census_sys.recoverable(), 44);
    }

    #[test]
    fn unexploitable_sparsity_reduces_to_mds_only() {
        let ns: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap();
        let c = census(&ns, 2); // 2γ = 4 ≥ k = 3
        assert_eq!(c.sparse_only_recoverable, 0);
        assert_eq!(c.recoverable(), c.mds_recoverable);
    }

    #[test]
    fn larger_code_census_is_consistent() {
        let ns: SecCode<Gf1024> = SecCode::cauchy(10, 5, GeneratorForm::NonSystematic).unwrap();
        let c1 = census(&ns, 1);
        let c2 = census(&ns, 2);
        assert_eq!(c1.total_patterns, 1023);
        // MDS-recoverable counts do not depend on gamma.
        assert_eq!(c1.mds_recoverable, c2.mds_recoverable);
        // Smaller gamma (fewer reads needed) tolerates more failures.
        assert!(c1.sparse_only_recoverable > c2.sparse_only_recoverable);
        // For a superregular generator, every pattern with ≥ 2γ live nodes is
        // sparse-recoverable: counts match the binomial census.
        let expected_sparse_only: u64 = (2..5)
            .map(|alive| sec_linalg::combinatorics::binomial_exact(10, alive) as u64)
            .sum();
        assert_eq!(c1.sparse_only_recoverable, expected_sparse_only);
    }

    #[test]
    fn systematic_never_beats_non_systematic() {
        let ns: SecCode<Gf1024> = SecCode::cauchy(10, 5, GeneratorForm::NonSystematic).unwrap();
        let sys: SecCode<Gf1024> = SecCode::cauchy(10, 5, GeneratorForm::Systematic).unwrap();
        for gamma in 1..=2usize {
            let a = census(&ns, gamma);
            let b = census(&sys, gamma);
            assert!(a.recoverable() >= b.recoverable(), "gamma={gamma}");
            assert_eq!(a.mds_recoverable, b.mds_recoverable);
        }
    }
}
