//! Static resilience and I/O analysis for SEC — the machinery behind every
//! table and figure of the paper's evaluation.
//!
//! * [`resilience`] — closed-form loss probabilities for fully encoded objects
//!   and sparse deltas (eqs. 6–9, 17–20), plus *exact* loss probabilities
//!   computed by exhaustive failure-pattern enumeration against a concrete
//!   generator matrix (used for the systematic SEC, whose qualifying subsets
//!   are structural rather than count-based).
//! * [`availability`] — archive-level availability under dispersed and
//!   colocated placement (eqs. 11–15) and the "nines" transform of Fig. 3.
//! * [`patterns`] — the §IV-C failure-pattern census (63 patterns, 41
//!   MDS-recoverable, 56 vs 44 for non-systematic vs systematic SEC).
//! * [`io`] — average I/O reads `μ_γ` to retrieve a sparse delta under node
//!   failures (eq. 21, Figs. 4–5), both exact and Monte-Carlo.
//! * [`expected_io`] — expected I/O and percentage savings under sparsity
//!   PMFs (Figs. 7–8).
//! * [`tables`] — the qualitative scheme comparison of Table I.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod availability;
pub mod expected_io;
pub mod io;
pub mod patterns;
pub mod resilience;
pub mod tables;
