//! The qualitative scheme comparison of Table I (differential vs
//! non-differential erasure coding, for the §IV-C example).

use sec_erasure::{CodeParams, GeneratorForm};
use sec_versioning::{EncodingStrategy, IoModel};

use crate::availability::Scheme;

/// One column of Table I: how a scheme handles the first and second version
/// of the §IV-C example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeColumn {
    /// Which scheme the column describes.
    pub scheme: Scheme,
    /// Human-readable encoding description for version 1.
    pub encoding_v1: String,
    /// Encoding complexity note for version 1.
    pub encoding_complexity_v1: String,
    /// Decoding complexity note for version 1.
    pub decoding_complexity_v1: String,
    /// Number of storage nodes used per version.
    pub nodes: usize,
    /// I/O reads to retrieve version 1.
    pub io_reads_v1: usize,
    /// Human-readable encoding description for version 2.
    pub encoding_v2: String,
    /// Decoding complexity note for version 2.
    pub decoding_complexity_v2: String,
    /// I/O reads to retrieve the object stored for version 2.
    pub io_reads_v2: usize,
}

/// Builds Table I for an `(n, k)` code and a second-version delta of sparsity
/// `gamma` (the paper uses `(6, 3)` and `γ = 1`).
pub fn table1(params: CodeParams, gamma: usize) -> Vec<SchemeColumn> {
    let k = params.k;
    let non_sys = IoModel::new(params, GeneratorForm::NonSystematic);
    let sys = IoModel::new(params, GeneratorForm::Systematic);
    vec![
        SchemeColumn {
            scheme: Scheme::NonSystematicSec,
            encoding_v1: "c1 = G_N x1".to_string(),
            encoding_complexity_v1: "matrix multiplication".to_string(),
            decoding_complexity_v1: "inverse operation".to_string(),
            nodes: params.n,
            io_reads_v1: k,
            encoding_v2: "c2 = G_N z2".to_string(),
            decoding_complexity_v2: "sparse reconstruction".to_string(),
            io_reads_v2: non_sys.delta_reads(gamma),
        },
        SchemeColumn {
            scheme: Scheme::SystematicSec,
            encoding_v1: "c1 = G_S x1".to_string(),
            encoding_complexity_v1: "matrix multiplication for parity only".to_string(),
            decoding_complexity_v1: "low".to_string(),
            nodes: params.n,
            io_reads_v1: k,
            encoding_v2: "c2 = G_S z2".to_string(),
            decoding_complexity_v2: "sparse reconstruction".to_string(),
            io_reads_v2: sys.delta_reads(gamma),
        },
        SchemeColumn {
            scheme: Scheme::NonDifferential,
            encoding_v1: "c1 = G_S x1".to_string(),
            encoding_complexity_v1: "matrix multiplication for parity only".to_string(),
            decoding_complexity_v1: "low".to_string(),
            nodes: params.n,
            io_reads_v1: k,
            encoding_v2: "c2 = G_S x2".to_string(),
            decoding_complexity_v2: "low".to_string(),
            io_reads_v2: sys.version_reads(EncodingStrategy::NonDifferential, &[gamma], 2),
        },
    ]
}

/// Renders Table I as aligned text rows (used by the experiment binary).
pub fn render_table1(columns: &[SchemeColumn]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:<24} {:<24} {:<24}\n",
        "Parameter", columns[0].scheme, columns[1].scheme, columns[2].scheme
    ));
    let row = |label: &str, values: [String; 3]| {
        format!(
            "{:<28} {:<24} {:<24} {:<24}\n",
            label, values[0], values[1], values[2]
        )
    };
    out.push_str(&row(
        "1st: encoding",
        [
            columns[0].encoding_v1.clone(),
            columns[1].encoding_v1.clone(),
            columns[2].encoding_v1.clone(),
        ],
    ));
    out.push_str(&row(
        "1st: encoding complexity",
        [
            columns[0].encoding_complexity_v1.clone(),
            columns[1].encoding_complexity_v1.clone(),
            columns[2].encoding_complexity_v1.clone(),
        ],
    ));
    out.push_str(&row(
        "1st: nr. of nodes",
        [
            columns[0].nodes.to_string(),
            columns[1].nodes.to_string(),
            columns[2].nodes.to_string(),
        ],
    ));
    out.push_str(&row(
        "1st: decoding complexity",
        [
            columns[0].decoding_complexity_v1.clone(),
            columns[1].decoding_complexity_v1.clone(),
            columns[2].decoding_complexity_v1.clone(),
        ],
    ));
    out.push_str(&row(
        "1st: I/O reads",
        [
            columns[0].io_reads_v1.to_string(),
            columns[1].io_reads_v1.to_string(),
            columns[2].io_reads_v1.to_string(),
        ],
    ));
    out.push_str(&row(
        "2nd: encoding",
        [
            columns[0].encoding_v2.clone(),
            columns[1].encoding_v2.clone(),
            columns[2].encoding_v2.clone(),
        ],
    ));
    out.push_str(&row(
        "2nd: decoding complexity",
        [
            columns[0].decoding_complexity_v2.clone(),
            columns[1].decoding_complexity_v2.clone(),
            columns[2].decoding_complexity_v2.clone(),
        ],
    ));
    out.push_str(&row(
        "2nd: I/O reads",
        [
            columns[0].io_reads_v2.to_string(),
            columns[1].io_reads_v2.to_string(),
            columns[2].io_reads_v2.to_string(),
        ],
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_numbers() {
        let columns = table1(CodeParams::new(6, 3).unwrap(), 1);
        assert_eq!(columns.len(), 3);
        // All schemes: 6 nodes, 3 reads for the first version.
        for c in &columns {
            assert_eq!(c.nodes, 6);
            assert_eq!(c.io_reads_v1, 3);
        }
        // Second version: 2 reads for both SEC variants, 3 for the baseline.
        assert_eq!(columns[0].io_reads_v2, 2);
        assert_eq!(columns[1].io_reads_v2, 2);
        assert_eq!(columns[2].io_reads_v2, 3);
        assert!(columns[0].decoding_complexity_v2.contains("sparse"));
        assert!(columns[2].decoding_complexity_v2.contains("low"));
    }

    #[test]
    fn rendering_contains_all_rows_and_schemes() {
        let columns = table1(CodeParams::new(6, 3).unwrap(), 1);
        let text = render_table1(&columns);
        for needle in [
            "non-systematic SEC",
            "systematic SEC",
            "non-differential",
            "1st: I/O reads",
            "2nd: I/O reads",
            "sparse reconstruction",
            "G_N z2",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert_eq!(text.lines().count(), 9);
    }
}
