//! Average I/O reads `μ_γ` to retrieve a sparse delta under node failures
//! (eq. 21 of the paper, Figs. 4–5).
//!
//! Conditioned on at least `k` nodes being alive (otherwise nothing is
//! retrievable and repair kicks in), a `γ`-sparse delta costs:
//!
//! * `2γ` reads when some qualifying `2γ`-subset of the live nodes exists —
//!   always the case for non-systematic Cauchy SEC, only sometimes for
//!   systematic SEC;
//! * `k` reads otherwise;
//! * the non-differential baseline always pays `k` reads.
//!
//! `μ_γ = p_{2γ}·2γ + p_k·k` where the probabilities are conditional on
//! having `k` or more live nodes. Both an exact (exhaustive over `2^n`
//! patterns) and a Monte-Carlo estimator are provided.

use rand::Rng;
use sec_erasure::{GeneratorForm, SecCode};
use sec_gf::GaloisField;
use sec_linalg::checks;
use sec_linalg::combinatorics::Combinations;

/// Which retrieval scheme the average is computed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoScheme {
    /// SEC with the given generator form.
    Sec(GeneratorForm),
    /// Non-differential baseline: always `k` reads.
    NonDifferential,
}

/// Result of an average-I/O computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AverageIo {
    /// The failure probability `p`.
    pub p: f64,
    /// The sparsity level `γ`.
    pub gamma: usize,
    /// Conditional probability that `2γ` reads suffice.
    pub prob_sparse_reads: f64,
    /// Conditional probability that `k` reads are needed.
    pub prob_full_reads: f64,
    /// The average number of reads `μ_γ`.
    pub average_reads: f64,
}

/// Precomputed qualifying `2γ`-row subsets of a generator.
fn qualifying_subsets<F: GaloisField>(code: &SecCode<F>, gamma: usize) -> Vec<Vec<usize>> {
    let reads = 2 * gamma;
    if reads == 0 || reads >= code.k() {
        return Vec::new();
    }
    Combinations::new(code.n(), reads)
        .filter(|rows| {
            let sub = code
                .generator()
                .select_rows(rows)
                .expect("row indices generated in range");
            checks::all_columns_independent(&sub)
        })
        .collect()
}

/// Exact `μ_γ` by enumerating all `2^n` failure patterns.
///
/// # Panics
///
/// Panics when `n > 24`.
pub fn average_io_exact<F: GaloisField>(
    code: &SecCode<F>,
    scheme: IoScheme,
    gamma: usize,
    p: f64,
) -> AverageIo {
    let n = code.n();
    assert!(n <= 24, "exact average-I/O analysis is limited to n <= 24");
    let k = code.k();
    let reads = 2 * gamma;
    let qualifying = match scheme {
        IoScheme::Sec(_) => qualifying_subsets(code, gamma),
        IoScheme::NonDifferential => Vec::new(),
    };

    let mut prob_alive_enough = 0.0; // P(at least k live)
    let mut prob_sparse = 0.0; // P(at least k live AND 2γ reads suffice)
    for mask in 0u64..(1 << n) {
        let alive = n - mask.count_ones() as usize;
        if alive < k {
            continue;
        }
        let weight = p.powi(mask.count_ones() as i32) * (1.0 - p).powi(alive as i32);
        prob_alive_enough += weight;
        let sparse_ok = match scheme {
            IoScheme::NonDifferential => false,
            IoScheme::Sec(_) => {
                reads >= 1
                    && reads < k
                    && qualifying
                        .iter()
                        .any(|rows| rows.iter().all(|&r| mask & (1 << r) == 0))
            }
        };
        if sparse_ok {
            prob_sparse += weight;
        }
    }

    let (p2g, pk) = if prob_alive_enough > 0.0 {
        let p2g = prob_sparse / prob_alive_enough;
        (p2g, 1.0 - p2g)
    } else {
        (0.0, 1.0)
    };
    AverageIo {
        p,
        gamma,
        prob_sparse_reads: p2g,
        prob_full_reads: pk,
        average_reads: p2g * reads as f64 + pk * k as f64,
    }
}

/// Monte-Carlo estimate of `μ_γ` (eq. 21) from `trials` random failure
/// patterns — the procedure the paper describes for its Figs. 4–5.
pub fn average_io_monte_carlo<F: GaloisField, R: Rng + ?Sized>(
    code: &SecCode<F>,
    scheme: IoScheme,
    gamma: usize,
    p: f64,
    trials: usize,
    rng: &mut R,
) -> AverageIo {
    let n = code.n();
    let k = code.k();
    let reads = 2 * gamma;
    let qualifying = match scheme {
        IoScheme::Sec(_) => qualifying_subsets(code, gamma),
        IoScheme::NonDifferential => Vec::new(),
    };

    let mut usable = 0usize;
    let mut sparse_ok_count = 0usize;
    for _ in 0..trials {
        let mut alive_mask = 0u64;
        let mut alive = 0usize;
        for node in 0..n {
            if rng.gen::<f64>() >= p {
                alive_mask |= 1 << node;
                alive += 1;
            }
        }
        if alive < k {
            continue;
        }
        usable += 1;
        let sparse_ok = match scheme {
            IoScheme::NonDifferential => false,
            IoScheme::Sec(_) => {
                reads >= 1
                    && reads < k
                    && qualifying
                        .iter()
                        .any(|rows| rows.iter().all(|&r| alive_mask & (1 << r) != 0))
            }
        };
        if sparse_ok {
            sparse_ok_count += 1;
        }
    }

    let (p2g, pk) = if usable > 0 {
        let p2g = sparse_ok_count as f64 / usable as f64;
        (p2g, 1.0 - p2g)
    } else {
        (0.0, 1.0)
    };
    AverageIo {
        p,
        gamma,
        prob_sparse_reads: p2g,
        prob_full_reads: pk,
        average_reads: p2g * reads as f64 + pk * k as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sec_gf::Gf1024;

    fn codes_6_3() -> (SecCode<Gf1024>, SecCode<Gf1024>) {
        (
            SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap(),
            SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap(),
        )
    }

    #[test]
    fn non_systematic_always_reads_two_gamma() {
        // Fig. 4: the non-systematic curve is flat at 2 reads.
        let (ns, _) = codes_6_3();
        for &p in &[0.01, 0.1, 0.2] {
            let avg = average_io_exact(&ns, IoScheme::Sec(GeneratorForm::NonSystematic), 1, p);
            assert!((avg.average_reads - 2.0).abs() < 1e-12, "p={p}");
            assert!((avg.prob_sparse_reads - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn non_differential_always_reads_k() {
        let (ns, _) = codes_6_3();
        for &p in &[0.01, 0.1, 0.2] {
            let avg = average_io_exact(&ns, IoScheme::NonDifferential, 1, p);
            assert!((avg.average_reads - 3.0).abs() < 1e-12);
            assert_eq!(avg.prob_sparse_reads, 0.0);
        }
    }

    #[test]
    fn systematic_average_grows_with_p_and_stays_between_bounds() {
        // Fig. 4: the systematic curve starts at 2 for small p and rises
        // towards k as failures make the parity pair unavailable.
        let (_, sys) = codes_6_3();
        let mut prev = 0.0;
        for &p in &[0.01, 0.05, 0.1, 0.15, 0.2] {
            let avg = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 1, p);
            assert!(avg.average_reads >= 2.0 - 1e-12);
            assert!(avg.average_reads <= 3.0 + 1e-12);
            assert!(avg.average_reads >= prev - 1e-12, "p={p}");
            prev = avg.average_reads;
            assert!((avg.prob_sparse_reads + avg.prob_full_reads - 1.0).abs() < 1e-12);
        }
        // At p = 0.01 the systematic scheme is still essentially at 2 reads.
        let small = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 1, 0.01);
        assert!(small.average_reads < 2.01);
    }

    #[test]
    fn systematic_closed_form_mu1_for_6_3() {
        // Paper §V-A: µ1 = 2·p2 + 3·p3 where p3 is the conditional probability
        // that no qualifying pair survives. For the (6,3) systematic code the
        // qualifying pairs are the three parity pairs; conditioning on ≥ 3
        // live nodes, the only patterns without a live parity pair are those
        // with at most one parity node alive.
        let (_, sys) = codes_6_3();
        for &p in &[0.05f64, 0.1, 0.2] {
            let avg = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 1, p);
            // Direct enumeration of the closed form for cross-checking.
            let mut cond_num = 0.0;
            let mut cond_den = 0.0;
            for mask in 0u64..64 {
                let alive = 6 - mask.count_ones() as usize;
                if alive < 3 {
                    continue;
                }
                let w = p.powi(mask.count_ones() as i32) * (1.0 - p).powi(alive as i32);
                cond_den += w;
                let parity_alive = (3..6).filter(|&i| mask & (1 << i) == 0).count();
                if parity_alive >= 2 {
                    cond_num += w;
                }
            }
            let p2 = cond_num / cond_den;
            let expected = 2.0 * p2 + 3.0 * (1.0 - p2);
            assert!((avg.average_reads - expected).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn fig5_parameters_10_5_gamma_1_and_2() {
        let ns: SecCode<Gf1024> = SecCode::cauchy(10, 5, GeneratorForm::NonSystematic).unwrap();
        let sys: SecCode<Gf1024> = SecCode::cauchy(10, 5, GeneratorForm::Systematic).unwrap();
        for gamma in 1..=2usize {
            for &p in &[0.05, 0.2] {
                let a_ns = average_io_exact(&ns, IoScheme::Sec(GeneratorForm::NonSystematic), gamma, p);
                let a_sys = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), gamma, p);
                let a_nd = average_io_exact(&ns, IoScheme::NonDifferential, gamma, p);
                // Ordering of the three curves in Fig. 5.
                assert!(
                    a_ns.average_reads <= a_sys.average_reads + 1e-12,
                    "gamma={gamma} p={p}"
                );
                assert!(
                    a_sys.average_reads <= a_nd.average_reads + 1e-12,
                    "gamma={gamma} p={p}"
                );
                assert!((a_ns.average_reads - (2 * gamma) as f64).abs() < 1e-12);
                assert!((a_nd.average_reads - 5.0).abs() < 1e-12);
            }
        }
        // γ = 2 is harder for the systematic code than γ = 1 at the same p.
        let g1 = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 1, 0.2);
        let g2 = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 2, 0.2);
        assert!(g2.prob_full_reads >= g1.prob_full_reads);
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let (_, sys) = codes_6_3();
        let mut rng = StdRng::seed_from_u64(99);
        for &p in &[0.1, 0.2] {
            let exact = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 1, p);
            let mc = average_io_monte_carlo(
                &sys,
                IoScheme::Sec(GeneratorForm::Systematic),
                1,
                p,
                60_000,
                &mut rng,
            );
            assert!(
                (exact.average_reads - mc.average_reads).abs() < 0.02,
                "p={p}: exact={} mc={}",
                exact.average_reads,
                mc.average_reads
            );
        }
    }
}
