//! Archive-level availability under dispersed and colocated placement
//! (eqs. 11–15 of the paper) and the "nines" transform used by Fig. 3.

use sec_erasure::{GeneratorForm, SecCode};
use sec_gf::GaloisField;

use crate::resilience::{prob_lose_full, prob_lose_sparse_exact, prob_lose_sparse_non_systematic};

/// Which archival scheme is being analysed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// SEC with a non-systematic generator.
    NonSystematicSec,
    /// SEC with a systematic generator.
    SystematicSec,
    /// The non-differential baseline (every version coded in full).
    NonDifferential,
}

impl core::fmt::Display for Scheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Scheme::NonSystematicSec => write!(f, "non-systematic SEC"),
            Scheme::SystematicSec => write!(f, "systematic SEC"),
            Scheme::NonDifferential => write!(f, "non-differential"),
        }
    }
}

/// Per-object loss probabilities for an archive of `L` versions with the
/// given delta-sparsity profile (`γ_2, …, γ_L`).
///
/// Index 0 is the fully coded first version; index `j ≥ 1` is the object
/// stored for version `j + 1` (a delta for SEC schemes, a full version for
/// the baseline).
pub fn per_object_loss<F: GaloisField>(
    code: &SecCode<F>,
    scheme: Scheme,
    sparsity: &[usize],
    p: f64,
) -> Vec<f64> {
    let n = code.n();
    let k = code.k();
    let full = prob_lose_full(n, k, p);
    let mut probs = Vec::with_capacity(sparsity.len() + 1);
    probs.push(full);
    for &gamma in sparsity {
        let prob = match scheme {
            Scheme::NonDifferential => full,
            Scheme::NonSystematicSec => {
                if 2 * gamma < k {
                    prob_lose_sparse_non_systematic(n, k, gamma, p)
                } else {
                    full
                }
            }
            Scheme::SystematicSec => {
                if 2 * gamma < k {
                    prob_lose_sparse_exact(code, gamma, p)
                } else {
                    full
                }
            }
        };
        probs.push(prob);
    }
    probs
}

/// Probability of retaining the whole archive under **dispersed** placement
/// (eq. 11 / eq. 14): every object lives on its own node set, so the events
/// are independent.
pub fn dispersed_availability<F: GaloisField>(
    code: &SecCode<F>,
    scheme: Scheme,
    sparsity: &[usize],
    p: f64,
) -> f64 {
    per_object_loss(code, scheme, sparsity, p)
        .into_iter()
        .map(|loss| 1.0 - loss)
        .product()
}

/// Probability of retaining the whole archive under **colocated** placement
/// (eq. 13 / eq. 15): the whole archive survives exactly when any `k` of the
/// shared `n` nodes survive, for every scheme, so availability is
/// `1 − Prob(E_1)` regardless of the scheme or the sparsity profile.
pub fn colocated_availability<F: GaloisField>(code: &SecCode<F>, p: f64) -> f64 {
    1.0 - prob_lose_full(code.n(), code.k(), p)
}

/// The "number of nines" transform used on the y-axis of Fig. 3:
/// `-log10(1 - availability)`. Returns `f64::INFINITY` for availability 1.
pub fn nines(availability: f64) -> f64 {
    if availability >= 1.0 {
        f64::INFINITY
    } else {
        -(1.0 - availability).log10()
    }
}

/// One row of the Fig. 3 comparison: availability of the whole archive for
/// each scheme and placement at a given failure probability.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityPoint {
    /// The node-failure probability.
    pub p: f64,
    /// Colocated placement (identical for all three schemes, eq. 13/15).
    pub colocated: f64,
    /// Dispersed placement, non-systematic SEC.
    pub dispersed_non_systematic: f64,
    /// Dispersed placement, systematic SEC.
    pub dispersed_systematic: f64,
    /// Dispersed placement, non-differential baseline.
    pub dispersed_non_differential: f64,
}

/// Computes a Fig. 3 style sweep for the archive described by the codes and
/// sparsity profile, over the given failure probabilities.
pub fn availability_sweep<F: GaloisField>(
    non_systematic: &SecCode<F>,
    systematic: &SecCode<F>,
    sparsity: &[usize],
    ps: &[f64],
) -> Vec<AvailabilityPoint> {
    assert_eq!(non_systematic.form(), GeneratorForm::NonSystematic);
    assert_eq!(systematic.form(), GeneratorForm::Systematic);
    ps.iter()
        .map(|&p| AvailabilityPoint {
            p,
            colocated: colocated_availability(non_systematic, p),
            dispersed_non_systematic: dispersed_availability(
                non_systematic,
                Scheme::NonSystematicSec,
                sparsity,
                p,
            ),
            dispersed_systematic: dispersed_availability(systematic, Scheme::SystematicSec, sparsity, p),
            dispersed_non_differential: dispersed_availability(
                non_systematic,
                Scheme::NonDifferential,
                sparsity,
                p,
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::Gf1024;

    fn codes() -> (SecCode<Gf1024>, SecCode<Gf1024>) {
        (
            SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).unwrap(),
            SecCode::cauchy(6, 3, GeneratorForm::Systematic).unwrap(),
        )
    }

    #[test]
    fn per_object_loss_shapes_and_ordering() {
        let (ns, sys) = codes();
        let p = 0.1;
        let probs_ns = per_object_loss(&ns, Scheme::NonSystematicSec, &[1], p);
        let probs_sys = per_object_loss(&sys, Scheme::SystematicSec, &[1], p);
        let probs_nd = per_object_loss(&ns, Scheme::NonDifferential, &[1], p);
        assert_eq!(probs_ns.len(), 2);
        // Delta objects are more resilient than full objects for SEC.
        assert!(probs_ns[1] < probs_ns[0]);
        assert!(probs_sys[1] < probs_sys[0]);
        // Eq. (10): systematic delta loss ≥ non-systematic delta loss.
        assert!(probs_sys[1] >= probs_ns[1]);
        // Baseline stores full versions, so both entries have equal loss.
        assert_eq!(probs_nd[0], probs_nd[1]);
    }

    #[test]
    fn colocated_beats_or_equals_dispersed_for_every_scheme() {
        // Paper conclusion (1): colocated placement dominates dispersed.
        let (ns, sys) = codes();
        for &p in &[0.02, 0.05, 0.1, 0.2] {
            let colo = colocated_availability(&ns, p);
            for (code, scheme) in [
                (&ns, Scheme::NonSystematicSec),
                (&sys, Scheme::SystematicSec),
                (&ns, Scheme::NonDifferential),
            ] {
                let disp = dispersed_availability(code, scheme, &[1], p);
                assert!(colo >= disp - 1e-15, "p={p} scheme={scheme}");
            }
        }
    }

    #[test]
    fn dispersed_ordering_matches_figure_3() {
        // Fig. 3: among dispersed placements, non-systematic SEC ≥ systematic
        // SEC ≥ non-differential.
        let (ns, sys) = codes();
        for &p in &[0.02, 0.05, 0.1, 0.2] {
            let d_ns = dispersed_availability(&ns, Scheme::NonSystematicSec, &[1], p);
            let d_sys = dispersed_availability(&sys, Scheme::SystematicSec, &[1], p);
            let d_nd = dispersed_availability(&ns, Scheme::NonDifferential, &[1], p);
            assert!(d_ns >= d_sys - 1e-15, "p={p}");
            assert!(d_sys >= d_nd - 1e-15, "p={p}");
        }
    }

    #[test]
    fn colocated_availability_is_scheme_independent() {
        let (ns, sys) = codes();
        for &p in &[0.05, 0.1] {
            assert!((colocated_availability(&ns, p) - colocated_availability(&sys, p)).abs() < 1e-15);
        }
    }

    #[test]
    fn nines_transform() {
        assert!((nines(0.9) - 1.0).abs() < 1e-12);
        assert!((nines(0.999) - 3.0).abs() < 1e-9);
        assert!(nines(1.0).is_infinite());
        assert!(nines(0.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_produces_monotone_availability() {
        let (ns, sys) = codes();
        let ps: Vec<f64> = (1..=10).map(|i| i as f64 * 0.02).collect();
        let sweep = availability_sweep(&ns, &sys, &[1], &ps);
        assert_eq!(sweep.len(), 10);
        for w in sweep.windows(2) {
            assert!(w[0].colocated >= w[1].colocated);
            assert!(w[0].dispersed_non_systematic >= w[1].dispersed_non_systematic);
        }
        for point in &sweep {
            assert!(point.colocated >= point.dispersed_non_systematic - 1e-15);
            assert!(point.dispersed_non_systematic >= point.dispersed_non_differential - 1e-15);
        }
    }

    #[test]
    fn longer_archives_are_less_available_when_dispersed() {
        let (ns, _) = codes();
        let p = 0.1;
        let short = dispersed_availability(&ns, Scheme::NonSystematicSec, &[1], p);
        let long = dispersed_availability(&ns, Scheme::NonSystematicSec, &[1, 1, 1, 1], p);
        assert!(long < short);
        // Colocated availability is unaffected by archive length.
        assert_eq!(colocated_availability(&ns, p), colocated_availability(&ns, p));
    }

    #[test]
    fn scheme_display() {
        assert_eq!(Scheme::NonSystematicSec.to_string(), "non-systematic SEC");
        assert_eq!(Scheme::SystematicSec.to_string(), "systematic SEC");
        assert_eq!(Scheme::NonDifferential.to_string(), "non-differential");
    }
}
