//! Simulated distributed storage back-end for SEC archives.
//!
//! The SEC paper's evaluation is analytical and simulation-based: encoded
//! pieces of every stored object live on `n` (colocated placement) or `n·L`
//! (dispersed placement) storage nodes, nodes fail independently with
//! probability `p`, and the metrics of interest are (a) whether versions and
//! whole archives remain recoverable and (b) how many disk I/O reads a
//! retrieval costs. This crate provides that substrate:
//!
//! * [`placement`] — colocated vs dispersed node assignment (§IV);
//! * [`node`] / [`DistributedStore`] — in-memory storage nodes holding coded
//!   symbols, with per-node read counters;
//! * [`failure`] — i.i.d. failure injection and exhaustive failure-pattern
//!   enumeration for the small clusters of the paper's examples;
//! * failure-aware retrieval that reads only from live nodes, falls back from
//!   `2γ`-read sparse plans to `k`-read full plans exactly as §V describes,
//!   and reports every read it performed;
//! * [`byte_store`] / [`ByteDistributedStore`] — the byte-shard fast path:
//!   nodes hold whole coded byte blocks and retrieval decodes through the
//!   batched `GF(2^8)` pipeline, with identical read accounting.
//!
//! # Example
//!
//! ```rust
//! use sec_erasure::GeneratorForm;
//! use sec_gf::{GaloisField, Gf1024};
//! use sec_store::{DistributedStore, PlacementStrategy};
//! use sec_versioning::{ArchiveConfig, EncodingStrategy, VersionedArchive};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)?;
//! let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config)?;
//! let v1: Vec<Gf1024> = [1u64, 2, 3].iter().map(|&x| Gf1024::from_u64(x)).collect();
//! let mut v2 = v1.clone();
//! v2[2] = Gf1024::from_u64(77);
//! archive.append_all(&[v1.clone(), v2.clone()])?;
//!
//! let mut store = DistributedStore::colocated(&archive);
//! store.fail_node(0).unwrap();
//! store.fail_node(5).unwrap();
//! // Both versions survive two failures of the (6,3) MDS code.
//! let retrieved = store.retrieve_version(&archive, 2)?;
//! assert_eq!(retrieved.data, v2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

mod store;

pub mod byte_store;
pub mod failure;
pub mod fault;
pub mod metrics;
pub mod node;
pub mod placement;

pub use byte_store::{ByteDistributedStore, ByteStoredRetrieval};
pub use failure::FailurePattern;
pub use metrics::{AtomicIoMetrics, IoMetrics};
pub use node::StorageNode;
pub use placement::{Placement, PlacementStrategy};
pub use store::{DistributedStore, StoreError, StoredRetrieval};
