//! The [`DistributedStore`]: archive entries spread over simulated nodes, with
//! failure-aware retrieval and repair.

use core::fmt;

use rand::Rng;
use sec_erasure::read_plan::{plan_read, DecodeMethod, ReadTarget};
use sec_erasure::CodeError;
use sec_gf::GaloisField;
use sec_versioning::{EncodingStrategy, StoredPayload, VersionedArchive, VersioningError};

use crate::failure::FailurePattern;
use crate::metrics::{AtomicIoMetrics, IoMetrics};
use crate::node::{StorageNode, SymbolKey};
use crate::placement::{Placement, PlacementStrategy};

/// Errors from the storage simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Too many nodes have failed to serve the request.
    Unrecoverable {
        /// Which archive entry could not be decoded.
        entry: usize,
    },
    /// The requested version does not exist in the archive.
    Versioning(VersioningError),
    /// An erasure-coding error (propagated from decode).
    Code(CodeError),
    /// The store was built for a smaller archive than the one supplied.
    ArchiveMismatch {
        /// Entries the store was provisioned for.
        provisioned: usize,
        /// Entries in the supplied archive.
        supplied: usize,
    },
    /// A node id outside `0..n` was passed to a node-addressing operation
    /// (failure injection, liveness query, repair).
    InvalidNode {
        /// The offending node id.
        node: usize,
        /// Number of nodes the addressed cluster actually has.
        n: usize,
    },
    /// A repair finished rebuilding a node, but the node failed *again*
    /// while the rebuild was in flight, so the repair refused to mark it
    /// live: the rebuilt contents predate the newest failure. The node
    /// stays failed; the caller should re-run the repair.
    RepairRaced {
        /// The node whose repair lost the race with a fresh failure.
        node: usize,
    },
    /// A symbol key outside the placement's geometry was addressed (entry or
    /// codeword position too large).
    InvalidSymbol {
        /// Entry index of the offending key.
        entry: usize,
        /// Codeword position of the offending key.
        position: usize,
        /// Codeword length `n` of the placement.
        n: usize,
        /// Number of entries the placement covers.
        entries: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Unrecoverable { entry } => {
                write!(
                    f,
                    "archive entry {entry} is unrecoverable with the current failures"
                )
            }
            StoreError::Versioning(e) => write!(f, "versioning error: {e}"),
            StoreError::Code(e) => write!(f, "coding error: {e}"),
            StoreError::ArchiveMismatch {
                provisioned,
                supplied,
            } => write!(
                f,
                "store was provisioned for {provisioned} entries but the archive has {supplied}"
            ),
            StoreError::InvalidNode { node, n } => {
                write!(f, "node id {node} is out of range for a {n}-node cluster")
            }
            StoreError::RepairRaced { node } => {
                write!(
                    f,
                    "node {node} failed again while its repair was in flight; the rebuild was \
                     discarded and the node left failed — re-run the repair"
                )
            }
            StoreError::InvalidSymbol {
                entry,
                position,
                n,
                entries,
            } => write!(
                f,
                "symbol (entry {entry}, position {position}) is out of range for a placement of \
                 {entries} entries with codeword length {n}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<VersioningError> for StoreError {
    fn from(e: VersioningError) -> Self {
        StoreError::Versioning(e)
    }
}

impl From<CodeError> for StoreError {
    fn from(e: CodeError) -> Self {
        StoreError::Code(e)
    }
}

/// Result of a failure-aware retrieval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRetrieval<F> {
    /// The recovered object.
    pub data: Vec<F>,
    /// Symbols read from nodes to serve this retrieval.
    pub io_reads: usize,
}

/// Archive entries stored across simulated nodes under a placement strategy.
///
/// Retrieval, recoverability checks and failure injection all take `&self`
/// (node liveness and every counter are atomic), so one store can serve many
/// concurrent readers; only content mutation (repair, corruption hooks)
/// needs `&mut self`.
#[derive(Debug, Clone)]
pub struct DistributedStore<F> {
    nodes: Vec<StorageNode<F>>,
    placement: Placement,
    metrics: AtomicIoMetrics,
}

impl<F: GaloisField> DistributedStore<F> {
    /// Builds a store for `archive` under the given placement and writes every
    /// coded symbol to its node.
    pub fn new(archive: &VersionedArchive<F>, strategy: PlacementStrategy) -> Self {
        let entries = Self::entry_list(archive).len();
        let placement = Placement::new(strategy, archive.code().n(), entries);
        let mut store = Self {
            nodes: (0..placement.node_count()).map(StorageNode::new).collect(),
            placement,
            metrics: AtomicIoMetrics::new(),
        };
        store.write_archive(archive);
        store
    }

    /// Convenience constructor for colocated placement.
    pub fn colocated(archive: &VersionedArchive<F>) -> Self {
        Self::new(archive, PlacementStrategy::Colocated)
    }

    /// Convenience constructor for dispersed placement.
    pub fn dispersed(archive: &VersionedArchive<F>) -> Self {
        Self::new(archive, PlacementStrategy::Dispersed)
    }

    /// All stored objects of the archive in entry order. For Reversed SEC the
    /// full latest copy is appended after the delta entries.
    fn entry_list(archive: &VersionedArchive<F>) -> Vec<(StoredPayload, Vec<F>)> {
        let mut list: Vec<(StoredPayload, Vec<F>)> = archive
            .entries()
            .iter()
            .map(|e| (e.payload, e.codeword.clone()))
            .collect();
        if let Some(latest) = archive.latest_full_entry() {
            list.push((latest.payload, latest.codeword.clone()));
        }
        list
    }

    fn write_archive(&mut self, archive: &VersionedArchive<F>) {
        for (entry_idx, (_, codeword)) in Self::entry_list(archive).iter().enumerate() {
            for (position, &symbol) in codeword.iter().enumerate() {
                let key = SymbolKey {
                    entry: entry_idx,
                    position,
                };
                let node = self
                    .placement
                    .try_node_for(key)
                    // audit: panic ok — write path: keys are built from the same archive the placement was provisioned for
                    .expect("placement covers every archive entry");
                // audit: panic ok — placement maps every key into 0..n and the store holds n nodes
                self.nodes[node].put(key, symbol);
                self.metrics.add_symbol_writes(1);
            }
        }
    }

    /// The placement in use.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// A snapshot of the accumulated I/O metrics.
    pub fn metrics(&self) -> IoMetrics {
        self.metrics.snapshot()
    }

    /// Resets the I/O metrics.
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node (for inspection in tests and experiments).
    pub fn node(&self, id: usize) -> Option<&StorageNode<F>> {
        self.nodes.get(id)
    }

    /// Marks a node failed, or reports [`StoreError::InvalidNode`] when
    /// `node` is out of range.
    pub fn fail_node(&self, node: usize) -> Result<(), StoreError> {
        self.checked_node(node)?.fail();
        Ok(())
    }

    /// Revives a node, or reports [`StoreError::InvalidNode`] when `node` is
    /// out of range.
    pub fn revive_node(&self, node: usize) -> Result<(), StoreError> {
        self.checked_node(node)?.revive();
        Ok(())
    }

    fn checked_node(&self, node: usize) -> Result<&StorageNode<F>, StoreError> {
        self.nodes.get(node).ok_or(StoreError::InvalidNode {
            node,
            n: self.nodes.len(),
        })
    }

    /// Applies a failure pattern over the whole cluster.
    ///
    /// **Overwrite semantics:** within the pattern's length the pattern *is*
    /// the new liveness — covered nodes that the pattern marks alive are
    /// revived even if they were failed before the call. Nodes beyond the
    /// pattern's length are left untouched. Use
    /// [`DistributedStore::apply_pattern_additive`] to layer failures on top
    /// of existing ones instead.
    pub fn apply_pattern(&self, pattern: &FailurePattern) {
        for (idx, node) in self.nodes.iter().enumerate() {
            if pattern.is_failed(idx) {
                node.fail();
            } else if idx < pattern.len() {
                node.revive();
            }
        }
    }

    /// Fails every node the pattern marks failed, leaving all other nodes'
    /// liveness untouched — the additive counterpart of
    /// [`DistributedStore::apply_pattern`], for layering patterns.
    pub fn apply_pattern_additive(&self, pattern: &FailurePattern) {
        for (idx, node) in self.nodes.iter().enumerate() {
            if pattern.is_failed(idx) {
                node.fail();
            }
        }
    }

    /// Fails each node independently with probability `p`.
    pub fn fail_randomly<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> FailurePattern {
        let pattern = FailurePattern::sample(self.nodes.len(), p, rng);
        self.apply_pattern(&pattern);
        pattern
    }

    /// Indices of live nodes holding entry `entry`, as positions within the
    /// entry's codeword. An entry outside the placement has no live
    /// positions.
    pub fn live_positions(&self, entry: usize) -> Vec<usize> {
        (0..self.placement.codeword_len())
            .filter(|&position| {
                self.placement
                    .try_node_for(SymbolKey { entry, position })
                    // audit: panic ok — placement maps every key into 0..n and the store holds n nodes
                    .is_ok_and(|node| self.nodes[node].is_alive())
            })
            .collect()
    }

    /// Whether a single stored entry is still decodable (its full object for
    /// full entries, its sparse delta — possibly via a `k`-read fallback — for
    /// delta entries).
    pub fn entry_recoverable(&self, archive: &VersionedArchive<F>, entry: usize) -> bool {
        let live = self.live_positions(entry);
        live.len() >= archive.code().k()
    }

    /// Whether every stored object of the archive is recoverable, i.e. the
    /// whole versioned archive survives (the paper's availability event).
    pub fn archive_recoverable(&self, archive: &VersionedArchive<F>) -> bool {
        let entries = Self::entry_list(archive).len();
        (0..entries).all(|entry| self.entry_recoverable(archive, entry))
    }

    /// Reads and decodes one stored entry from live nodes, honouring the SEC
    /// read planning (2γ reads when a qualifying subset of live nodes exists,
    /// k reads otherwise).
    fn read_entry(
        &self,
        archive: &VersionedArchive<F>,
        entry_idx: usize,
        payload: StoredPayload,
    ) -> Result<(usize, Vec<F>), StoreError> {
        let code = archive.code();
        let live = self.live_positions(entry_idx);
        let target = match payload {
            StoredPayload::FullVersion { .. } => ReadTarget::Full,
            StoredPayload::Delta { sparsity, .. } => {
                if sparsity == 0 {
                    return Ok((0, vec![F::ZERO; code.k()]));
                }
                ReadTarget::Sparse { gamma: sparsity }
            }
        };
        let plan = plan_read(code, &live, target)
            .map_err(|_| StoreError::Unrecoverable { entry: entry_idx })?;

        let mut shares = Vec::with_capacity(plan.nodes.len());
        for &position in &plan.nodes {
            let key = SymbolKey {
                entry: entry_idx,
                position,
            };
            let node = self.placement.try_node_for(key)?;
            // audit: panic ok — node id came from the placement, which maps into 0..n
            match self.nodes[node].read(key) {
                Some(symbol) => {
                    self.metrics.add_symbol_reads(1);
                    shares.push((position, symbol));
                }
                None => {
                    self.metrics.add_failed_read();
                    return Err(StoreError::Unrecoverable { entry: entry_idx });
                }
            }
        }
        let decoded = match plan.method {
            DecodeMethod::SystematicDirect | DecodeMethod::Inversion => code.decode_full(&shares)?,
            DecodeMethod::SparseRecovery => match target {
                ReadTarget::Sparse { gamma } => code.decode_sparse(&shares, gamma)?,
                // audit: panic ok — plan_read returns SparseRecovery only for ReadTarget::Sparse
                ReadTarget::Full => unreachable!("sparse plans only arise for sparse targets"),
            },
        };
        Ok((plan.io_reads, decoded))
    }

    /// Retrieves version `l` of the archive, reading only from live nodes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unrecoverable`] when some required entry has too
    /// few live nodes, or a versioning error for an invalid `l`.
    pub fn retrieve_version(
        &self,
        archive: &VersionedArchive<F>,
        l: usize,
    ) -> Result<StoredRetrieval<F>, StoreError> {
        let entries = Self::entry_list(archive);
        if self.placement.entries() < entries.len() {
            return Err(StoreError::ArchiveMismatch {
                provisioned: self.placement.entries(),
                supplied: entries.len(),
            });
        }
        if archive.is_empty() {
            return Err(StoreError::Versioning(VersioningError::EmptyArchive));
        }
        if l == 0 || l > archive.len() {
            return Err(StoreError::Versioning(VersioningError::NoSuchVersion {
                requested: l,
                available: archive.len(),
            }));
        }
        self.metrics.add_retrieval();

        match archive.config().strategy() {
            EncodingStrategy::NonDifferential => {
                // audit: panic ok — `l >= 1` and `l <= entries.len()` were checked above
                let (reads, data) = self.read_entry(archive, l - 1, entries[l - 1].0)?;
                Ok(StoredRetrieval {
                    data,
                    io_reads: reads,
                })
            }
            EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
                // audit: panic ok — `l <= entries.len()` was checked above
                let anchor = entries[..l]
                    .iter()
                    .rposition(|(p, _)| matches!(p, StoredPayload::FullVersion { .. }))
                    // audit: panic ok — archive invariant: entry 0 is always a full version, so rposition finds one
                    .expect("first entry is always a full version");
                // audit: panic ok — `anchor < l <= entries.len()` by construction
                let (mut io_reads, mut data) = self.read_entry(archive, anchor, entries[anchor].0)?;
                for (idx, (payload, _)) in entries.iter().enumerate().take(l).skip(anchor + 1) {
                    let (reads, delta) = self.read_entry(archive, idx, *payload)?;
                    io_reads += reads;
                    data = sec_versioning::Delta::from_vec(delta)
                        .apply(&data)
                        .map_err(StoreError::Versioning)?;
                }
                Ok(StoredRetrieval { data, io_reads })
            }
            EncodingStrategy::ReversedSec => {
                // The full latest copy is the final entry in the stored list.
                let latest_idx = entries.len() - 1;
                let (mut io_reads, mut data) =
                    // audit: panic ok — entry_list is non-empty once the archive has versions (checked above)
                    self.read_entry(archive, latest_idx, entries[latest_idx].0)?;
                // Delta entries are 0..latest_idx, delta at index j is z_{j+2}.
                for idx in (l.saturating_sub(1)..latest_idx).rev() {
                    // audit: panic ok — `idx < latest_idx < entries.len()` by the loop bounds
                    let (reads, delta) = self.read_entry(archive, idx, entries[idx].0)?;
                    io_reads += reads;
                    data = sec_versioning::Delta::from_vec(delta)
                        .unapply(&data)
                        .map_err(StoreError::Versioning)?;
                }
                Ok(StoredRetrieval { data, io_reads })
            }
        }
    }

    /// Repairs a failed node: revives it and rebuilds every symbol it should
    /// hold by decoding each affected entry from `k` live nodes and
    /// re-encoding the lost position. Returns the number of symbols rebuilt.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unrecoverable`] if some affected entry has fewer
    /// than `k` live nodes.
    pub fn repair_node(
        &mut self,
        archive: &VersionedArchive<F>,
        node_id: usize,
    ) -> Result<usize, StoreError> {
        if node_id >= self.nodes.len() {
            return Err(StoreError::InvalidNode {
                node: node_id,
                n: self.nodes.len(),
            });
        }
        let entries = Self::entry_list(archive);
        let code = archive.code();
        let mut rebuilt = 0usize;
        // Determine which (entry, position) pairs live on this node.
        let mut to_rebuild = Vec::new();
        for entry_idx in 0..entries.len() {
            for position in 0..code.n() {
                let key = SymbolKey {
                    entry: entry_idx,
                    position,
                };
                if self.placement.try_node_for(key)? == node_id {
                    to_rebuild.push(key);
                }
            }
        }
        // audit: panic ok — `node_id < n` was checked at function entry
        self.nodes[node_id].revive();
        // audit: panic ok — `node_id < n` was checked at function entry
        self.nodes[node_id].wipe();
        for key in to_rebuild {
            // Simulated mid-repair crash: the repair job dies between
            // symbols, leaving the node partially rebuilt. Retrying the
            // repair must finish the job (see sec-sim's torn-repair suite).
            if crate::fault::buggify("store::repair::abort") {
                return Err(StoreError::Unrecoverable { entry: key.entry });
            }
            let live: Vec<usize> = self
                .live_positions(key.entry)
                .into_iter()
                .filter(|&p| p != key.position)
                .collect();
            if live.len() < code.k() {
                return Err(StoreError::Unrecoverable { entry: key.entry });
            }
            let mut shares = Vec::with_capacity(code.k());
            for &position in live.iter().take(code.k()) {
                let skey = SymbolKey {
                    entry: key.entry,
                    position,
                };
                let node = self.placement.try_node_for(skey)?;
                // audit: panic ok — node id came from the placement, which maps into 0..n
                let symbol = self.nodes[node]
                    .read(skey)
                    .ok_or(StoreError::Unrecoverable { entry: key.entry })?;
                self.metrics.add_symbol_reads(1);
                shares.push((position, symbol));
            }
            let object = code.decode_full(&shares)?;
            let codeword = code.encode(&object)?;
            // audit: panic ok — `key.position < n = codeword.len()` by the loop over 0..code.n()
            self.nodes[node_id].put(key, codeword[key.position]);
            self.metrics.add_symbol_writes(1);
            rebuilt += 1;
        }
        self.metrics.add_repair();
        Ok(rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sec_erasure::GeneratorForm;
    use sec_gf::Gf1024;
    use sec_versioning::ArchiveConfig;

    fn versions() -> Vec<Vec<Gf1024>> {
        let v1: Vec<Gf1024> = [1u64, 2, 3].iter().map(|&x| Gf1024::from_u64(x)).collect();
        let mut v2 = v1.clone();
        v2[0] = Gf1024::from_u64(100);
        let mut v3 = v2.clone();
        v3[1] = Gf1024::from_u64(200);
        vec![v1, v2, v3]
    }

    fn archive(strategy: EncodingStrategy) -> (VersionedArchive<Gf1024>, Vec<Vec<Gf1024>>) {
        let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, strategy).unwrap();
        let mut archive = VersionedArchive::new(config).unwrap();
        let vs = versions();
        archive.append_all(&vs).unwrap();
        (archive, vs)
    }

    #[test]
    fn colocated_store_round_trips_all_strategies() {
        for strategy in [
            EncodingStrategy::BasicSec,
            EncodingStrategy::OptimizedSec,
            EncodingStrategy::ReversedSec,
            EncodingStrategy::NonDifferential,
        ] {
            let (archive, vs) = archive(strategy);
            let store = DistributedStore::colocated(&archive);
            assert_eq!(store.node_count(), 6);
            for (l, expect) in vs.iter().enumerate() {
                let r = store.retrieve_version(&archive, l + 1).unwrap();
                assert_eq!(&r.data, expect, "{strategy:?} version {}", l + 1);
            }
            assert!(store.metrics().symbol_reads > 0);
            assert_eq!(store.metrics().retrievals, vs.len() as u64);
        }
    }

    #[test]
    fn dispersed_store_uses_distinct_node_sets() {
        let (archive, vs) = archive(EncodingStrategy::BasicSec);
        let store = DistributedStore::dispersed(&archive);
        assert_eq!(store.node_count(), 18);
        let r = store.retrieve_version(&archive, 3).unwrap();
        assert_eq!(r.data, vs[2]);
        // Each entry's nodes hold exactly one symbol.
        assert!(store.node(0).unwrap().stored_symbols() == 1);
    }

    #[test]
    fn io_reads_match_all_alive_archive_retrieval() {
        for strategy in [EncodingStrategy::BasicSec, EncodingStrategy::OptimizedSec] {
            let (archive, vs) = archive(strategy);
            let store = DistributedStore::colocated(&archive);
            for l in 1..=vs.len() {
                let via_store = store.retrieve_version(&archive, l).unwrap().io_reads;
                let via_archive = archive.retrieve_version(l).unwrap().io_reads;
                assert_eq!(via_store, via_archive, "{strategy:?} version {l}");
            }
        }
    }

    #[test]
    fn survives_n_minus_k_failures_colocated() {
        let (archive, vs) = archive(EncodingStrategy::BasicSec);
        let store = DistributedStore::colocated(&archive);
        store.fail_node(0).unwrap();
        store.fail_node(3).unwrap();
        store.fail_node(5).unwrap();
        assert!(store.archive_recoverable(&archive));
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(&store.retrieve_version(&archive, l + 1).unwrap().data, expect);
        }
        // A fourth failure makes full objects unrecoverable.
        store.fail_node(1).unwrap();
        assert!(!store.archive_recoverable(&archive));
        assert!(matches!(
            store.retrieve_version(&archive, 1),
            Err(StoreError::Unrecoverable { .. })
        ));
    }

    #[test]
    fn sparse_deltas_survive_more_failures_than_full_objects() {
        // With 4 failures (2 live nodes) the 1-sparse delta entry is still
        // readable with 2 reads even though the full first version is lost —
        // matching the paper's observation that individual deltas have higher
        // static resilience (eq. 7 vs eq. 6).
        let (archive, _) = archive(EncodingStrategy::BasicSec);
        let store = DistributedStore::colocated(&archive);
        for node in [0, 1, 3, 5] {
            store.fail_node(node).unwrap();
        }
        assert!(!store.entry_recoverable(&archive, 0));
        let live = store.live_positions(1);
        assert_eq!(live.len(), 2);
        // Entry 1 stores a 1-sparse delta; it can still be decoded directly.
        let code = archive.code();
        let entry = &archive.entries()[1];
        let shares: Vec<(usize, Gf1024)> = live.iter().map(|&i| (i, entry.codeword[i])).collect();
        let decoded = code.decode_sparse(&shares, 1).unwrap();
        assert_eq!(decoded.iter().filter(|v| !v.is_zero()).count(), 1);
    }

    #[test]
    fn random_failures_and_pattern_application() {
        let (archive, vs) = archive(EncodingStrategy::BasicSec);
        let store = DistributedStore::colocated(&archive);
        let mut rng = StdRng::seed_from_u64(5);
        let pattern = store.fail_randomly(0.3, &mut rng);
        assert_eq!(pattern.len(), 6);
        if store.archive_recoverable(&archive) {
            assert_eq!(store.retrieve_version(&archive, 3).unwrap().data, vs[2]);
        } else {
            assert!(
                store.retrieve_version(&archive, 1).is_err()
                    || store.retrieve_version(&archive, 3).is_err()
            );
        }
        // Reviving everything restores service.
        store.apply_pattern(&FailurePattern::none(6));
        assert_eq!(store.retrieve_version(&archive, 3).unwrap().data, vs[2]);
    }

    #[test]
    fn repair_rebuilds_lost_symbols() {
        let (archive, vs) = archive(EncodingStrategy::BasicSec);
        let mut store = DistributedStore::colocated(&archive);
        store.fail_node(2).unwrap();
        let rebuilt = store.repair_node(&archive, 2).unwrap();
        // Three entries, one symbol each on node 2.
        assert_eq!(rebuilt, 3);
        assert_eq!(store.metrics().repairs, 1);
        // The node serves reads again and the archive remains intact.
        store.fail_node(0).unwrap();
        store.fail_node(1).unwrap();
        store.fail_node(3).unwrap();
        assert!(store.archive_recoverable(&archive));
        assert_eq!(store.retrieve_version(&archive, 3).unwrap().data, vs[2]);
    }

    #[test]
    fn repair_fails_when_too_few_survivors() {
        let (archive, _) = archive(EncodingStrategy::BasicSec);
        let mut store = DistributedStore::colocated(&archive);
        for node in [0, 1, 2, 3] {
            store.fail_node(node).unwrap();
        }
        assert!(matches!(
            store.repair_node(&archive, 0),
            Err(StoreError::Unrecoverable { .. })
        ));
    }

    #[test]
    fn error_paths_and_metrics_reset() {
        let (archive, _) = archive(EncodingStrategy::BasicSec);
        let store = DistributedStore::colocated(&archive);
        assert!(matches!(
            store.retrieve_version(&archive, 0),
            Err(StoreError::Versioning(VersioningError::NoSuchVersion { .. }))
        ));
        assert!(matches!(
            store.retrieve_version(&archive, 9),
            Err(StoreError::Versioning(VersioningError::NoSuchVersion { .. }))
        ));
        let _ = store.retrieve_version(&archive, 1).unwrap();
        assert!(store.metrics().symbol_reads > 0);
        store.reset_metrics();
        assert_eq!(store.metrics(), IoMetrics::default());
        // Display impls.
        assert!(StoreError::Unrecoverable { entry: 2 }
            .to_string()
            .contains("entry 2"));
        assert!(StoreError::ArchiveMismatch {
            provisioned: 1,
            supplied: 2
        }
        .to_string()
        .contains("provisioned"));
        assert!(StoreError::InvalidNode { node: 9, n: 6 }
            .to_string()
            .contains("node id 9"));
    }

    #[test]
    fn additive_patterns_layer_while_overwrite_replaces() {
        let (archive, _) = archive(EncodingStrategy::BasicSec);
        let store = DistributedStore::colocated(&archive);
        store.fail_node(0).unwrap();
        // Additive: node 0 stays failed even though the pattern marks it alive.
        store.apply_pattern_additive(&FailurePattern::with_failures(6, &[2]));
        assert!(!store.node(0).unwrap().is_alive());
        assert!(!store.node(2).unwrap().is_alive());
        assert!(store.node(1).unwrap().is_alive());
        // Overwrite: the same pattern revives every covered node it marks alive.
        store.apply_pattern(&FailurePattern::with_failures(6, &[2]));
        assert!(store.node(0).unwrap().is_alive());
        assert!(!store.node(2).unwrap().is_alive());
    }
}
