//! Redundancy placement strategies (§IV of the paper).
//!
//! * **Colocated** — the coded pieces of every stored object (first version
//!   and all deltas) live on the same set of `n` nodes; node `i` holds
//!   position `i` of every codeword. The paper shows this placement maximizes
//!   whole-archive resilience.
//! * **Dispersed** — each stored object gets its own disjoint set of `n`
//!   nodes, for `n·L` nodes in total.

use crate::node::SymbolKey;

/// Which placement strategy a store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementStrategy {
    /// All entries share one set of `n` nodes.
    Colocated,
    /// Every entry gets its own disjoint set of `n` nodes.
    Dispersed,
}

impl core::fmt::Display for PlacementStrategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlacementStrategy::Colocated => write!(f, "colocated"),
            PlacementStrategy::Dispersed => write!(f, "dispersed"),
        }
    }
}

/// A concrete node assignment for `entries` stored objects of codeword length
/// `n` each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    strategy: PlacementStrategy,
    n: usize,
    entries: usize,
}

impl Placement {
    /// Creates a placement for `entries` codewords of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(strategy: PlacementStrategy, n: usize, entries: usize) -> Self {
        assert!(n > 0, "codeword length must be positive");
        Self { strategy, n, entries }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Codeword length `n`.
    pub fn codeword_len(&self) -> usize {
        self.n
    }

    /// Number of stored objects covered by the placement.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Total number of distinct nodes required.
    pub fn node_count(&self) -> usize {
        match self.strategy {
            PlacementStrategy::Colocated => self.n,
            PlacementStrategy::Dispersed => self.n * self.entries.max(1),
        }
    }

    /// The node that stores the given coded symbol.
    ///
    /// # Panics
    ///
    /// Panics if the key is outside the placement (entry or position too
    /// large).
    pub fn node_for(&self, key: SymbolKey) -> usize {
        assert!(
            key.position < self.n,
            "symbol position {} out of range",
            key.position
        );
        assert!(
            key.entry < self.entries.max(1),
            "entry {} out of range for {} entries",
            key.entry,
            self.entries
        );
        match self.strategy {
            PlacementStrategy::Colocated => key.position,
            PlacementStrategy::Dispersed => key.entry * self.n + key.position,
        }
    }

    /// The set of nodes holding the given entry, in codeword-position order.
    pub fn nodes_for_entry(&self, entry: usize) -> Vec<usize> {
        (0..self.n)
            .map(|position| self.node_for(SymbolKey { entry, position }))
            .collect()
    }

    /// Grows the placement to cover more entries (used when versions are
    /// appended after the store was created).
    pub fn grow_to(&mut self, entries: usize) {
        self.entries = self.entries.max(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocated_reuses_the_same_nodes() {
        let p = Placement::new(PlacementStrategy::Colocated, 6, 5);
        assert_eq!(p.node_count(), 6);
        assert_eq!(p.nodes_for_entry(0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.nodes_for_entry(4), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(
            p.node_for(SymbolKey {
                entry: 3,
                position: 2
            }),
            2
        );
        assert_eq!(p.strategy(), PlacementStrategy::Colocated);
        assert_eq!(p.codeword_len(), 6);
        assert_eq!(p.entries(), 5);
    }

    #[test]
    fn dispersed_uses_disjoint_node_sets() {
        let p = Placement::new(PlacementStrategy::Dispersed, 6, 5);
        assert_eq!(p.node_count(), 30);
        assert_eq!(p.nodes_for_entry(0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.nodes_for_entry(2), vec![12, 13, 14, 15, 16, 17]);
        // Node sets of different entries never intersect.
        for a in 0..5 {
            for b in (a + 1)..5 {
                let na = p.nodes_for_entry(a);
                let nb = p.nodes_for_entry(b);
                assert!(na.iter().all(|x| !nb.contains(x)));
            }
        }
    }

    #[test]
    fn grow_extends_entry_range() {
        let mut p = Placement::new(PlacementStrategy::Dispersed, 4, 1);
        assert_eq!(p.node_count(), 4);
        p.grow_to(3);
        assert_eq!(p.entries(), 3);
        assert_eq!(p.node_count(), 12);
        // Growing never shrinks.
        p.grow_to(2);
        assert_eq!(p.entries(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_position_panics() {
        let p = Placement::new(PlacementStrategy::Colocated, 4, 1);
        let _ = p.node_for(SymbolKey {
            entry: 0,
            position: 4,
        });
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", PlacementStrategy::Colocated), "colocated");
        assert_eq!(format!("{}", PlacementStrategy::Dispersed), "dispersed");
    }
}
