//! Redundancy placement strategies (§IV of the paper).
//!
//! * **Colocated** — the coded pieces of every stored object (first version
//!   and all deltas) live on the same set of `n` nodes; node `i` holds
//!   position `i` of every codeword. The paper shows this placement maximizes
//!   whole-archive resilience.
//! * **Dispersed** — each stored object gets its own disjoint set of `n`
//!   nodes, for `n·L` nodes in total.

use crate::node::SymbolKey;
use crate::store::StoreError;

/// Which placement strategy a store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementStrategy {
    /// All entries share one set of `n` nodes.
    Colocated,
    /// Every entry gets its own disjoint set of `n` nodes.
    Dispersed,
}

impl core::fmt::Display for PlacementStrategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlacementStrategy::Colocated => write!(f, "colocated"),
            PlacementStrategy::Dispersed => write!(f, "dispersed"),
        }
    }
}

/// A concrete node assignment for `entries` stored objects of codeword length
/// `n` each.
///
/// # Growth contract
///
/// A placement starts out covering the entries that existed when it was
/// built and grows monotonically via [`Placement::grow_to`] as versions are
/// appended: growing never renames an existing symbol's node, it only adds
/// addressable entries (and, under [`PlacementStrategy::Dispersed`], the `n`
/// fresh nodes each new entry lives on). An **empty** placement covers zero
/// entries: under `Dispersed` it therefore has **zero** nodes and rejects
/// every key, while under `Colocated` the `n` physical nodes exist
/// regardless of how many entries they hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    strategy: PlacementStrategy,
    n: usize,
    entries: usize,
}

impl Placement {
    /// Creates a placement for `entries` codewords of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(strategy: PlacementStrategy, n: usize, entries: usize) -> Self {
        assert!(n > 0, "codeword length must be positive");
        Self { strategy, n, entries }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Codeword length `n`.
    pub fn codeword_len(&self) -> usize {
        self.n
    }

    /// Number of stored objects covered by the placement.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Total number of distinct nodes required. An empty dispersed placement
    /// needs zero nodes (consistently with [`Placement::try_node_for`], which
    /// rejects every key until [`Placement::grow_to`] admits entries); a
    /// colocated placement always needs exactly `n`.
    pub fn node_count(&self) -> usize {
        match self.strategy {
            PlacementStrategy::Colocated => self.n,
            PlacementStrategy::Dispersed => self.n * self.entries,
        }
    }

    /// The node that stores the given coded symbol, or
    /// [`StoreError::InvalidSymbol`] when the key lies outside the
    /// placement's geometry.
    pub fn try_node_for(&self, key: SymbolKey) -> Result<usize, StoreError> {
        if key.position >= self.n || key.entry >= self.entries {
            return Err(StoreError::InvalidSymbol {
                entry: key.entry,
                position: key.position,
                n: self.n,
                entries: self.entries,
            });
        }
        Ok(match self.strategy {
            PlacementStrategy::Colocated => key.position,
            PlacementStrategy::Dispersed => key.entry * self.n + key.position,
        })
    }

    /// The set of nodes holding the given entry in codeword-position order,
    /// or [`StoreError::InvalidSymbol`] when the entry is outside the
    /// placement.
    pub fn try_nodes_for_entry(&self, entry: usize) -> Result<Vec<usize>, StoreError> {
        (0..self.n)
            .map(|position| self.try_node_for(SymbolKey { entry, position }))
            .collect()
    }

    /// The node that stores the given coded symbol.
    ///
    /// # Panics
    ///
    /// Panics if the key is outside the placement (entry or position too
    /// large); use [`Placement::try_node_for`] where a bad key is a handled
    /// error rather than a bug.
    pub fn node_for(&self, key: SymbolKey) -> usize {
        self.try_node_for(key).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The set of nodes holding the given entry, in codeword-position order.
    ///
    /// # Panics
    ///
    /// Panics if the entry is outside the placement; use
    /// [`Placement::try_nodes_for_entry`] for the fallible form.
    pub fn nodes_for_entry(&self, entry: usize) -> Vec<usize> {
        self.try_nodes_for_entry(entry).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Grows the placement to cover at least `entries` stored objects (used
    /// when versions are appended after the store or engine was created).
    /// Growing is monotone — it never shrinks coverage nor reassigns an
    /// already-addressable symbol — and under
    /// [`PlacementStrategy::Dispersed`] each admitted entry adds `n` fresh
    /// nodes to [`Placement::node_count`].
    pub fn grow_to(&mut self, entries: usize) {
        self.entries = self.entries.max(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocated_reuses_the_same_nodes() {
        let p = Placement::new(PlacementStrategy::Colocated, 6, 5);
        assert_eq!(p.node_count(), 6);
        assert_eq!(p.nodes_for_entry(0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.nodes_for_entry(4), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(
            p.node_for(SymbolKey {
                entry: 3,
                position: 2
            }),
            2
        );
        assert_eq!(p.strategy(), PlacementStrategy::Colocated);
        assert_eq!(p.codeword_len(), 6);
        assert_eq!(p.entries(), 5);
    }

    #[test]
    fn dispersed_uses_disjoint_node_sets() {
        let p = Placement::new(PlacementStrategy::Dispersed, 6, 5);
        assert_eq!(p.node_count(), 30);
        assert_eq!(p.nodes_for_entry(0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.nodes_for_entry(2), vec![12, 13, 14, 15, 16, 17]);
        // Node sets of different entries never intersect.
        for a in 0..5 {
            for b in (a + 1)..5 {
                let na = p.nodes_for_entry(a);
                let nb = p.nodes_for_entry(b);
                assert!(na.iter().all(|x| !nb.contains(x)));
            }
        }
    }

    #[test]
    fn grow_extends_entry_range() {
        let mut p = Placement::new(PlacementStrategy::Dispersed, 4, 1);
        assert_eq!(p.node_count(), 4);
        p.grow_to(3);
        assert_eq!(p.entries(), 3);
        assert_eq!(p.node_count(), 12);
        // Growing never shrinks.
        p.grow_to(2);
        assert_eq!(p.entries(), 3);
    }

    #[test]
    fn empty_placement_has_no_dispersed_nodes_and_rejects_every_key() {
        // The former `entries.max(1)` quirk reported `n` nodes for an empty
        // dispersed placement while rejecting entry 0; empty now means zero
        // nodes, and growth admits them.
        let mut p = Placement::new(PlacementStrategy::Dispersed, 4, 0);
        assert_eq!(p.node_count(), 0);
        assert!(p
            .try_node_for(SymbolKey {
                entry: 0,
                position: 0,
            })
            .is_err());
        p.grow_to(2);
        assert_eq!(p.node_count(), 8);
        assert_eq!(p.try_nodes_for_entry(1).unwrap(), vec![4, 5, 6, 7]);
        // Colocated nodes exist independently of entries.
        let colo = Placement::new(PlacementStrategy::Colocated, 4, 0);
        assert_eq!(colo.node_count(), 4);
        assert!(colo.try_nodes_for_entry(0).is_err());
    }

    #[test]
    fn try_addressing_reports_the_offending_key() {
        let p = Placement::new(PlacementStrategy::Dispersed, 6, 2);
        assert_eq!(
            p.try_node_for(SymbolKey {
                entry: 1,
                position: 4,
            }),
            Ok(10)
        );
        let err = p
            .try_node_for(SymbolKey {
                entry: 2,
                position: 0,
            })
            .unwrap_err();
        assert_eq!(
            err,
            StoreError::InvalidSymbol {
                entry: 2,
                position: 0,
                n: 6,
                entries: 2,
            }
        );
        assert!(err.to_string().contains("out of range"));
        assert!(p.try_nodes_for_entry(2).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_position_panics() {
        let p = Placement::new(PlacementStrategy::Colocated, 4, 1);
        let _ = p.node_for(SymbolKey {
            entry: 0,
            position: 4,
        });
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", PlacementStrategy::Colocated), "colocated");
        assert_eq!(format!("{}", PlacementStrategy::Dispersed), "dispersed");
    }
}
