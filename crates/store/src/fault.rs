//! Buggify-style fault points for deterministic simulation.
//!
//! The chaos suites race real OS threads, so any failure they trip is
//! unreproducible. The `sec-sim` crate replaces them with a seeded
//! single-threaded scheduler — but a scheduler can only interleave at points
//! the production code exposes. This module is that exposure: production
//! paths call [`buggify`] ("should the simulated fault at this site fire?")
//! and [`reached`] ("execution passed through this site") at named [`Site`]s,
//! and a simulation installs a [`FaultHook`] to answer.
//!
//! The whole mechanism sits behind the `sim-faults` cargo feature. Without
//! the feature, [`buggify`] and [`reached`] compile to constant no-ops —
//! release builds of the serving stack pay nothing. With the feature, the
//! hook lives in a thread-local so concurrent tests under `cargo test`
//! cannot contaminate each other, and hook callbacks are *masked*: any site
//! visited while a hook callback is on the stack is invisible to the hook,
//! so a hook that drives engine operations (the simulator's interleaving
//! windows) cannot recurse into itself, and an oracle evaluated under
//! [`with_suspended`] is never perturbed by the faults it is checking.
//!
//! The catalogue of sites compiled into the stack is documented in
//! `docs/DST.md`; keep it in sync when adding a call site.

/// Identifier of one fault point. Sites are `'static` string literals
/// namespaced by crate and operation, e.g. `"store::node::read"` or
/// `"cluster::repair::window"`.
pub type Site = &'static str;

/// A simulation's answer to the fault points compiled into the stack.
///
/// Both methods default to "do nothing", so a hook only overrides the sites
/// it cares about. Implementations must not assume they run on any
/// particular thread: the hook is installed per-thread via
/// [`install`](self::install) and only ever called from that thread.
pub trait FaultHook {
    /// Returns `true` when the simulated fault at `site` should fire. The
    /// call site then takes its failure path (e.g. a read returns "node
    /// unavailable", a repair aborts before committing).
    fn buggify(&self, _site: Site) -> bool {
        false
    }

    /// Observes that execution reached `site`. The simulator uses this both
    /// to trace progress (e.g. every lock acquisition) and to run queued
    /// operations inside lock-free interleaving windows.
    fn reached(&self, _site: Site) {}
}

#[cfg(feature = "sim-faults")]
mod hooked {
    use super::{FaultHook, Site};
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    thread_local! {
        static HOOK: RefCell<Option<Rc<dyn FaultHook>>> = const { RefCell::new(None) };
        static MASKED: Cell<u32> = const { Cell::new(0) };
    }

    /// Proof that a hook is installed on this thread; dropping it uninstalls
    /// the hook (restoring the no-op behaviour).
    #[derive(Debug)]
    pub struct HookGuard {
        _not_send: std::marker::PhantomData<Rc<()>>,
    }

    impl Drop for HookGuard {
        fn drop(&mut self) {
            HOOK.with(|cell| cell.borrow_mut().take());
        }
    }

    /// Installs `hook` as this thread's fault hook until the returned guard
    /// drops. Installing over an existing hook replaces it (the *previous*
    /// hook stays uninstalled when either guard drops — simulations are
    /// expected to nest via scopes, not interleave guards).
    pub fn install(hook: Rc<dyn FaultHook>) -> HookGuard {
        HOOK.with(|cell| *cell.borrow_mut() = Some(hook));
        HookGuard {
            _not_send: std::marker::PhantomData,
        }
    }

    struct MaskGuard;

    impl Drop for MaskGuard {
        fn drop(&mut self) {
            MASKED.with(|c| c.set(c.get().saturating_sub(1)));
        }
    }

    /// Runs `f` with every fault point masked: [`buggify`] returns `false`
    /// and [`reached`] is silent for the duration. The simulator wraps its
    /// single-threaded oracles in this so reference results are computed
    /// fault-free on the same thread as the faulty system under test.
    pub fn with_suspended<R>(f: impl FnOnce() -> R) -> R {
        MASKED.with(|c| c.set(c.get().saturating_add(1)));
        let _guard = MaskGuard;
        f()
    }

    /// Consults the installed hook about the fault point `site`. `false`
    /// when no hook is installed, when masked, or when the hook declines.
    pub fn buggify(site: Site) -> bool {
        if MASKED.with(Cell::get) > 0 {
            return false;
        }
        // Clone the hook out and release the borrow before calling it, so a
        // callback that re-enters this module never trips the RefCell.
        let hook = HOOK.with(|cell| cell.borrow().clone());
        match hook {
            Some(hook) => with_suspended(|| hook.buggify(site)),
            None => false,
        }
    }

    /// Reports to the installed hook that execution reached `site`. A no-op
    /// when no hook is installed or while masked.
    pub fn reached(site: Site) {
        if MASKED.with(Cell::get) > 0 {
            return;
        }
        let hook = HOOK.with(|cell| cell.borrow().clone());
        if let Some(hook) = hook {
            with_suspended(|| hook.reached(site));
        }
    }
}

#[cfg(not(feature = "sim-faults"))]
mod hooked {
    use super::Site;

    /// Without `sim-faults` no fault ever fires.
    #[inline(always)]
    pub fn buggify(_site: Site) -> bool {
        false
    }

    /// Without `sim-faults` site visits are not observable.
    #[inline(always)]
    pub fn reached(_site: Site) {}

    /// Without `sim-faults` there is nothing to suspend.
    #[inline(always)]
    pub fn with_suspended<R>(f: impl FnOnce() -> R) -> R {
        f()
    }
}

pub use hooked::{buggify, reached, with_suspended};

#[cfg(feature = "sim-faults")]
pub use hooked::{install, HookGuard};

#[cfg(all(test, feature = "sim-faults"))]
mod tests {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    #[derive(Default)]
    struct Recorder {
        fire: Cell<bool>,
        sites: RefCell<Vec<Site>>,
    }

    impl FaultHook for Recorder {
        fn buggify(&self, site: Site) -> bool {
            self.sites.borrow_mut().push(site);
            self.fire.get()
        }

        fn reached(&self, site: Site) {
            self.sites.borrow_mut().push(site);
        }
    }

    #[test]
    fn no_hook_means_no_faults() {
        assert!(!buggify("test::site"));
        reached("test::site"); // must not panic
    }

    #[test]
    fn installed_hook_sees_sites_and_guard_uninstalls() {
        let hook = Rc::new(Recorder::default());
        {
            let _guard = install(hook.clone());
            hook.fire.set(true);
            assert!(buggify("test::a"));
            reached("test::b");
        }
        assert_eq!(*hook.sites.borrow(), vec!["test::a", "test::b"]);
        // Guard dropped: back to no-op.
        assert!(!buggify("test::a"));
        assert_eq!(hook.sites.borrow().len(), 2);
    }

    #[test]
    fn suspension_masks_all_sites() {
        let hook = Rc::new(Recorder::default());
        let _guard = install(hook.clone());
        hook.fire.set(true);
        let inner = with_suspended(|| buggify("test::masked"));
        assert!(!inner);
        reached("test::live");
        assert_eq!(*hook.sites.borrow(), vec!["test::live"]);
    }

    struct Reentrant {
        nested: Cell<u32>,
    }

    impl FaultHook for Reentrant {
        fn reached(&self, _site: Site) {
            // A hook that drives more production code must not observe the
            // sites that code visits (or it would recurse forever).
            reached("test::nested");
            if buggify("test::nested") {
                self.nested.set(self.nested.get() + 1);
            }
        }
    }

    #[test]
    fn hook_callbacks_are_masked_against_reentry() {
        let hook = Rc::new(Reentrant { nested: Cell::new(0) });
        let _guard = install(hook.clone());
        reached("test::outer");
        assert_eq!(hook.nested.get(), 0);
    }
}
