//! The byte-shard fast path of the storage simulator: a
//! [`ByteDistributedStore`] whose nodes hold whole coded byte blocks and
//! whose retrieval decodes through the batched `GF(2^8)` pipeline.
//!
//! This is the production-shaped counterpart of the symbol-level
//! [`DistributedStore`](crate::DistributedStore): each stored object of a
//! [`ByteVersionedArchive`] contributes `n` coded blocks, block `i` lives on
//! the node chosen by the [`Placement`], and a retrieval reads whole blocks
//! from live nodes according to the SEC read plan (`2γ` block reads for an
//! exploitable delta, `k` otherwise). Read counts are identical to the
//! symbol-level model — one block read corresponds to one of the paper's
//! disk I/O reads.
//!
//! Corrupt blocks (wrong length) surface as [`StoreError::Code`] rather than
//! aborting the simulation: the decode pipeline validates shard lengths up
//! front, and delta application runs through the fallible `try_` kernels.

use rand::Rng;
use sec_erasure::read_plan::plan_read;
use sec_erasure::{ByteCodec, ByteShards};
use sec_versioning::walk::{decode_planned, read_target, walk_version};
use sec_versioning::{ByteVersionedArchive, StoredPayload, VersioningError};

use crate::failure::FailurePattern;
use crate::metrics::{AtomicIoMetrics, IoMetrics};
use crate::node::{StorageNode, SymbolKey};
use crate::placement::{Placement, PlacementStrategy};
use crate::store::StoreError;

/// Result of a failure-aware byte retrieval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteStoredRetrieval {
    /// The recovered byte object (trimmed to the archive's object length).
    pub data: Vec<u8>,
    /// Blocks read from nodes to serve this retrieval.
    pub io_reads: usize,
}

/// Archive byte blocks stored across simulated nodes under a placement
/// strategy, with failure-aware retrieval through the batched pipeline.
///
/// Retrieval, recoverability checks and failure injection all take `&self`
/// (node liveness and every counter are atomic, block access is
/// borrow-based), so one store can serve many concurrent readers; only
/// content mutation (repair, corruption hooks) needs `&mut self`. The codec
/// is `Arc`-shared with the archive that built the store, so the generator
/// matrix and its multiplication tables exist once per code.
#[derive(Debug)]
pub struct ByteDistributedStore {
    codec: ByteCodec,
    nodes: Vec<StorageNode<Vec<u8>>>,
    placement: Placement,
    metrics: AtomicIoMetrics,
    object_len: usize,
}

impl ByteDistributedStore {
    /// Builds a store for `archive` under the given placement and writes
    /// every coded block to its node.
    pub fn new(archive: &ByteVersionedArchive, strategy: PlacementStrategy) -> Self {
        let entries = archive.stored_entries();
        let placement = Placement::new(strategy, archive.code().n(), entries.len());
        let mut store = Self {
            // Share the archive's code and multiplication tables instead of
            // cloning the generator per store.
            codec: archive.codec().clone(),
            nodes: (0..placement.node_count()).map(StorageNode::new).collect(),
            placement,
            metrics: AtomicIoMetrics::new(),
            object_len: archive.object_len().unwrap_or(0),
        };
        for (entry_idx, entry) in entries.iter().enumerate() {
            for position in 0..entry.shards.shard_count() {
                let key = SymbolKey {
                    entry: entry_idx,
                    position,
                };
                let node = store
                    .placement
                    .try_node_for(key)
                    // audit: panic ok — write path: keys are built from the same archive the placement was provisioned for
                    .expect("placement covers every archive entry");
                // audit: panic ok — placement maps every key into 0..n and the store holds n nodes
                store.nodes[node].put(key, entry.shards.shard(position).to_vec());
                store.metrics.add_symbol_writes(1);
            }
        }
        store
    }

    /// Convenience constructor for colocated placement.
    pub fn colocated(archive: &ByteVersionedArchive) -> Self {
        Self::new(archive, PlacementStrategy::Colocated)
    }

    /// Convenience constructor for dispersed placement.
    pub fn dispersed(archive: &ByteVersionedArchive) -> Self {
        Self::new(archive, PlacementStrategy::Dispersed)
    }

    /// The placement in use.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// A snapshot of the accumulated I/O metrics (`symbol_reads` counts
    /// block reads here).
    pub fn metrics(&self) -> IoMetrics {
        self.metrics.snapshot()
    }

    /// Resets the I/O metrics.
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node (for inspection in tests and experiments).
    pub fn node(&self, id: usize) -> Option<&StorageNode<Vec<u8>>> {
        self.nodes.get(id)
    }

    /// Marks a node failed, or reports [`StoreError::InvalidNode`] when
    /// `node` is out of range.
    pub fn fail_node(&self, node: usize) -> Result<(), StoreError> {
        self.checked_node(node)?.fail();
        Ok(())
    }

    /// Revives a node, or reports [`StoreError::InvalidNode`] when `node` is
    /// out of range.
    pub fn revive_node(&self, node: usize) -> Result<(), StoreError> {
        self.checked_node(node)?.revive();
        Ok(())
    }

    fn checked_node(&self, node: usize) -> Result<&StorageNode<Vec<u8>>, StoreError> {
        self.nodes.get(node).ok_or(StoreError::InvalidNode {
            node,
            n: self.nodes.len(),
        })
    }

    /// Applies a failure pattern over the whole cluster.
    ///
    /// **Overwrite semantics:** within the pattern's length the pattern *is*
    /// the new liveness — covered nodes that the pattern marks alive are
    /// revived even if they were failed before the call. Nodes beyond the
    /// pattern's length are left untouched. Use
    /// [`ByteDistributedStore::apply_pattern_additive`] to layer failures on
    /// top of existing ones instead.
    pub fn apply_pattern(&self, pattern: &FailurePattern) {
        for (idx, node) in self.nodes.iter().enumerate() {
            if pattern.is_failed(idx) {
                node.fail();
            } else if idx < pattern.len() {
                node.revive();
            }
        }
    }

    /// Fails every node the pattern marks failed, leaving all other nodes'
    /// liveness untouched — the additive counterpart of
    /// [`ByteDistributedStore::apply_pattern`], for layering patterns.
    pub fn apply_pattern_additive(&self, pattern: &FailurePattern) {
        for (idx, node) in self.nodes.iter().enumerate() {
            if pattern.is_failed(idx) {
                node.fail();
            }
        }
    }

    /// Fails each node independently with probability `p`.
    pub fn fail_randomly<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> FailurePattern {
        let pattern = FailurePattern::sample(self.nodes.len(), p, rng);
        self.apply_pattern(&pattern);
        pattern
    }

    /// Overwrites one stored block — a fault-injection hook for corruption
    /// experiments and tests.
    ///
    /// # Panics
    ///
    /// Panics if the key is outside the placement.
    pub fn put_block(&mut self, entry: usize, position: usize, block: Vec<u8>) {
        let key = SymbolKey { entry, position };
        let node = self.placement.node_for(key);
        // audit: panic ok — node_for documents the panic; key validity is the caller contract
        self.nodes[node].put(key, block);
    }

    /// Indices of live nodes holding entry `entry`, as positions within the
    /// entry's coded blocks. An entry outside the placement has no live
    /// positions.
    pub fn live_positions(&self, entry: usize) -> Vec<usize> {
        (0..self.placement.codeword_len())
            .filter(|&position| {
                self.placement
                    .try_node_for(SymbolKey { entry, position })
                    // audit: panic ok — placement maps every key into 0..n and the store holds n nodes
                    .is_ok_and(|node| self.nodes[node].is_alive())
            })
            .collect()
    }

    /// Whether a single stored entry is still decodable from live nodes.
    pub fn entry_recoverable(&self, archive: &ByteVersionedArchive, entry: usize) -> bool {
        self.live_positions(entry).len() >= archive.code().k()
    }

    /// Whether every stored object of the archive is recoverable.
    pub fn archive_recoverable(&self, archive: &ByteVersionedArchive) -> bool {
        (0..archive.stored_entry_count()).all(|entry| self.entry_recoverable(archive, entry))
    }

    /// Reads and decodes one stored entry from live nodes through the
    /// batched pipeline, honouring the SEC read planning.
    fn read_entry(
        &self,
        entry_idx: usize,
        payload: StoredPayload,
        shard_len: usize,
    ) -> Result<(usize, ByteShards), StoreError> {
        let live = self.live_positions(entry_idx);
        let Some(target) = read_target(payload) else {
            return Ok((0, ByteShards::zeroed(self.codec.code().k(), shard_len)));
        };
        let plan = plan_read(self.codec.code(), &live, target)
            .map_err(|_| StoreError::Unrecoverable { entry: entry_idx })?;

        // Count the reads first, then borrow the blocks: whole blocks are
        // large, so the decode pipeline works on references instead of
        // cloning every block out of its node.
        for &position in &plan.nodes {
            let key = SymbolKey {
                entry: entry_idx,
                position,
            };
            let node = self.placement.try_node_for(key)?;
            // audit: panic ok — node id came from the placement, which maps into 0..n
            if self.nodes[node].touch(key) {
                self.metrics.add_symbol_reads(1);
            } else {
                self.metrics.add_failed_read();
                return Err(StoreError::Unrecoverable { entry: entry_idx });
            }
        }
        let shares: Vec<(usize, &[u8])> = plan
            .nodes
            .iter()
            .map(|&position| {
                let key = SymbolKey {
                    entry: entry_idx,
                    position,
                };
                // audit: panic ok — same plan.nodes iterated two loops up; placement lookups already succeeded
                let node = self.placement.try_node_for(key).expect("planned above");
                // audit: panic ok — placement node id is in 0..n; touch succeeded above, so the block is stored
                let block = self.nodes[node].peek_stored(key).expect("touched above");
                (position, block.as_slice())
            })
            .collect();
        let decoded = decode_planned(&self.codec, plan.method, target, &shares)?;
        Ok((plan.io_reads, decoded))
    }

    /// Retrieves version `l` of the archive, reading only from live nodes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unrecoverable`] when some required entry has too
    /// few live nodes, [`StoreError::Code`] when a stored block is corrupt
    /// (e.g. wrong length), or a versioning error for an invalid `l`.
    pub fn retrieve_version(
        &self,
        archive: &ByteVersionedArchive,
        l: usize,
    ) -> Result<ByteStoredRetrieval, StoreError> {
        let entries = archive.stored_entries();
        if self.placement.entries() < entries.len() {
            return Err(StoreError::ArchiveMismatch {
                provisioned: self.placement.entries(),
                supplied: entries.len(),
            });
        }
        if archive.is_empty() {
            return Err(StoreError::Versioning(VersioningError::EmptyArchive));
        }
        if l == 0 || l > archive.len() {
            return Err(StoreError::Versioning(VersioningError::NoSuchVersion {
                requested: l,
                available: archive.len(),
            }));
        }
        self.metrics.add_retrieval();

        let out = walk_version(
            archive.config().strategy(),
            entries.len(),
            // audit: panic ok — `idx` comes from walk_version, which stays within 0..entries.len()
            |idx| entries[idx].payload,
            l,
            // audit: panic ok — `idx` comes from walk_version, which stays within 0..entries.len()
            |idx| self.read_entry(idx, entries[idx].payload, entries[idx].shards.shard_len()),
        )?;
        Ok(ByteStoredRetrieval {
            data: out.shards.join(self.object_len),
            io_reads: out.io_reads,
        })
    }

    /// Repairs a failed node: revives it and rebuilds every block it should
    /// hold by decoding each affected entry from `k` live blocks and
    /// re-encoding the lost position. Returns the number of blocks rebuilt.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unrecoverable`] if some affected entry has fewer
    /// than `k` live nodes.
    pub fn repair_node(
        &mut self,
        archive: &ByteVersionedArchive,
        node_id: usize,
    ) -> Result<usize, StoreError> {
        if node_id >= self.nodes.len() {
            return Err(StoreError::InvalidNode {
                node: node_id,
                n: self.nodes.len(),
            });
        }
        let entries = archive.stored_entries();
        let (n, k) = (self.codec.code().n(), self.codec.code().k());
        let mut to_rebuild = Vec::new();
        for entry_idx in 0..entries.len() {
            for position in 0..n {
                let key = SymbolKey {
                    entry: entry_idx,
                    position,
                };
                if self.placement.try_node_for(key)? == node_id {
                    to_rebuild.push(key);
                }
            }
        }
        // audit: panic ok — `node_id < n` was checked at function entry
        self.nodes[node_id].revive();
        // audit: panic ok — `node_id < n` was checked at function entry
        self.nodes[node_id].wipe();
        let mut rebuilt = 0usize;
        for key in to_rebuild {
            // Simulated mid-repair crash, as in `DistributedStore::repair_node`:
            // a later retry must be able to finish the rebuild.
            if crate::fault::buggify("store::repair::abort") {
                return Err(StoreError::Unrecoverable { entry: key.entry });
            }
            let live: Vec<usize> = self
                .live_positions(key.entry)
                .into_iter()
                .filter(|&p| p != key.position)
                .collect();
            if live.len() < k {
                return Err(StoreError::Unrecoverable { entry: key.entry });
            }
            for &position in live.iter().take(k) {
                let skey = SymbolKey {
                    entry: key.entry,
                    position,
                };
                let node = self.placement.try_node_for(skey)?;
                // audit: panic ok — node id came from the placement, which maps into 0..n
                if !self.nodes[node].touch(skey) {
                    return Err(StoreError::Unrecoverable { entry: key.entry });
                }
                self.metrics.add_symbol_reads(1);
            }
            // Borrow the surviving blocks only for the decode/encode pass,
            // so the rebuilt block can be written back afterwards.
            let codeword = {
                let shares: Vec<(usize, &[u8])> = live
                    .iter()
                    .take(k)
                    .map(|&position| {
                        let skey = SymbolKey {
                            entry: key.entry,
                            position,
                        };
                        // audit: panic ok — same live set iterated above; placement lookups already succeeded
                        let node = self.placement.try_node_for(skey).expect("checked above");
                        // audit: panic ok — placement node id is in 0..n; touch succeeded above, so the block is stored
                        let block = self.nodes[node].peek_stored(skey).expect("touched above");
                        (position, block.as_slice())
                    })
                    .collect();
                let object = self.codec.decode_blocks(&shares)?;
                self.codec.encode_blocks(&object)?
            };
            // audit: panic ok — `node_id < n` was checked at function entry
            self.nodes[node_id].put(key, codeword.shard(key.position).to_vec());
            self.metrics.add_symbol_writes(1);
            rebuilt += 1;
        }
        self.metrics.add_repair();
        Ok(rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_erasure::{CodeError, GeneratorForm};
    use sec_versioning::{ArchiveConfig, EncodingStrategy};

    fn versions() -> Vec<Vec<u8>> {
        let v1: Vec<u8> = (0..60).map(|i| (i * 11 + 3) as u8).collect();
        let mut v2 = v1.clone();
        v2[5] ^= 0x7C; // block 0
        let mut v3 = v2.clone();
        v3[25] ^= 0x11; // block 1
        vec![v1, v2, v3]
    }

    fn archive(strategy: EncodingStrategy) -> (ByteVersionedArchive, Vec<Vec<u8>>) {
        let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, strategy).unwrap();
        let mut archive = ByteVersionedArchive::new(config).unwrap();
        let vs = versions();
        archive.append_all(&vs).unwrap();
        (archive, vs)
    }

    #[test]
    fn colocated_store_round_trips_all_strategies() {
        for strategy in [
            EncodingStrategy::BasicSec,
            EncodingStrategy::OptimizedSec,
            EncodingStrategy::ReversedSec,
            EncodingStrategy::NonDifferential,
        ] {
            let (archive, vs) = archive(strategy);
            let store = ByteDistributedStore::colocated(&archive);
            assert_eq!(store.node_count(), 6);
            for (l, expect) in vs.iter().enumerate() {
                let r = store.retrieve_version(&archive, l + 1).unwrap();
                assert_eq!(&r.data, expect, "{strategy:?} version {}", l + 1);
            }
            assert!(store.metrics().symbol_reads > 0);
            assert_eq!(store.metrics().retrievals, vs.len() as u64);
        }
    }

    #[test]
    fn additive_patterns_layer_on_existing_failures() {
        let (archive, _) = archive(EncodingStrategy::BasicSec);
        let store = ByteDistributedStore::colocated(&archive);
        store.fail_node(4).unwrap();
        store.apply_pattern_additive(&FailurePattern::with_failures(6, &[1]));
        assert!(!store.node(4).unwrap().is_alive(), "additive must not revive");
        assert!(!store.node(1).unwrap().is_alive());
        store.apply_pattern(&FailurePattern::with_failures(6, &[1]));
        assert!(
            store.node(4).unwrap().is_alive(),
            "overwrite revives covered nodes"
        );
    }

    #[test]
    fn dispersed_store_uses_distinct_node_sets() {
        let (archive, vs) = archive(EncodingStrategy::BasicSec);
        let store = ByteDistributedStore::dispersed(&archive);
        assert_eq!(store.node_count(), 18);
        let r = store.retrieve_version(&archive, 3).unwrap();
        assert_eq!(r.data, vs[2]);
        assert_eq!(store.node(0).unwrap().stored_symbols(), 1);
    }

    #[test]
    fn io_reads_match_all_alive_archive_retrieval() {
        for strategy in [EncodingStrategy::BasicSec, EncodingStrategy::OptimizedSec] {
            let (archive, vs) = archive(strategy);
            let store = ByteDistributedStore::colocated(&archive);
            for l in 1..=vs.len() {
                let via_store = store.retrieve_version(&archive, l).unwrap().io_reads;
                let via_archive = archive.retrieve_version(l).unwrap().io_reads;
                assert_eq!(via_store, via_archive, "{strategy:?} version {l}");
            }
        }
    }

    #[test]
    fn survives_n_minus_k_failures_and_sparse_reads_stay_cheap() {
        let (archive, vs) = archive(EncodingStrategy::BasicSec);
        let store = ByteDistributedStore::colocated(&archive);
        store.fail_node(0).unwrap();
        store.fail_node(3).unwrap();
        store.fail_node(5).unwrap();
        assert!(store.archive_recoverable(&archive));
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(&store.retrieve_version(&archive, l + 1).unwrap().data, expect);
        }
        // Non-systematic Cauchy: deltas still cost 2γ block reads under
        // failures (any 2γ live rows qualify).
        store.reset_metrics();
        let r = store.retrieve_version(&archive, 2).unwrap();
        assert_eq!(r.io_reads, 3 + 2);
        // A fourth failure makes full objects unrecoverable.
        store.fail_node(1).unwrap();
        assert!(!store.archive_recoverable(&archive));
        assert!(matches!(
            store.retrieve_version(&archive, 1),
            Err(StoreError::Unrecoverable { .. })
        ));
    }

    #[test]
    fn repair_rebuilds_lost_blocks() {
        let (archive, vs) = archive(EncodingStrategy::BasicSec);
        let mut store = ByteDistributedStore::colocated(&archive);
        store.fail_node(2).unwrap();
        let rebuilt = store.repair_node(&archive, 2).unwrap();
        assert_eq!(rebuilt, 3);
        assert_eq!(store.metrics().repairs, 1);
        store.fail_node(0).unwrap();
        store.fail_node(1).unwrap();
        store.fail_node(3).unwrap();
        assert!(store.archive_recoverable(&archive));
        assert_eq!(store.retrieve_version(&archive, 3).unwrap().data, vs[2]);
    }

    #[test]
    fn corrupt_block_length_is_an_error_not_a_panic() {
        let (archive, _) = archive(EncodingStrategy::NonDifferential);
        let mut store = ByteDistributedStore::colocated(&archive);
        // Entry 0, position 0 gets a truncated block: retrieval must surface
        // a ShardSizeMismatch error (via the try_ kernel path), not abort.
        store.put_block(0, 0, vec![0xAB; 3]);
        match store.retrieve_version(&archive, 1) {
            Err(StoreError::Code(CodeError::ShardSizeMismatch { .. })) => {}
            other => panic!("expected ShardSizeMismatch, got {other:?}"),
        }
        // Versions whose entries are intact still retrieve fine.
        assert!(store.retrieve_version(&archive, 2).is_ok());
    }

    #[test]
    fn error_paths() {
        let (archive, _) = archive(EncodingStrategy::BasicSec);
        let store = ByteDistributedStore::colocated(&archive);
        assert!(matches!(
            store.retrieve_version(&archive, 0),
            Err(StoreError::Versioning(VersioningError::NoSuchVersion { .. }))
        ));
        assert!(matches!(
            store.retrieve_version(&archive, 9),
            Err(StoreError::Versioning(VersioningError::NoSuchVersion { .. }))
        ));
        let empty_config =
            ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec).unwrap();
        let empty = ByteVersionedArchive::new(empty_config).unwrap();
        let empty_store = ByteDistributedStore::colocated(&empty);
        assert!(matches!(
            empty_store.retrieve_version(&empty, 1),
            Err(StoreError::Versioning(VersioningError::EmptyArchive))
        ));
    }
}
