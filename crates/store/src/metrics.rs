//! I/O accounting for the simulated store.
//!
//! The live counters are [`AtomicIoMetrics`] so that read paths can record
//! I/O under a shared `&self` borrow — the whole point of the SEC design is
//! that retrieval is cheap, so a store must be able to serve many readers
//! concurrently without serializing on a metrics mutex. Callers observe the
//! counters through [`IoMetrics`], an immutable point-in-time snapshot.

use core::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time snapshot of the counters accumulated by a store (see
/// [`AtomicIoMetrics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoMetrics {
    /// Symbols read from live nodes.
    pub symbol_reads: u64,
    /// Symbols written to nodes (initial placement plus repairs).
    pub symbol_writes: u64,
    /// Read requests that could not be served because the node was dead or
    /// missing the symbol.
    pub failed_reads: u64,
    /// Number of retrieval operations performed.
    pub retrievals: u64,
    /// Number of repair operations performed.
    pub repairs: u64,
}

impl IoMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Accumulates another snapshot's counters into this one (used to
    /// aggregate per-shard or per-object metrics into cluster totals).
    pub fn absorb(&mut self, other: &IoMetrics) {
        self.symbol_reads += other.symbol_reads;
        self.symbol_writes += other.symbol_writes;
        self.failed_reads += other.failed_reads;
        self.retrievals += other.retrievals;
        self.repairs += other.repairs;
    }

    /// Average symbol reads per retrieval, or `None` before any retrieval.
    pub fn reads_per_retrieval(&self) -> Option<f64> {
        if self.retrievals == 0 {
            None
        } else {
            Some(self.symbol_reads as f64 / self.retrievals as f64)
        }
    }
}

impl core::fmt::Display for IoMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "reads={} writes={} failed_reads={} retrievals={} repairs={}",
            self.symbol_reads, self.symbol_writes, self.failed_reads, self.retrievals, self.repairs
        )
    }
}

/// Live I/O counters, updatable under a shared borrow.
///
/// Every mutator is `&self` (relaxed atomic increments — the counters are
/// statistics, not synchronization), so retrieval paths can stay `&self` and
/// run concurrently. [`AtomicIoMetrics::snapshot`] freezes the current values
/// into an [`IoMetrics`].
#[derive(Debug, Default)]
pub struct AtomicIoMetrics {
    symbol_reads: AtomicU64,
    symbol_writes: AtomicU64,
    failed_reads: AtomicU64,
    retrievals: AtomicU64,
    repairs: AtomicU64,
}

impl AtomicIoMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts `n` symbol reads.
    pub fn add_symbol_reads(&self, n: u64) {
        // audit: atomic ok — independent monotonic counter; only totals are observed
        self.symbol_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` symbol writes.
    pub fn add_symbol_writes(&self, n: u64) {
        // audit: atomic ok — independent monotonic counter; only totals are observed
        self.symbol_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one read that hit a dead node or a missing symbol.
    pub fn add_failed_read(&self) {
        // audit: atomic ok — independent monotonic counter; only totals are observed
        self.failed_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one retrieval operation.
    pub fn add_retrieval(&self) {
        // audit: atomic ok — independent monotonic counter; only totals are observed
        self.retrievals.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one repair operation.
    pub fn add_repair(&self) {
        // audit: atomic ok — independent monotonic counter; only totals are observed
        self.repairs.fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the current counter values into a snapshot.
    pub fn snapshot(&self) -> IoMetrics {
        IoMetrics {
            symbol_reads: self.symbol_reads.load(Ordering::Relaxed), // audit: atomic ok — counter total; no cross-counter order claimed
            symbol_writes: self.symbol_writes.load(Ordering::Relaxed), // audit: atomic ok — counter total; no cross-counter order claimed
            failed_reads: self.failed_reads.load(Ordering::Relaxed), // audit: atomic ok — counter total; no cross-counter order claimed
            retrievals: self.retrievals.load(Ordering::Relaxed), // audit: atomic ok — counter total; no cross-counter order claimed
            repairs: self.repairs.load(Ordering::Relaxed), // audit: atomic ok — counter total; no cross-counter order claimed
        }
    }

    /// Resets every counter to zero.
    ///
    /// Prefer [`AtomicIoMetrics::take`] when the pre-reset values matter: a
    /// `snapshot()` followed by `reset()` loses any increments that land
    /// between the two calls.
    pub fn reset(&self) {
        self.take();
    }

    /// Atomically swaps every counter to zero and returns the values that
    /// were cleared.
    ///
    /// Each counter is drained with a single atomic swap, so across reset
    /// epochs every increment is reported exactly once — concurrent
    /// increments land either in the returned snapshot or in the fresh
    /// epoch, never in both and never in neither.
    pub fn take(&self) -> IoMetrics {
        IoMetrics {
            symbol_reads: self.symbol_reads.swap(0, Ordering::Relaxed), // audit: atomic ok — per-counter atomic swap; no cross-counter order claimed
            symbol_writes: self.symbol_writes.swap(0, Ordering::Relaxed), // audit: atomic ok — per-counter atomic swap; no cross-counter order claimed
            failed_reads: self.failed_reads.swap(0, Ordering::Relaxed), // audit: atomic ok — per-counter atomic swap; no cross-counter order claimed
            retrievals: self.retrievals.swap(0, Ordering::Relaxed), // audit: atomic ok — per-counter atomic swap; no cross-counter order claimed
            repairs: self.repairs.swap(0, Ordering::Relaxed), // audit: atomic ok — per-counter atomic swap; no cross-counter order claimed
        }
    }
}

impl Clone for AtomicIoMetrics {
    fn clone(&self) -> Self {
        let s = self.snapshot();
        Self {
            symbol_reads: AtomicU64::new(s.symbol_reads),
            symbol_writes: AtomicU64::new(s.symbol_writes),
            failed_reads: AtomicU64::new(s.failed_reads),
            retrievals: AtomicU64::new(s.retrievals),
            repairs: AtomicU64::new(s.repairs),
        }
    }
}

impl From<&AtomicIoMetrics> for IoMetrics {
    fn from(m: &AtomicIoMetrics) -> Self {
        m.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_averages() {
        let mut m = IoMetrics::new();
        assert_eq!(m.reads_per_retrieval(), None);
        m.symbol_reads = 10;
        m.retrievals = 4;
        assert_eq!(m.reads_per_retrieval(), Some(2.5));
        let s = m.to_string();
        assert!(s.contains("reads=10"));
        assert!(s.contains("retrievals=4"));
        m.reset();
        assert_eq!(m, IoMetrics::default());
    }

    #[test]
    fn atomic_counters_snapshot_and_reset() {
        let m = AtomicIoMetrics::new();
        m.add_symbol_reads(3);
        m.add_symbol_reads(2);
        m.add_symbol_writes(7);
        m.add_failed_read();
        m.add_retrieval();
        m.add_repair();
        let snap = m.snapshot();
        assert_eq!(snap.symbol_reads, 5);
        assert_eq!(snap.symbol_writes, 7);
        assert_eq!(snap.failed_reads, 1);
        assert_eq!(snap.retrievals, 1);
        assert_eq!(snap.repairs, 1);
        assert_eq!(IoMetrics::from(&m), snap);
        let cloned = m.clone();
        assert_eq!(cloned.snapshot(), snap);
        m.reset();
        assert_eq!(m.snapshot(), IoMetrics::default());
        // The clone kept its own counters.
        assert_eq!(cloned.snapshot(), snap);
    }

    #[test]
    fn take_drains_counters_exactly_once() {
        let m = AtomicIoMetrics::new();
        m.add_symbol_reads(4);
        m.add_retrieval();
        let drained = m.take();
        assert_eq!(drained.symbol_reads, 4);
        assert_eq!(drained.retrievals, 1);
        assert_eq!(m.snapshot(), IoMetrics::default());
        // A second take reports nothing: the counters were already drained.
        assert_eq!(m.take(), IoMetrics::default());
    }

    #[test]
    fn absorb_accumulates_totals() {
        let mut total = IoMetrics::new();
        let a = IoMetrics {
            symbol_reads: 3,
            symbol_writes: 1,
            failed_reads: 0,
            retrievals: 2,
            repairs: 0,
        };
        let b = IoMetrics {
            symbol_reads: 5,
            symbol_writes: 0,
            failed_reads: 1,
            retrievals: 1,
            repairs: 1,
        };
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.symbol_reads, 8);
        assert_eq!(total.symbol_writes, 1);
        assert_eq!(total.failed_reads, 1);
        assert_eq!(total.retrievals, 3);
        assert_eq!(total.repairs, 1);
    }

    #[test]
    fn atomic_counters_shared_across_threads() {
        let m = std::sync::Arc::new(AtomicIoMetrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.add_symbol_reads(1);
                        m.add_retrieval();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.symbol_reads, 400);
        assert_eq!(snap.retrievals, 400);
        assert_eq!(snap.reads_per_retrieval(), Some(1.0));
    }
}
