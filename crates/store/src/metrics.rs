//! I/O accounting for the simulated store.

/// Counters accumulated by a [`DistributedStore`](crate::DistributedStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoMetrics {
    /// Symbols read from live nodes.
    pub symbol_reads: u64,
    /// Symbols written to nodes (initial placement plus repairs).
    pub symbol_writes: u64,
    /// Read requests that could not be served because the node was dead or
    /// missing the symbol.
    pub failed_reads: u64,
    /// Number of retrieval operations performed.
    pub retrievals: u64,
    /// Number of repair operations performed.
    pub repairs: u64,
}

impl IoMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Average symbol reads per retrieval, or `None` before any retrieval.
    pub fn reads_per_retrieval(&self) -> Option<f64> {
        if self.retrievals == 0 {
            None
        } else {
            Some(self.symbol_reads as f64 / self.retrievals as f64)
        }
    }
}

impl core::fmt::Display for IoMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "reads={} writes={} failed_reads={} retrievals={} repairs={}",
            self.symbol_reads, self.symbol_writes, self.failed_reads, self.retrievals, self.repairs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_averages() {
        let mut m = IoMetrics::new();
        assert_eq!(m.reads_per_retrieval(), None);
        m.symbol_reads = 10;
        m.retrievals = 4;
        assert_eq!(m.reads_per_retrieval(), Some(2.5));
        let s = m.to_string();
        assert!(s.contains("reads=10"));
        assert!(s.contains("retrievals=4"));
        m.reset();
        assert_eq!(m, IoMetrics::default());
    }
}
