//! Failure patterns: which nodes are down.
//!
//! The paper's static-resilience analysis assumes independent node failures
//! with probability `p`. For the small clusters of its examples (`n = 6`,
//! `n = 10`) every one of the `2^n` patterns can be enumerated exactly; for
//! larger clusters and Monte-Carlo experiments, patterns are sampled.

use rand::Rng;

/// A failure pattern over `n` nodes: `true` means the node has failed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FailurePattern {
    failed: Vec<bool>,
}

impl FailurePattern {
    /// The all-alive pattern.
    pub fn none(n: usize) -> Self {
        Self {
            failed: vec![false; n],
        }
    }

    /// A pattern with exactly the listed nodes failed.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn with_failures(n: usize, failed_nodes: &[usize]) -> Self {
        let mut failed = vec![false; n];
        for &idx in failed_nodes {
            assert!(idx < n, "node index {idx} out of range for {n} nodes");
            failed[idx] = true;
        }
        Self { failed }
    }

    /// Decodes a bitmask (bit `i` set means node `i` failed) — used by the
    /// exhaustive enumerations.
    pub fn from_mask(n: usize, mask: u64) -> Self {
        assert!(n <= 64, "mask-based patterns support at most 64 nodes");
        Self {
            failed: (0..n).map(|i| mask & (1 << i) != 0).collect(),
        }
    }

    /// Samples a pattern where each node fails independently with
    /// probability `p`.
    pub fn sample<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Self {
        Self {
            failed: (0..n).map(|_| rng.gen::<f64>() < p).collect(),
        }
    }

    /// Number of nodes covered by the pattern.
    pub fn len(&self) -> usize {
        self.failed.len()
    }

    /// `true` when the pattern covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }

    /// Whether the given node has failed.
    pub fn is_failed(&self, node: usize) -> bool {
        self.failed.get(node).copied().unwrap_or(false)
    }

    /// Number of failed nodes.
    pub fn failed_count(&self) -> usize {
        self.failed.iter().filter(|&&f| f).count()
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.len() - self.failed_count()
    }

    /// Indices of the failed nodes.
    pub fn failed_nodes(&self) -> Vec<usize> {
        self.failed
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the live nodes.
    pub fn live_nodes(&self) -> Vec<usize> {
        self.failed
            .iter()
            .enumerate()
            .filter(|(_, &f)| !f)
            .map(|(i, _)| i)
            .collect()
    }

    /// Probability of this exact pattern under i.i.d. failures with
    /// probability `p`.
    pub fn probability(&self, p: f64) -> f64 {
        let f = self.failed_count() as i32;
        let a = self.live_count() as i32;
        p.powi(f) * (1.0 - p).powi(a)
    }
}

/// Iterates over all `2^n` failure patterns of an `n`-node cluster.
///
/// # Panics
///
/// Panics when `n > 24` — exhaustive enumeration beyond that is a usage error;
/// use [`FailurePattern::sample`] instead.
pub fn enumerate_patterns(n: usize) -> impl Iterator<Item = FailurePattern> {
    assert!(n <= 24, "exhaustive enumeration is limited to 24 nodes");
    (0u64..(1 << n)).map(move |mask| FailurePattern::from_mask(n, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_queries() {
        let p = FailurePattern::with_failures(6, &[1, 4]);
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
        assert_eq!(p.failed_count(), 2);
        assert_eq!(p.live_count(), 4);
        assert!(p.is_failed(1));
        assert!(!p.is_failed(0));
        assert!(!p.is_failed(99));
        assert_eq!(p.failed_nodes(), vec![1, 4]);
        assert_eq!(p.live_nodes(), vec![0, 2, 3, 5]);
        assert_eq!(FailurePattern::none(3).failed_count(), 0);
    }

    #[test]
    fn mask_round_trip() {
        let p = FailurePattern::from_mask(6, 0b100110);
        assert_eq!(p.failed_nodes(), vec![1, 2, 5]);
        let q = FailurePattern::with_failures(6, &[1, 2, 5]);
        assert_eq!(p, q);
    }

    #[test]
    fn enumeration_covers_all_patterns_once() {
        let patterns: Vec<FailurePattern> = enumerate_patterns(6).collect();
        assert_eq!(patterns.len(), 64);
        let distinct: std::collections::HashSet<Vec<usize>> =
            patterns.iter().map(|p| p.failed_nodes()).collect();
        assert_eq!(distinct.len(), 64);
        // Exactly C(6, j) patterns have j failures.
        for j in 0..=6usize {
            let count = patterns.iter().filter(|p| p.failed_count() == j).count();
            let binom = sec_linalg::combinatorics::binomial_exact(6, j as u64) as usize;
            assert_eq!(count, binom, "patterns with {j} failures");
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        for &p in &[0.05, 0.2, 0.5] {
            let total: f64 = enumerate_patterns(8).map(|pat| pat.probability(p)).sum();
            assert!((total - 1.0).abs() < 1e-12, "p = {p}: {total}");
        }
    }

    #[test]
    fn sampling_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 20_000;
        let p = 0.3;
        let mut failures = 0usize;
        for _ in 0..trials {
            failures += FailurePattern::sample(10, p, &mut rng).failed_count();
        }
        let rate = failures as f64 / (trials * 10) as f64;
        assert!((rate - p).abs() < 0.01, "empirical failure rate {rate}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_failure_index_panics() {
        let _ = FailurePattern::with_failures(3, &[3]);
    }
}
