//! A single simulated storage node.

use std::collections::BTreeMap;

/// Key of one stored coded symbol: which archive entry it belongs to and its
/// position within that entry's codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolKey {
    /// Index of the stored object (archive entry) the symbol encodes.
    pub entry: usize,
    /// Position of the symbol within the entry's codeword (`0..n`).
    pub position: usize,
}

/// One storage node: a failure flag plus the coded values it holds and a
/// read counter.
///
/// The stored value type is generic: the symbol-level [`DistributedStore`]
/// (crate::DistributedStore) keeps one field element per key, while the
/// byte-shard [`ByteDistributedStore`](crate::ByteDistributedStore) keeps a
/// whole `Vec<u8>` shard per key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageNode<V> {
    id: usize,
    alive: bool,
    symbols: BTreeMap<SymbolKey, V>,
    reads: u64,
}

impl<V: Clone> StorageNode<V> {
    /// Creates an empty, healthy node.
    pub fn new(id: usize) -> Self {
        Self {
            id,
            alive: true,
            symbols: BTreeMap::new(),
            reads: 0,
        }
    }

    /// The node's identifier within its cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the node is currently alive.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Marks the node failed. Its contents become unreadable until revived.
    pub fn fail(&mut self) {
        self.alive = false;
    }

    /// Revives the node, keeping whatever it stored before failing
    /// (a crash-recovery model; use [`StorageNode::wipe`] for disk loss).
    pub fn revive(&mut self) {
        self.alive = true;
    }

    /// Clears the node's contents (models permanent data loss).
    pub fn wipe(&mut self) {
        self.symbols.clear();
    }

    /// Stores one coded value.
    pub fn put(&mut self, key: SymbolKey, value: V) {
        self.symbols.insert(key, value);
    }

    /// Reads one coded value, counting the I/O, or `None` when the node is
    /// dead or does not hold the value.
    pub fn read(&mut self, key: SymbolKey) -> Option<V> {
        if !self.alive {
            return None;
        }
        let value = self.symbols.get(&key).cloned();
        if value.is_some() {
            self.reads += 1;
        }
        value
    }

    /// Inspects a value without counting a read (used by repair planning).
    pub fn peek(&self, key: SymbolKey) -> Option<V> {
        self.peek_ref(key).cloned()
    }

    /// Borrowed view of a stored value without counting a read.
    ///
    /// Pair with [`StorageNode::touch`] when the value is large (e.g. a whole
    /// byte block) and cloning it per simulated read would be wasteful.
    pub fn peek_ref(&self, key: SymbolKey) -> Option<&V> {
        if self.alive {
            self.symbols.get(&key)
        } else {
            None
        }
    }

    /// Counts one read against the node if it is alive and holds the value,
    /// without cloning the value out; returns whether the read succeeded.
    pub fn touch(&mut self, key: SymbolKey) -> bool {
        if !self.alive {
            return false;
        }
        let present = self.symbols.contains_key(&key);
        if present {
            self.reads += 1;
        }
        present
    }

    /// Number of symbols stored on this node.
    pub fn stored_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// Number of read operations served so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::{GaloisField, Gf256};

    #[test]
    fn put_read_and_counters() {
        let mut node: StorageNode<Gf256> = StorageNode::new(3);
        assert_eq!(node.id(), 3);
        assert!(node.is_alive());
        let key = SymbolKey {
            entry: 0,
            position: 2,
        };
        assert_eq!(node.read(key), None);
        assert_eq!(node.reads(), 0);
        node.put(key, Gf256::from_u64(9));
        assert_eq!(node.stored_symbols(), 1);
        assert_eq!(node.read(key), Some(Gf256::from_u64(9)));
        assert_eq!(node.reads(), 1);
        assert_eq!(node.peek(key), Some(Gf256::from_u64(9)));
        // Peek does not count.
        assert_eq!(node.reads(), 1);
    }

    #[test]
    fn failed_node_serves_nothing() {
        let mut node: StorageNode<Gf256> = StorageNode::new(0);
        let key = SymbolKey {
            entry: 1,
            position: 0,
        };
        node.put(key, Gf256::ONE);
        node.fail();
        assert!(!node.is_alive());
        assert_eq!(node.read(key), None);
        assert_eq!(node.peek(key), None);
        node.revive();
        assert_eq!(node.read(key), Some(Gf256::ONE));
        node.wipe();
        assert_eq!(node.read(key), None);
        assert_eq!(node.stored_symbols(), 0);
    }
}
