//! A single simulated storage node.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::fault;

/// Key of one stored coded symbol: which archive entry it belongs to and its
/// position within that entry's codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolKey {
    /// Index of the stored object (archive entry) the symbol encodes.
    pub entry: usize,
    /// Position of the symbol within the entry's codeword (`0..n`).
    pub position: usize,
}

/// One storage node: a failure flag plus the coded values it holds and a
/// read counter.
///
/// The stored value type is generic: the symbol-level [`DistributedStore`]
/// (crate::DistributedStore) keeps one field element per key, while the
/// byte-shard [`ByteDistributedStore`](crate::ByteDistributedStore) keeps a
/// whole `Vec<u8>` shard per key.
///
/// Everything a *read path* needs — the failure flag, the read counter, and
/// value lookup — works through `&self`: the flag and counter are atomics, so
/// any number of readers can serve retrievals from a shared node while
/// failure injection flips its liveness concurrently. Only operations that
/// change the stored contents ([`StorageNode::put`], [`StorageNode::wipe`])
/// require `&mut self`.
#[derive(Debug)]
pub struct StorageNode<V> {
    id: usize,
    alive: AtomicBool,
    symbols: BTreeMap<SymbolKey, V>,
    reads: AtomicU64,
}

impl<V: Clone> StorageNode<V> {
    /// Creates an empty, healthy node.
    pub fn new(id: usize) -> Self {
        Self {
            id,
            alive: AtomicBool::new(true),
            symbols: BTreeMap::new(),
            reads: AtomicU64::new(0),
        }
    }

    /// The node's identifier within its cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the node is currently alive.
    pub fn is_alive(&self) -> bool {
        // audit: atomic ok — Acquire pairs with the Release stores in fail/revive
        self.alive.load(Ordering::Acquire)
    }

    /// Marks the node failed. Its contents become unreadable until revived.
    pub fn fail(&self) {
        // audit: atomic ok — Release pairs with the Acquire load in is_alive
        self.alive.store(false, Ordering::Release);
    }

    /// Revives the node, keeping whatever it stored before failing
    /// (a crash-recovery model; use [`StorageNode::wipe`] for disk loss).
    pub fn revive(&self) {
        // audit: atomic ok — Release pairs with the Acquire load in is_alive
        self.alive.store(true, Ordering::Release);
    }

    /// Clears the node's contents (models permanent data loss).
    pub fn wipe(&mut self) {
        self.symbols.clear();
    }

    /// Stores one coded value.
    pub fn put(&mut self, key: SymbolKey, value: V) {
        self.symbols.insert(key, value);
    }

    /// Reads one coded value, counting the I/O, or `None` when the node is
    /// dead or does not hold the value.
    pub fn read(&self, key: SymbolKey) -> Option<V> {
        // Simulated transient read failure: the node is up but this one
        // request is lost, exactly like a live node missing a deadline.
        if !self.is_alive() || fault::buggify("store::node::read") {
            return None;
        }
        let value = self.symbols.get(&key).cloned();
        if value.is_some() {
            // audit: atomic ok — read counter is a statistic; no ordering dependency
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Inspects a value without counting a read (used by repair planning).
    pub fn peek(&self, key: SymbolKey) -> Option<V> {
        self.peek_ref(key).cloned()
    }

    /// Borrowed view of a stored value without counting a read.
    ///
    /// Pair with [`StorageNode::touch`] when the value is large (e.g. a whole
    /// byte block) and cloning it per simulated read would be wasteful.
    pub fn peek_ref(&self, key: SymbolKey) -> Option<&V> {
        if self.is_alive() {
            self.symbols.get(&key)
        } else {
            None
        }
    }

    /// Borrowed view of a stored value regardless of liveness — the crash
    /// model's "blocks survive on disk" view.
    ///
    /// Use after a successful [`StorageNode::touch`]: liveness may flip
    /// concurrently (failure injection is `&self`), and a read that already
    /// passed admission must still be able to borrow the block it counted
    /// instead of panicking or spuriously failing.
    pub fn peek_stored(&self, key: SymbolKey) -> Option<&V> {
        self.symbols.get(&key)
    }

    /// Counts one read against the node if it is alive and holds the value,
    /// without cloning the value out; returns whether the read succeeded.
    pub fn touch(&self, key: SymbolKey) -> bool {
        // Same simulated transient failure as `read`: admission fails, so
        // callers fall back exactly as they would for a dead node.
        if !self.is_alive() || fault::buggify("store::node::read") {
            return false;
        }
        let present = self.symbols.contains_key(&key);
        if present {
            // audit: atomic ok — read counter is a statistic; no ordering dependency
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
        present
    }

    /// Number of symbols stored on this node.
    pub fn stored_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// Number of read operations served so far.
    pub fn reads(&self) -> u64 {
        // audit: atomic ok — statistic read; cross-thread exactness not claimed
        self.reads.load(Ordering::Relaxed)
    }
}

impl<V: Clone> Clone for StorageNode<V> {
    fn clone(&self) -> Self {
        Self {
            id: self.id,
            alive: AtomicBool::new(self.is_alive()),
            symbols: self.symbols.clone(),
            reads: AtomicU64::new(self.reads()),
        }
    }
}

impl<V: Clone + PartialEq> PartialEq for StorageNode<V> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.is_alive() == other.is_alive()
            && self.symbols == other.symbols
            && self.reads() == other.reads()
    }
}

impl<V: Clone + Eq> Eq for StorageNode<V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::{GaloisField, Gf256};

    #[test]
    fn put_read_and_counters() {
        let mut node: StorageNode<Gf256> = StorageNode::new(3);
        assert_eq!(node.id(), 3);
        assert!(node.is_alive());
        let key = SymbolKey {
            entry: 0,
            position: 2,
        };
        assert_eq!(node.read(key), None);
        assert_eq!(node.reads(), 0);
        node.put(key, Gf256::from_u64(9));
        assert_eq!(node.stored_symbols(), 1);
        assert_eq!(node.read(key), Some(Gf256::from_u64(9)));
        assert_eq!(node.reads(), 1);
        assert_eq!(node.peek(key), Some(Gf256::from_u64(9)));
        // Peek does not count.
        assert_eq!(node.reads(), 1);
    }

    #[test]
    fn failed_node_serves_nothing() {
        let mut node: StorageNode<Gf256> = StorageNode::new(0);
        let key = SymbolKey {
            entry: 1,
            position: 0,
        };
        node.put(key, Gf256::ONE);
        node.fail();
        assert!(!node.is_alive());
        assert_eq!(node.read(key), None);
        assert_eq!(node.peek(key), None);
        node.revive();
        assert_eq!(node.read(key), Some(Gf256::ONE));
        node.wipe();
        assert_eq!(node.read(key), None);
        assert_eq!(node.stored_symbols(), 0);
    }

    #[test]
    fn clone_and_eq_track_atomic_state() {
        let mut node: StorageNode<Gf256> = StorageNode::new(1);
        let key = SymbolKey {
            entry: 0,
            position: 0,
        };
        node.put(key, Gf256::ONE);
        let _ = node.read(key);
        let cloned = node.clone();
        assert_eq!(node, cloned);
        node.fail();
        assert_ne!(node, cloned);
        node.revive();
        assert_eq!(node, cloned);
    }

    #[test]
    fn shared_reads_count_concurrently() {
        let mut node: StorageNode<Gf256> = StorageNode::new(0);
        let key = SymbolKey {
            entry: 0,
            position: 1,
        };
        node.put(key, Gf256::ONE);
        let node = std::sync::Arc::new(node);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let node = std::sync::Arc::clone(&node);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        assert!(node.touch(key));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(node.reads(), 200);
    }
}
