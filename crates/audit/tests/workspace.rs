//! Live-workspace self-test: the real `audit.toml` applied to the real
//! source tree must come back clean. This is the same invariant CI enforces
//! via `cargo run -p sec-audit -- check`, kept here so `cargo test` alone
//! catches a regression (a new unannotated site, a lock inversion, a
//! forbidden `unsafe`) without the extra binary run.

use std::path::Path;

use sec_audit::config::AuditConfig;
use sec_audit::source::{discover, SourceFile};

#[test]
fn workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let config_text =
        std::fs::read_to_string(root.join("audit.toml")).expect("workspace audit.toml exists");
    let config = AuditConfig::parse(&config_text).expect("workspace audit.toml parses");
    let rels = discover(&root, &config.include).expect("workspace tree scans");
    assert!(
        rels.len() >= 50,
        "suspiciously few files scanned ({}): include globs out of date?",
        rels.len()
    );
    let files: Vec<SourceFile> = rels
        .iter()
        .map(|rel| SourceFile::load(&root, rel).expect("source file loads"))
        .collect();
    let outcome = sec_audit::run(&config, &files);
    assert!(
        outcome.violations.is_empty(),
        "workspace must stay audit-clean; run `cargo run -p sec-audit -- check` for details:\n{}",
        outcome
            .violations
            .iter()
            .map(|v| format!("  {}:{}: [{}] {}", v.file, v.line, v.rule.id(), v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The inventory side of the run stays populated even when clean.
    assert!(
        outcome.atomics.iter().all(|s| s.reason.is_some()),
        "clean run implies every atomic site carries a justification"
    );
    assert!(
        !outcome.unsafe_sites.is_empty(),
        "the SIMD kernels should put `unsafe` sites in the inventory"
    );
    assert!(
        outcome.unsafe_sites.iter().all(|s| s.reason.is_some()),
        "clean run implies every unsafe site carries a justification"
    );
    assert!(
        outcome
            .unsafe_sites
            .iter()
            .all(|s| s.file.starts_with("crates/gf/src") || s.file.starts_with("crates/net/src")),
        "unsafe must stay confined to the gf (SIMD) and net (syscall FFI) carve-outs: {:?}",
        outcome.unsafe_sites
    );
}
