//! End-to-end fixture tests: each rule family demonstrated on real files
//! under `tests/fixtures/`, driven through the public [`sec_audit::run`]
//! entry point exactly as the binary drives it.

use std::path::Path;

use sec_audit::config::AuditConfig;
use sec_audit::rules::{Rule, Violation};
use sec_audit::source::{discover, SourceFile};

const FIXTURE_CONFIG: &str = r#"
[paths]
include = ["fixtures"]

[rules.lock-hierarchy]
order = ["archive", "objects"]

[rules.panic-freedom]
modules = ["fixtures/panics.rs"]
check-indexing = true

[rules.shared-read]
methods = ["Engine::get_version", "Engine::regressed"]

[rules.unsafe-code]
carve-outs = ["fixtures"]
"#;

fn run_fixtures() -> Vec<Violation> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    let config = AuditConfig::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let rels = discover(&root, &config.include).expect("fixture dir scans");
    assert!(rels.len() >= 7, "fixture set went missing: {rels:?}");
    let files: Vec<SourceFile> = rels
        .iter()
        .map(|rel| SourceFile::load(&root, rel).expect("fixture loads"))
        .collect();
    sec_audit::run(&config, &files).violations
}

fn of_rule(violations: &[Violation], rule: Rule) -> Vec<&Violation> {
    violations.iter().filter(|v| v.rule == rule).collect()
}

#[test]
fn lock_inversion_is_flagged_clean_and_annotated_pass() {
    let violations = run_fixtures();
    let lock = of_rule(&violations, Rule::LockOrder);
    assert_eq!(lock.len(), 1, "{lock:?}");
    assert_eq!(lock[0].file, "fixtures/lock_inversion.rs");
    assert!(lock[0].message.contains("archive"));
    assert!(lock[0].message.contains("objects"));
    // Neither the in-order file nor the justified one contributes.
    assert!(!violations
        .iter()
        .any(|v| v.file.contains("lock_clean") || v.file.contains("lock_annotated")));
}

#[test]
fn unannotated_ordering_is_flagged_justified_and_test_sites_pass() {
    let violations = run_fixtures();
    let atomic = of_rule(&violations, Rule::Atomic);
    assert_eq!(atomic.len(), 1, "{atomic:?}");
    assert_eq!(atomic[0].file, "fixtures/atomics.rs");
    assert!(atomic[0].message.contains("Ordering::Relaxed"));
}

#[test]
fn panic_sites_are_flagged_fallible_and_justified_pass() {
    let violations = run_fixtures();
    let panic = of_rule(&violations, Rule::Panic);
    assert_eq!(panic.len(), 2, "{panic:?}");
    assert!(panic.iter().all(|v| v.file == "fixtures/panics.rs"));
    assert!(panic.iter().any(|v| v.message.contains("unwrap")));
    assert!(panic.iter().any(|v| v.message.contains("indexing")));
}

#[test]
fn shared_read_regression_is_flagged() {
    let violations = run_fixtures();
    let shared = of_rule(&violations, Rule::SharedRead);
    assert_eq!(shared.len(), 1, "{shared:?}");
    assert_eq!(shared[0].file, "fixtures/shared_read.rs");
    assert!(shared[0].message.contains("Engine::regressed"));
}

#[test]
fn bare_unsafe_is_flagged_justified_and_test_sites_pass() {
    let violations = run_fixtures();
    let unsafe_v = of_rule(&violations, Rule::UnsafeBlock);
    assert_eq!(unsafe_v.len(), 1, "{unsafe_v:?}");
    assert_eq!(unsafe_v[0].file, "fixtures/unsafe_blocks.rs");
    assert!(unsafe_v[0].message.contains("`unsafe` block"));
}

#[test]
fn fixture_run_has_no_unexpected_violations() {
    let violations = run_fixtures();
    assert_eq!(violations.len(), 6, "{violations:?}");
}
