//! Fixture for the shared-read guard: `get_version` keeps `&self` (clean),
//! `regressed` takes `&mut self` (flagged when listed in the config).

pub struct Engine {
    versions: Vec<Vec<u8>>,
}

impl Engine {
    pub fn get_version(&self, l: usize) -> Option<&[u8]> {
        self.versions.get(l.checked_sub(1)?).map(Vec::as_slice)
    }

    pub fn regressed(&mut self, l: usize) -> Option<Vec<u8>> {
        self.versions.get_mut(l.checked_sub(1)?).map(std::mem::take)
    }
}
