// Fixture for the `unsafe` rule: a bare block (violation), a justified fn
// (clean), and a test-module site (exempt). Data for the fixture harness —
// never compiled into the crate.

pub fn bare(p: *const u8) -> u8 {
    unsafe { *p }
}

// audit: unsafe ok — callers hand us a pointer into a live, pinned buffer
pub unsafe fn justified(p: *const u8) -> u8 {
    *p
}

#[cfg(test)]
mod tests {
    pub fn in_tests(p: *const u8) -> u8 {
        unsafe { *p }
    }
}
