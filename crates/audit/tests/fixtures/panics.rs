//! Fixture for the panic-freedom rule: unannotated `unwrap`/indexing must be
//! flagged, fallible-style code and justified sites must pass.

pub fn violating(values: &[u32], map: &std::collections::BTreeMap<u32, u32>) -> u32 {
    let first = values[0];
    first + map.get(&first).copied().unwrap()
}

pub fn clean(values: &[u32], map: &std::collections::BTreeMap<u32, u32>) -> Option<u32> {
    let first = values.first()?;
    Some(first + map.get(first)?)
}

pub fn justified(values: &[u32]) -> u32 {
    if values.is_empty() {
        return 0;
    }
    // audit: panic ok — fixture: emptiness checked two lines up
    values[0]
}
