//! Fixture: the same inversion as `lock_inversion.rs`, but carrying a
//! justification annotation — the auditor must accept it.

pub struct Shard {
    pub objects: std::sync::RwLock<Vec<u8>>,
    pub archive: std::sync::RwLock<Vec<u8>>,
}

impl Shard {
    pub fn justified(&self) -> usize {
        let objects = self.objects.write().expect("object map poisoned");
        // audit: lock-order ok — fixture: pretend single-threaded startup path
        let archive = self.archive.read().expect("archive poisoned");
        objects.len() + archive.len()
    }
}
