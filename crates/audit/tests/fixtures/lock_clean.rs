//! Fixture: same locks as `lock_inversion.rs`, acquired in the documented
//! order (archive before object map) — the auditor must stay silent.

pub struct Shard {
    pub objects: std::sync::RwLock<Vec<u8>>,
    pub archive: std::sync::RwLock<Vec<u8>>,
}

impl Shard {
    pub fn ordered(&self) -> usize {
        let archive = self.archive.read().expect("archive poisoned");
        let objects = self.objects.write().expect("object map poisoned");
        archive.len() + objects.len()
    }

    pub fn scoped(&self) -> usize {
        // Release the inner lock before coming back for the outer one: the
        // held set is empty again at the second acquisition.
        let inner = {
            let objects = self.objects.read().expect("object map poisoned");
            objects.len()
        };
        let archive = self.archive.read().expect("archive poisoned");
        inner + archive.len()
    }
}
