//! Fixture: three atomic-ordering sites — one unannotated (must be flagged),
//! one justified, one in test code (must be skipped).

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Counter {
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn miss(&self) {
        // audit: atomic ok — monotonic statistic, no ordering dependency
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let c = Counter {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        };
        c.hit();
        assert_eq!(c.hits.load(Ordering::SeqCst), 1);
    }
}
