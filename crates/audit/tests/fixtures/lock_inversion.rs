//! Fixture: acquires the innermost object-map lock, then the outermost
//! archive lock — a textbook hierarchy inversion the auditor must flag.

pub struct Shard {
    pub objects: std::sync::RwLock<Vec<u8>>,
    pub archive: std::sync::RwLock<Vec<u8>>,
}

impl Shard {
    pub fn inverted(&self) -> usize {
        let objects = self.objects.write().expect("object map poisoned");
        let archive = self.archive.read().expect("archive poisoned");
        objects.len() + archive.len()
    }
}
