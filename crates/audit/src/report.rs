//! Console and markdown rendering of an [`AuditOutcome`](crate::AuditOutcome).

use std::collections::BTreeMap;

use crate::config::AuditConfig;
use crate::rules::Rule;
use crate::AuditOutcome;

/// Console summary: violations (if any) plus one closing line.
pub fn render_text(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    for v in &outcome.violations {
        out.push_str(&v.to_string());
        out.push('\n');
    }
    if outcome.is_clean() {
        out.push_str(&format!(
            "audit: clean — {} files scanned, {} atomic-ordering and {} unsafe sites all justified\n",
            outcome.files_scanned,
            outcome.atomics.len(),
            outcome.unsafe_sites.len()
        ));
    } else {
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for v in &outcome.violations {
            *by_rule.entry(v.rule.id()).or_default() += 1;
        }
        let breakdown: Vec<String> = by_rule.iter().map(|(rule, n)| format!("{n} {rule}")).collect();
        out.push_str(&format!(
            "audit: {} violation(s) in {} files scanned ({})\n",
            outcome.violations.len(),
            outcome.files_scanned,
            breakdown.join(", ")
        ));
    }
    out
}

/// Markdown inventory: the lock hierarchy, the full atomic-ordering table,
/// and any open violations. This is the artifact CI uploads and the source
/// for the inventory section of `docs/INVARIANTS.md`.
pub fn render_markdown(config: &AuditConfig, outcome: &AuditOutcome) -> String {
    let mut md = String::new();
    md.push_str("# Workspace invariant report\n\n");
    md.push_str(&format!(
        "Scanned **{}** files: **{}** violation(s), **{}** atomic-ordering site(s), \
         **{}** `unsafe` site(s).\n\n",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.atomics.len(),
        outcome.unsafe_sites.len()
    ));

    md.push_str("## Lock hierarchy\n\n");
    md.push_str("Outermost first; a lock may only be acquired while holding locks of\nstrictly lower rank (same rank only where marked reentrant).\n\n");
    md.push_str("| Rank | Lock | Source aliases | Reentrant |\n|---|---|---|---|\n");
    for (rank, class) in config.lock_order.iter().enumerate() {
        md.push_str(&format!(
            "| {rank} | `{}` | {} | {} |\n",
            class.name,
            class
                .aliases
                .iter()
                .map(|a| format!("`{a}`"))
                .collect::<Vec<_>>()
                .join(", "),
            if config.is_reentrant(&class.name) {
                "yes"
            } else {
                "no"
            }
        ));
    }
    md.push('\n');

    md.push_str("## Atomic-ordering inventory\n\n");
    if outcome.atomics.is_empty() {
        md.push_str("No atomic orderings in the scanned set.\n\n");
    } else {
        md.push_str("| Site | Ordering | Justification |\n|---|---|---|\n");
        for site in &outcome.atomics {
            md.push_str(&format!(
                "| `{}:{}` | `{}` | {} |\n",
                site.file,
                site.line,
                site.ordering,
                match &site.reason {
                    Some(r) => escape_cell(r),
                    None => "**UNANNOTATED**".to_owned(),
                }
            ));
        }
        md.push('\n');
    }

    md.push_str("## Unsafe-code inventory\n\n");
    if outcome.unsafe_sites.is_empty() {
        md.push_str("No `unsafe` in the carve-out crates.\n\n");
    } else {
        md.push_str("| Site | Kind | Justification |\n|---|---|---|\n");
        for site in &outcome.unsafe_sites {
            md.push_str(&format!(
                "| `{}:{}` | `{}` | {} |\n",
                site.file,
                site.line,
                site.kind,
                match &site.reason {
                    Some(r) => escape_cell(r),
                    None => "**UNANNOTATED**".to_owned(),
                }
            ));
        }
        md.push('\n');
    }

    md.push_str("## Panic policy\n\n");
    if config.panic_modules.is_empty() {
        md.push_str("No designated panic-free modules.\n\n");
    } else {
        md.push_str(
            "The following modules may not `unwrap`/`expect`/`panic!`/`unreachable!` or\nindex slices without an `// audit: panic ok — <reason>` justification:\n\n",
        );
        for module in &config.panic_modules {
            md.push_str(&format!("- `{module}`\n"));
        }
        md.push('\n');
    }

    if !outcome.violations.is_empty() {
        md.push_str("## Open violations\n\n");
        md.push_str("| Site | Rule | Finding |\n|---|---|---|\n");
        for v in &outcome.violations {
            md.push_str(&format!(
                "| `{}:{}` | `{}` | {} |\n",
                v.file,
                v.line,
                v.rule.id(),
                escape_cell(&v.message)
            ));
        }
        md.push('\n');
    }

    let shared: Vec<String> = config
        .shared_read
        .iter()
        .map(|m| format!("`{}::{}`", m.type_name, m.method))
        .collect();
    if !shared.is_empty() {
        md.push_str("## Guarded shared-read APIs\n\n");
        md.push_str(&format!(
            "These must keep `&self` receivers: {}.\n",
            shared.join(", ")
        ));
    }
    md
}

fn escape_cell(text: &str) -> String {
    text.replace('|', "\\|").replace('\n', " ")
}

/// Rules in a stable order for summaries.
pub const ALL_RULES: [Rule; 7] = [
    Rule::LockOrder,
    Rule::Atomic,
    Rule::Panic,
    Rule::SharedRead,
    Rule::UnsafeCode,
    Rule::UnsafeBlock,
    Rule::Annotation,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::atomics::AtomicSite;
    use crate::rules::unsafe_blocks::UnsafeSite;
    use crate::rules::Violation;

    fn outcome() -> AuditOutcome {
        AuditOutcome {
            violations: vec![Violation {
                rule: Rule::Atomic,
                file: "a.rs".into(),
                line: 3,
                message: "`Ordering::Relaxed` without a justification".into(),
            }],
            atomics: vec![AtomicSite {
                file: "a.rs".into(),
                line: 3,
                ordering: "Relaxed".into(),
                reason: None,
            }],
            unsafe_sites: vec![UnsafeSite {
                file: "k.rs".into(),
                line: 9,
                kind: "fn",
                reason: Some("callers pass 16-byte-multiple lengths".into()),
            }],
            files_scanned: 2,
        }
    }

    fn config() -> AuditConfig {
        AuditConfig::parse(
            "[paths]\ninclude = [\"src\"]\n[rules.lock-hierarchy]\norder = [\"archive\"]\n",
        )
        .unwrap()
    }

    #[test]
    fn text_report_summarises_by_rule() {
        let text = render_text(&outcome());
        assert!(text.contains("a.rs:3"));
        assert!(text.contains("1 atomic"));
        let clean = AuditOutcome {
            violations: vec![],
            atomics: vec![],
            unsafe_sites: vec![],
            files_scanned: 5,
        };
        assert!(render_text(&clean).contains("clean"));
    }

    #[test]
    fn markdown_report_has_all_sections() {
        let md = render_markdown(&config(), &outcome());
        assert!(md.contains("# Workspace invariant report"));
        assert!(md.contains("## Lock hierarchy"));
        assert!(md.contains("| 0 | `archive` |"));
        assert!(md.contains("## Atomic-ordering inventory"));
        assert!(md.contains("**UNANNOTATED**"));
        assert!(md.contains("## Unsafe-code inventory"));
        assert!(md.contains("| `k.rs:9` | `fn` | callers pass 16-byte-multiple lengths |"));
        assert!(md.contains("## Open violations"));
    }
}
