//! Source-file discovery and per-file context: lexed tokens, justification
//! annotations, and `#[cfg(test)]` regions (which every rule skips — test
//! code is allowed to `unwrap()` and to take locks in whatever order it
//! pleases).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, line_comments, Token};

/// A parsed justification comment: `// audit: <rule> ok — <reason>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// The rule identifier being suppressed (`lock-order`, `atomic`, `panic`,
    /// `shared-read`).
    pub rule: String,
    /// The justification text after the separator (may be empty — the
    /// `--fix-annotations` stubs start that way).
    pub reason: String,
    /// 1-based line the annotation sits on.
    pub line: u32,
}

/// One scanned source file with everything the rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (used in diagnostics).
    pub rel: String,
    /// Raw source lines (for annotation insertion and context display).
    pub lines: Vec<String>,
    /// Lexed token stream.
    pub tokens: Vec<Token>,
    annotations: BTreeMap<u32, Vec<Annotation>>,
    /// Annotation-shaped comments that did not parse: `(line, problem)`.
    pub malformed: Vec<(u32, String)>,
    /// `test_lines[line - 1]` is true inside a `#[cfg(test)] mod` region.
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Builds a source file from in-memory text (used by fixture tests).
    pub fn from_source(rel: &str, src: &str) -> Self {
        let lines: Vec<String> = src.lines().map(str::to_owned).collect();
        let tokens = lex(src);
        let (annotations, malformed) = scan_annotations(&line_comments(src));
        let test_lines = mark_test_regions(&tokens, lines.len());
        Self {
            rel: rel.to_owned(),
            lines,
            tokens,
            annotations,
            malformed,
            test_lines,
        }
    }

    /// Loads and scans `root/rel`.
    pub fn load(root: &Path, rel: &str) -> io::Result<Self> {
        let src = std::fs::read_to_string(root.join(rel))?;
        Ok(Self::from_source(rel, &src))
    }

    /// Whether `line` (1-based) falls inside a `#[cfg(test)] mod` region.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Finds a justification for `rule` covering `line`: on the line itself,
    /// or in the contiguous comment block immediately above it.
    pub fn annotation_for(&self, rule: &str, line: u32) -> Option<&Annotation> {
        let find = |l: u32| {
            self.annotations
                .get(&l)
                .and_then(|anns| anns.iter().find(|a| a.rule == rule))
        };
        if let Some(a) = find(line) {
            return Some(a);
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let text = self.lines.get((l - 1) as usize)?.trim_start();
            if !text.starts_with("//") {
                return None;
            }
            if let Some(a) = find(l) {
                return Some(a);
            }
            l -= 1;
        }
        None
    }

    /// Every annotation in the file, in line order (used for the inventory
    /// report and for unknown-rule validation).
    pub fn annotations(&self) -> impl Iterator<Item = &Annotation> {
        self.annotations.values().flatten()
    }
}

/// The marker annotations must start with inside a `//` comment.
pub const ANNOTATION_MARKER: &str = "audit:";

/// Parsed annotations by line, plus the `(line, problem)` rejects.
type ScannedAnnotations = (BTreeMap<u32, Vec<Annotation>>, Vec<(u32, String)>);

fn scan_annotations(comments: &[(u32, String)]) -> ScannedAnnotations {
    let mut map: BTreeMap<u32, Vec<Annotation>> = BTreeMap::new();
    let mut malformed = Vec::new();
    for (lineno, comment) in comments {
        let Some(rest) = comment.trim_start().strip_prefix(ANNOTATION_MARKER) else {
            continue;
        };
        match parse_annotation(rest.trim_start(), *lineno) {
            Ok(a) => map.entry(*lineno).or_default().push(a),
            Err(problem) => malformed.push((*lineno, problem)),
        }
    }
    (map, malformed)
}

/// Parses the text after `audit:`: `<rule> ok [— <reason>]`.
fn parse_annotation(rest: &str, line: u32) -> Result<Annotation, String> {
    let mut words = rest.splitn(2, char::is_whitespace);
    let rule = words.next().unwrap_or("").trim();
    if rule.is_empty() {
        return Err("missing rule id after `audit:`".to_owned());
    }
    let tail = words.next().unwrap_or("").trim_start();
    let after_ok = match tail.strip_prefix("ok") {
        // `ok` must be a whole word: end of comment, whitespace, or a
        // reason separator — `okay` is a typo, not a justification.
        Some(rest)
            if rest.is_empty()
                || rest.starts_with(char::is_whitespace)
                || ["—", "-", ":"].iter().any(|s| rest.starts_with(s)) =>
        {
            rest
        }
        _ => {
            return Err(format!(
                "expected `ok` after rule id, found `{}`",
                tail.split_whitespace().next().unwrap_or("")
            ));
        }
    };
    let mut reason = after_ok.trim_start();
    for sep in ["—", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim_start();
            break;
        }
    }
    Ok(Annotation {
        rule: rule.to_owned(),
        reason: reason.trim().to_owned(),
        line,
    })
}

/// Marks every line inside a `#[cfg(test)] mod … { … }` region.
fn mark_test_regions(tokens: &[Token], line_count: usize) -> Vec<bool> {
    let mut marks = vec![false; line_count];
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_cfg_test_attr(tokens, i) {
            i += 1;
            continue;
        }
        // Skip this attribute (7 tokens) plus any further attributes before
        // the item.
        let mut j = i + 7;
        while tokens.get(j).is_some_and(|t| t.is_punct('#')) {
            j = skip_attribute(tokens, j);
        }
        if tokens.get(j).is_some_and(|t| t.is_ident("mod")) {
            // `mod name {` — find the opening brace, then its match.
            let mut k = j + 1;
            while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                k += 1;
            }
            if tokens.get(k).is_some_and(|t| t.is_punct('{')) {
                let open_line = tokens[k].line;
                let close = matching_brace(tokens, k);
                let close_line = tokens.get(close).map_or(line_count as u32, |t| t.line);
                let attr_line = tokens[i].line;
                for l in attr_line..=close_line {
                    if let Some(slot) = marks.get_mut(l.saturating_sub(1) as usize) {
                        *slot = true;
                    }
                }
                let _ = open_line;
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    marks
}

/// Whether the tokens at `i` spell `# [ cfg ( test ) ]`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
        && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
        && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
        && tokens.get(i + 6).is_some_and(|t| t.is_punct(']'))
}

/// Skips one `#[...]` attribute starting at the `#`. Returns the index one
/// past the closing `]`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Index of the `}` matching the `{` at `open`. Returns `tokens.len() - 1`
/// when unbalanced.
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Recursively collects every `.rs` file under `root/<include>` for each
/// include root, as workspace-relative paths in stable sorted order.
pub fn discover(root: &Path, include: &[String]) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for rel_root in include {
        let dir = root.join(rel_root);
        if dir.is_file() {
            files.push(rel_root.clone());
            continue;
        }
        walk(&dir, &mut files)?;
    }
    let root_prefix = root.to_path_buf();
    let mut rels: Vec<String> = files
        .iter()
        .map(|f| {
            let p = PathBuf::from(f);
            let rel = p.strip_prefix(&root_prefix).unwrap_or(&p);
            rel.to_string_lossy().replace('\\', "/")
        })
        .collect();
    rels.sort();
    rels.dedup();
    Ok(rels)
}

fn walk(dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_string_lossy().into_owned());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_parse_with_any_separator() {
        let src = "\
let a = x.load(Ordering::Relaxed); // audit: atomic ok — statistic only
// audit: panic ok - checked above
let b = v[0];
// audit: lock-order ok: documented
let c = l.read();
";
        let f = SourceFile::from_source("t.rs", src);
        assert_eq!(f.annotation_for("atomic", 1).unwrap().reason, "statistic only");
        assert_eq!(f.annotation_for("panic", 3).unwrap().reason, "checked above");
        assert_eq!(f.annotation_for("lock-order", 5).unwrap().reason, "documented");
        assert!(f.annotation_for("atomic", 3).is_none());
    }

    #[test]
    fn annotation_blocks_cover_the_line_below() {
        let src = "\
// A longer justification that spans
// audit: panic ok — the key was checked two lines up
// and continues after the marker line.
let v = map[key];
let w = map[key2];
";
        let f = SourceFile::from_source("t.rs", src);
        assert!(f.annotation_for("panic", 4).is_some());
        // The block does not leak past the first code line.
        assert!(f.annotation_for("panic", 5).is_none());
    }

    #[test]
    fn annotations_inside_string_literals_are_ignored() {
        let src = "let s = \"// audit: panic ok — fake\";\n\
                   let t = format!(\"// audit: {} ok\", rule);\n";
        let f = SourceFile::from_source("t.rs", src);
        assert!(f.annotations().next().is_none());
        assert!(f.malformed.is_empty());
    }

    #[test]
    fn malformed_annotations_are_reported() {
        let src = "let a = 1; // audit: panics okay — typo'd rule grammar\n";
        let f = SourceFile::from_source("t.rs", src);
        assert_eq!(f.malformed.len(), 1);
        assert!(f.malformed[0].1.contains("ok"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "\
fn live() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        x.unwrap();
    }
}

fn also_live() {}
";
        let f = SourceFile::from_source("t.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(7));
        assert!(f.is_test_line(9));
        assert!(!f.is_test_line(11));
    }
}
