//! `audit.toml` parsing.
//!
//! The build environment has no crates.io access, so this module includes a
//! hand-rolled parser for the small TOML subset the auditor needs: `[a.b]`
//! section headers, `key = value` pairs with string / bool / integer /
//! array-of-string values (arrays may span lines), and `#` comments. Anything
//! outside that subset is a hard [`ConfigError`] — the config is in-repo, so
//! failing loudly beats guessing.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation error in `audit.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending construct (0 for file-level errors).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "audit.toml: {}", self.message)
        } else {
            write!(f, "audit.toml:{}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Str(String),
    Bool(bool),
    List(Vec<String>),
}

/// Flat view of the file: `section` → `key` → value.
type Tree = BTreeMap<String, BTreeMap<String, (u32, Value)>>;

fn parse_tree(src: &str) -> Result<Tree, ConfigError> {
    let mut tree: Tree = BTreeMap::new();
    let mut section = String::new();
    let lines: Vec<&str> = src.lines().collect();
    let mut idx = 0usize;
    while idx < lines.len() {
        let lineno = (idx + 1) as u32;
        let raw = lines[idx];
        idx += 1;
        let trimmed = strip_comment(raw).trim().to_owned();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated section header"))?;
            section = name.trim().to_owned();
            if section.is_empty() {
                return Err(err(lineno, "empty section name"));
            }
            tree.entry(section.clone()).or_default();
            continue;
        }
        let (key, mut value_text) = trimmed
            .split_once('=')
            .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
            .ok_or_else(|| err(lineno, "expected `key = value` or `[section]`"))?;
        if key.is_empty() {
            return Err(err(lineno, "empty key"));
        }
        // Multi-line arrays: keep consuming lines until brackets balance.
        if value_text.starts_with('[') {
            while !brackets_balanced(&value_text) {
                let cont = lines.get(idx).ok_or_else(|| err(lineno, "unterminated array"))?;
                idx += 1;
                value_text.push(' ');
                value_text.push_str(strip_comment(cont).trim());
            }
        }
        let value = parse_value(lineno, &value_text)?;
        let dup = tree
            .entry(section.clone())
            .or_default()
            .insert(key.clone(), (lineno, value));
        if dup.is_some() {
            return Err(err(lineno, format!("duplicate key `{key}`")));
        }
    }
    Ok(tree)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn brackets_balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth == 0
}

fn parse_value(line: u32, text: &str) -> Result<Value, ConfigError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = parse_str(text) {
        return Ok(Value::Str(s));
    }
    if let Some(body) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let s = parse_str(part)
                .ok_or_else(|| err(line, format!("array element is not a string: `{part}`")))?;
            items.push(s);
        }
        return Ok(Value::List(items));
    }
    Err(err(line, format!("unsupported value: `{text}`")))
}

fn parse_str(text: &str) -> Option<String> {
    let body = text.strip_prefix('"')?.strip_suffix('"')?;
    // The subset forbids interior unescaped quotes; a simple unescape does.
    let mut out = String::with_capacity(body.len());
    let mut escaped = false;
    for c in body.chars() {
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return None;
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                current.push(c);
                continue;
            }
            '"' if !escaped => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
        escaped = false;
    }
    parts.push(current);
    parts
}

/// One level of the lock hierarchy: a canonical name plus the field/variable
/// identifiers that denote it in source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockClass {
    /// Canonical name used in the `order` list and in diagnostics.
    pub name: String,
    /// Identifiers that refer to this lock in acquisition chains.
    pub aliases: Vec<String>,
}

/// A `Type::method` pair named by the shared-read rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedReadMethod {
    /// The type whose impl block is searched.
    pub type_name: String,
    /// The method that must keep a `&self` receiver.
    pub method: String,
}

/// Typed view of `audit.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditConfig {
    /// Source roots to scan, relative to the workspace root.
    pub include: Vec<String>,
    /// Lock hierarchy, outermost first. Index = rank.
    pub lock_order: Vec<LockClass>,
    /// Canonical lock names that may be acquired multiple times at the same
    /// rank (e.g. per-node locks taken in ascending id order).
    pub reentrant: Vec<String>,
    /// Helper functions that acquire and *return* a guard: callers are
    /// treated as holding the named locks for the guard's lifetime.
    pub guard_returning: BTreeMap<String, Vec<String>>,
    /// Cross-crate method calls the lexical pass cannot resolve: method name
    /// → canonical lock names the callee acquires internally.
    pub method_locks: BTreeMap<String, Vec<String>>,
    /// Path suffixes of the designated panic-free modules.
    pub panic_modules: Vec<String>,
    /// Whether the panic rule also flags `x[i]` indexing in those modules.
    pub check_indexing: bool,
    /// Methods that must keep a `&self` receiver.
    pub shared_read: Vec<SharedReadMethod>,
    /// Source roots whose crate root must carry `#![forbid(unsafe_code)]`.
    /// Defaults to every include root that has a `lib.rs`.
    pub unsafe_carve_outs: Vec<String>,
}

impl AuditConfig {
    /// Parses and validates an `audit.toml` document.
    pub fn parse(src: &str) -> Result<Self, ConfigError> {
        let tree = parse_tree(src)?;
        let get = |section: &str, key: &str| -> Option<&(u32, Value)> {
            tree.get(section).and_then(|s| s.get(key))
        };
        let list = |section: &str, key: &str| -> Result<Vec<String>, ConfigError> {
            match get(section, key) {
                Some((_, Value::List(items))) => Ok(items.clone()),
                Some((line, _)) => Err(err(*line, format!("`{key}` must be a string array"))),
                None => Ok(Vec::new()),
            }
        };
        let map_section = |section: &str| -> Result<BTreeMap<String, Vec<String>>, ConfigError> {
            let mut out = BTreeMap::new();
            if let Some(entries) = tree.get(section) {
                for (key, (line, value)) in entries {
                    match value {
                        Value::List(items) => {
                            out.insert(key.clone(), items.clone());
                        }
                        _ => return Err(err(*line, format!("`{key}` must be a string array"))),
                    }
                }
            }
            Ok(out)
        };

        let include = list("paths", "include")?;
        if include.is_empty() {
            return Err(err(0, "[paths] include must list at least one source root"));
        }

        let order_names = list("rules.lock-hierarchy", "order")?;
        let aliases = map_section("rules.lock-hierarchy.aliases")?;
        let mut lock_order = Vec::new();
        for name in &order_names {
            let mut class_aliases = vec![name.clone()];
            if let Some(extra) = aliases.get(name) {
                for a in extra {
                    if !class_aliases.contains(a) {
                        class_aliases.push(a.clone());
                    }
                }
            }
            lock_order.push(LockClass {
                name: name.clone(),
                aliases: class_aliases,
            });
        }
        for alias_key in aliases.keys() {
            if !order_names.contains(alias_key) {
                return Err(err(
                    0,
                    format!("alias entry `{alias_key}` does not match any lock in `order`"),
                ));
            }
        }
        let reentrant = list("rules.lock-hierarchy", "reentrant")?;
        for r in &reentrant {
            if !order_names.contains(r) {
                return Err(err(0, format!("reentrant lock `{r}` is not in `order`")));
            }
        }
        let guard_returning = map_section("rules.lock-hierarchy.guard-returning")?;
        let method_locks = map_section("rules.lock-hierarchy.methods")?;
        for (name, locks) in guard_returning.iter().chain(method_locks.iter()) {
            for lock in locks {
                if !order_names.contains(lock) {
                    return Err(err(
                        0,
                        format!("`{name}` names unknown lock `{lock}` (not in `order`)"),
                    ));
                }
            }
        }

        let panic_modules = list("rules.panic-freedom", "modules")?;
        let check_indexing = match get("rules.panic-freedom", "check-indexing") {
            Some((_, Value::Bool(b))) => *b,
            Some((line, _)) => return Err(err(*line, "`check-indexing` must be a bool")),
            None => true,
        };

        let mut shared_read = Vec::new();
        for entry in list("rules.shared-read", "methods")? {
            let (type_name, method) = entry
                .split_once("::")
                .ok_or_else(|| err(0, format!("shared-read entry `{entry}` is not `Type::method`")))?;
            shared_read.push(SharedReadMethod {
                type_name: type_name.to_owned(),
                method: method.to_owned(),
            });
        }

        let unsafe_carve_outs = list("rules.unsafe-code", "carve-outs")?;

        Ok(Self {
            include,
            lock_order,
            reentrant,
            guard_returning,
            method_locks,
            panic_modules,
            check_indexing,
            shared_read,
            unsafe_carve_outs,
        })
    }

    /// Rank of the lock class one of whose aliases appears in `chain`, along
    /// with its canonical name. When several aliases appear (rare), the one
    /// closest to the end of the chain — nearest the `.read()` — wins.
    pub fn lock_of_chain(&self, chain: &[String]) -> Option<(usize, &str)> {
        for ident in chain.iter().rev() {
            for (rank, class) in self.lock_order.iter().enumerate() {
                if class.aliases.iter().any(|a| a == ident) {
                    return Some((rank, class.name.as_str()));
                }
            }
        }
        None
    }

    /// Rank of a canonical lock name.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.lock_order.iter().position(|c| c.name == name)
    }

    /// Whether a canonical lock name is same-rank reentrant.
    pub fn is_reentrant(&self, name: &str) -> bool {
        self.reentrant.iter().any(|r| r == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[paths]
include = [
  "src",          # facade
  "crates/engine/src",
]

[rules.lock-hierarchy]
order = ["archive", "nodes"]
reentrant = ["nodes"]

[rules.lock-hierarchy.aliases]
nodes = ["node"]

[rules.lock-hierarchy.methods]
get_version = ["archive"]

[rules.panic-freedom]
modules = ["crates/engine/src/engine.rs"]
check-indexing = true

[rules.shared-read]
methods = ["SecEngine::get_version"]

[rules.unsafe-code]
carve-outs = ["crates/gf/src"]
"#;

    #[test]
    fn parses_the_full_schema() {
        let cfg = AuditConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.include, vec!["src", "crates/engine/src"]);
        assert_eq!(cfg.lock_order.len(), 2);
        assert_eq!(cfg.lock_order[1].aliases, vec!["nodes", "node"]);
        assert!(cfg.is_reentrant("nodes"));
        assert!(!cfg.is_reentrant("archive"));
        assert_eq!(cfg.method_locks["get_version"], vec!["archive"]);
        assert_eq!(cfg.panic_modules, vec!["crates/engine/src/engine.rs"]);
        assert!(cfg.check_indexing);
        assert_eq!(cfg.shared_read[0].type_name, "SecEngine");
        assert_eq!(cfg.shared_read[0].method, "get_version");
        assert_eq!(cfg.unsafe_carve_outs, vec!["crates/gf/src"]);
    }

    #[test]
    fn chain_resolution_prefers_the_innermost_alias() {
        let cfg = AuditConfig::parse(SAMPLE).unwrap();
        let chain = |parts: &[&str]| parts.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            cfg.lock_of_chain(&chain(&["self", "archive"])),
            Some((0, "archive"))
        );
        assert_eq!(cfg.lock_of_chain(&chain(&["slab", "node"])), Some((1, "nodes")));
        // `self.archive_len` style idents do not match: aliases are exact.
        assert_eq!(cfg.lock_of_chain(&chain(&["archive_len"])), None);
    }

    #[test]
    fn rejects_unknown_names() {
        let bad = SAMPLE.replace("reentrant = [\"nodes\"]", "reentrant = [\"bogus\"]");
        assert!(AuditConfig::parse(&bad).is_err());
        let bad = SAMPLE.replace("get_version = [\"archive\"]", "get_version = [\"bogus\"]");
        assert!(AuditConfig::parse(&bad).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(AuditConfig::parse("[paths\ninclude = []").is_err());
        assert!(AuditConfig::parse("[paths]\ninclude = [1, 2]").is_err());
        assert!(AuditConfig::parse("[paths]\ninclude\n").is_err());
        // Missing include list entirely.
        assert!(AuditConfig::parse("[rules.shared-read]\nmethods = []").is_err());
    }
}
