//! A small hand-rolled Rust lexer.
//!
//! The auditor works at the token level, not the AST level: the workspace has
//! no parser crates (no crates.io access), and the four rule families only
//! need identifiers, punctuation and line numbers with comments, strings and
//! literals stripped. The lexer therefore recognises exactly:
//!
//! - identifiers / keywords (one token kind — rules keep their own keyword
//!   lists where the distinction matters),
//! - punctuation, one character per token,
//! - literals (string, raw string, byte string, char, numeric), collapsed to
//!   a single [`Tok::Lit`] so token adjacency stays meaningful,
//! - lifetimes (`'a`, `'static`), which must not be confused with char
//!   literals.
//!
//! Comments and whitespace produce no tokens, but `//` line comments can be
//! captured separately via [`line_comments`] — that is how annotation
//! comments are read without mistaking string literals that merely *look*
//! like comments for the real thing.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`.`, `(`, `[`, `&`, …).
    Punct(char),
    /// A string / char / numeric literal (contents discarded).
    Lit,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number of the token's first character.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Never fails: unrecognised bytes are
/// emitted as punctuation so downstream rules see a best-effort stream.
pub fn lex(src: &str) -> Vec<Token> {
    lex_inner(src, &mut Vec::new())
}

/// Extracts every `//` line comment as `(line, text-after-the-slashes)`,
/// using the full lexer so comments inside string literals are not captured.
pub fn line_comments(src: &str) -> Vec<(u32, String)> {
    let mut comments = Vec::new();
    lex_inner(src, &mut comments);
    comments
}

fn lex_inner(src: &str, comments: &mut Vec<(u32, String)>) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let count_lines = |text: &[char]| text.iter().filter(|&&c| c == '\n').count() as u32;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment: capture to end of line (newline handled above).
                let start = i + 2;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                comments.push((line, chars[start.min(i)..i].iter().collect()));
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, nested as in Rust.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_lines(&chars[start..i]);
            }
            '"' => {
                let start = i;
                i = skip_string(&chars, i);
                line += count_lines(&chars[start..i]);
                toks.push(Token { line, tok: Tok::Lit });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`). A lifetime is a
                // quote followed by an identifier that is *not* closed by
                // another quote.
                let is_lifetime = chars.get(i + 1).is_some_and(|&c2| is_ident_start(c2))
                    && chars.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    toks.push(Token {
                        line,
                        tok: Tok::Lifetime,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    line += count_lines(&chars[start..i.min(chars.len())]);
                    toks.push(Token { line, tok: Tok::Lit });
                }
            }
            c if c.is_ascii_digit() => {
                // Numeric literal: digits, hex/bin prefixes, suffixes. Dots
                // are deliberately *not* consumed so `0..n` lexes as
                // `Lit . . Ident`.
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                toks.push(Token { line, tok: Tok::Lit });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Raw / byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#`.
                let next = chars.get(i).copied();
                if matches!(word.as_str(), "r" | "b" | "br") && matches!(next, Some('"') | Some('#')) {
                    let lit_start = i;
                    if let Some(end) = skip_raw_string(&chars, i) {
                        i = end;
                        line += count_lines(&chars[lit_start..i]);
                        toks.push(Token { line, tok: Tok::Lit });
                        continue;
                    }
                }
                toks.push(Token {
                    line,
                    tok: Tok::Ident(word),
                });
            }
            other => {
                toks.push(Token {
                    line,
                    tok: Tok::Punct(other),
                });
                i += 1;
            }
        }
    }
    toks
}

/// Skips a normal (escaped) string literal starting at the opening quote.
/// Returns the index one past the closing quote.
fn skip_string(chars: &[char], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string body starting at `i` (positioned on `"` or the first
/// `#`). Returns `None` when this is not actually a raw string (e.g. `r #`).
fn skip_raw_string(chars: &[char], mut i: usize) -> Option<usize> {
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return None;
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return Some(j);
            }
        }
        i += 1;
    }
    Some(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r#"
            // line comment with unwrap()
            /* block /* nested */ comment */
            let x = "string with .read() inside";
            let y = 'c';
        "#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'static str { x }");
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 3);
        // No stray Lit tokens from the quotes.
        assert!(!toks.iter().any(|t| t.tok == Tok::Lit));
    }

    #[test]
    fn raw_strings_are_single_literals() {
        let toks = lex(r##"let s = r#"embedded "quotes" and .write()"#;"##);
        let lits = toks.iter().filter(|t| t.tok == Tok::Lit).count();
        assert_eq!(lits, 1);
        assert!(!toks.iter().any(|t| t.is_ident("write")));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = 2;";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let toks = lex("for i in 0..n {}");
        assert!(toks.iter().any(|t| t.is_punct('.')));
        assert!(toks.iter().any(|t| t.is_ident("n")));
    }
}
