//! # sec-audit — workspace invariant auditor
//!
//! The serving stack's correctness rests on rules no compiler checks: a
//! documented lock hierarchy, deliberate atomic `Ordering` choices, and
//! panic-free read paths that hold node locks. This crate is the
//! static-analysis layer that keeps those invariants true by construction.
//! It scans every configured source root with a small hand-rolled Rust lexer
//! (no `syn` — the workspace has no parser crates) and enforces five rule
//! families, configured by the in-repo `audit.toml`:
//!
//! 1. **lock-hierarchy** — `.read()`/`.write()` acquisitions of the known
//!    lock fields must follow the documented partial order
//!    (`archive → placement → slab directory → node slab → object map`);
//! 2. **atomic** — every `Ordering::*` use must carry a justification
//!    comment, and the full inventory is renderable as a markdown report;
//! 3. **panic** — designated read-path modules may not `unwrap`/`expect`/
//!    `panic!`/`unreachable!` or index slices without a justification;
//! 4. **shared-read** — listed retrieval/metrics APIs must keep `&self`
//!    receivers;
//! 5. **unsafe** — every `unsafe` block/fn in the `unsafe_code` carve-out
//!    crates (the SIMD field kernels) must carry a justification, and the
//!    full unsafe inventory is renderable alongside the atomics table.
//!
//! Violations are suppressible only by justification comments of the form
//! `// audit: <rule> ok — <reason>` on, or in the comment block directly
//! above, the offending line. The binary (`cargo run -p sec-audit -- check`)
//! exits nonzero on violations; see `docs/INVARIANTS.md` for the policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use std::fmt;
use std::path::{Path, PathBuf};

use config::{AuditConfig, ConfigError};
use rules::atomics::AtomicSite;
use rules::unsafe_blocks::UnsafeSite;
use rules::{Rule, Violation};
use source::SourceFile;

/// Name of the configuration file that marks the workspace root.
pub const CONFIG_FILE: &str = "audit.toml";

/// Everything one audit pass produced.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Confirmed violations, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Full atomic-ordering inventory (annotated sites included).
    pub atomics: Vec<AtomicSite>,
    /// Full `unsafe` inventory of the carve-out crates (annotated included).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl AuditOutcome {
    /// Whether the audit passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Errors from loading the workspace or its configuration.
#[derive(Debug)]
pub enum AuditError {
    /// Reading a file or directory failed.
    Io(String),
    /// `audit.toml` failed to parse or validate.
    Config(ConfigError),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Io(m) => write!(f, "io error: {m}"),
            AuditError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<ConfigError> for AuditError {
    fn from(e: ConfigError) -> Self {
        AuditError::Config(e)
    }
}

/// Walks upward from `start` to the directory containing `audit.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join(CONFIG_FILE).is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Loads `audit.toml` and every source file it includes.
pub fn load(root: &Path) -> Result<(AuditConfig, Vec<SourceFile>), AuditError> {
    let config_path = root.join(CONFIG_FILE);
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| AuditError::Io(format!("{}: {e}", config_path.display())))?;
    let config = AuditConfig::parse(&text)?;
    let rels = source::discover(root, &config.include)
        .map_err(|e| AuditError::Io(format!("scanning include roots: {e}")))?;
    let mut files = Vec::with_capacity(rels.len());
    for rel in &rels {
        files.push(SourceFile::load(root, rel).map_err(|e| AuditError::Io(format!("{rel}: {e}")))?);
    }
    Ok((config, files))
}

/// Runs every rule over the loaded file set.
pub fn run(config: &AuditConfig, files: &[SourceFile]) -> AuditOutcome {
    let mut violations = Vec::new();
    let mut atomics = Vec::new();
    let mut unsafe_sites = Vec::new();
    for file in files {
        violations.extend(rules::check_annotations(file));
        violations.extend(rules::lock_order::check(config, file));
        if rules::panics::applies(config, &file.rel) {
            violations.extend(rules::panics::check(config, file));
        }
        let (sites, atomic_violations) = rules::atomics::check(file);
        atomics.extend(sites);
        violations.extend(atomic_violations);
        if rules::unsafe_blocks::applies(config, &file.rel) {
            let (sites, unsafe_violations) = rules::unsafe_blocks::check(file);
            unsafe_sites.extend(sites);
            violations.extend(unsafe_violations);
        }
    }
    violations.extend(rules::shared_read::check(config, files));
    violations.extend(rules::lints::check(config, files));
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    violations.dedup();
    atomics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    unsafe_sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    AuditOutcome {
        violations,
        atomics,
        unsafe_sites,
        files_scanned: files.len(),
    }
}

/// Convenience: locate the root at or above `start`, load, and run.
pub fn audit_from(start: &Path) -> Result<(PathBuf, AuditOutcome), AuditError> {
    let root = find_root(start)
        .ok_or_else(|| AuditError::Io(format!("no {CONFIG_FILE} at or above {}", start.display())))?;
    let (config, files) = load(&root)?;
    let outcome = run(&config, &files);
    Ok((root, outcome))
}

/// Inserts `// audit: <rule> ok — TODO: justify` stub comments above the
/// given `(line, rule)` sites, preserving each line's indentation. Returns
/// the new file content. Stubs still fail the audit (the justification is a
/// `TODO`), so `--fix-annotations` marks every site for human follow-up
/// without ever green-lighting it silently.
pub fn insert_annotation_stubs(src: &str, sites: &[(u32, Rule)]) -> String {
    let mut lines: Vec<String> = src.lines().map(str::to_owned).collect();
    let mut work: Vec<(u32, Rule)> = sites
        .iter()
        .copied()
        .filter(|(_, rule)| Rule::ANNOTATABLE.contains(rule))
        .collect();
    work.sort();
    work.dedup();
    // Insert bottom-up so earlier line numbers stay valid.
    for (line, rule) in work.into_iter().rev() {
        let idx = (line.saturating_sub(1)) as usize;
        if idx >= lines.len() {
            continue;
        }
        let indent: String = lines[idx].chars().take_while(|c| c.is_whitespace()).collect();
        lines.insert(idx, format!("{indent}// audit: {} ok — TODO: justify", rule.id()));
    }
    let mut out = lines.join("\n");
    if src.ends_with('\n') {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_stubs_preserve_indentation_and_order() {
        let src = "fn f() {\n    let a = v.unwrap();\n    let b = w.unwrap();\n}\n";
        let fixed = insert_annotation_stubs(src, &[(2, Rule::Panic), (3, Rule::Panic)]);
        let lines: Vec<&str> = fixed.lines().collect();
        assert_eq!(lines[1], "    // audit: panic ok — TODO: justify");
        assert_eq!(lines[2], "    let a = v.unwrap();");
        assert_eq!(lines[3], "    // audit: panic ok — TODO: justify");
        assert_eq!(lines[4], "    let b = w.unwrap();");
    }

    #[test]
    fn non_annotatable_rules_get_no_stubs() {
        let src = "#![no_std]\n";
        let fixed = insert_annotation_stubs(src, &[(1, Rule::UnsafeCode), (1, Rule::Annotation)]);
        assert_eq!(fixed, src);
    }
}
