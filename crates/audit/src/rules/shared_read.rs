//! Shared-read guard: the retrieval/metrics APIs named in `audit.toml` must
//! keep a `&self` receiver. The PR that made the read path shared-read was a
//! deliberate, load-bearing design decision (readers scale without an
//! exclusive borrow); this rule stops a refactor from quietly regressing a
//! listed method to `&mut self`. A method that disappears entirely is also
//! flagged — the config must be renamed in the same change, so the guard
//! follows the API.

use crate::config::AuditConfig;
use crate::rules::model::{scan_fns, Receiver};
use crate::rules::{Rule, Violation};
use crate::source::SourceFile;

/// Runs the rule over the whole file set (a method may live in any file).
pub fn check(cfg: &AuditConfig, files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for wanted in &cfg.shared_read {
        let qname = format!("{}::{}", wanted.type_name, wanted.method);
        let mut found = false;
        let mut ok = false;
        let mut bad_site: Option<(&SourceFile, u32)> = None;
        for file in files {
            for span in scan_fns(&file.tokens) {
                if span.qname != qname || file.is_test_line(span.sig_line) {
                    continue;
                }
                found = true;
                if span.receiver == Receiver::SelfRef {
                    ok = true;
                } else {
                    bad_site = Some((file, span.sig_line));
                }
            }
        }
        if !found {
            out.push(Violation {
                rule: Rule::SharedRead,
                file: "audit.toml".to_owned(),
                line: 0,
                message: format!(
                    "`{qname}` is listed under [rules.shared-read] but no such method exists — \
                     update the config with the renamed API"
                ),
            });
            continue;
        }
        if ok {
            continue;
        }
        if let Some((file, line)) = bad_site {
            if file.annotation_for(Rule::SharedRead.id(), line).is_some() {
                continue;
            }
            out.push(Violation {
                rule: Rule::SharedRead,
                file: file.rel.clone(),
                line,
                message: format!(
                    "`{qname}` must take `&self` — the read path is shared by design and must \
                     not regress to an exclusive borrow"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AuditConfig;

    fn cfg(methods: &str) -> AuditConfig {
        AuditConfig::parse(&format!(
            "[paths]\ninclude = [\"src\"]\n[rules.shared-read]\nmethods = [{methods}]\n"
        ))
        .unwrap()
    }

    #[test]
    fn shared_read_methods_pass_and_regressions_fail() {
        let src = "
impl Engine {
    pub fn get_version(&self, l: usize) -> usize { l }
    pub fn repair_node(&mut self, n: usize) -> usize { n }
}
";
        let files = vec![SourceFile::from_source("src/engine.rs", src)];
        let ok = check(&cfg("\"Engine::get_version\""), &files);
        assert!(ok.is_empty(), "{ok:?}");
        let bad = check(&cfg("\"Engine::repair_node\""), &files);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("&self"));
    }

    #[test]
    fn missing_methods_surface_config_drift() {
        let files = vec![SourceFile::from_source("src/engine.rs", "impl Engine {}")];
        let v = check(&cfg("\"Engine::get_version\""), &files);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no such method"));
    }
}
