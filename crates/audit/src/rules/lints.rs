//! Crate-root lint-attribute check: every scanned crate root (`lib.rs` under
//! an include root) must carry `#![forbid(unsafe_code)]`, except the roots
//! listed as carve-outs (reserved for future SIMD kernels), which must carry
//! `#![deny(unsafe_code)]` instead — deniable per-block with an explicit
//! `#[allow]`, but never silently forbidden-free.

use crate::config::AuditConfig;
use crate::rules::{Rule, Violation};
use crate::source::SourceFile;

/// Runs the check over the loaded file set.
pub fn check(cfg: &AuditConfig, files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for root in &cfg.include {
        let lib_rel = format!("{}/lib.rs", root.trim_end_matches('/'));
        let Some(file) = files.iter().find(|f| f.rel == lib_rel) else {
            continue; // include root without a crate root (e.g. a file list)
        };
        let carve_out = cfg.unsafe_carve_outs.iter().any(|c| c == root);
        let has = |attr: &str| has_inner_attr(file, attr, "unsafe_code");
        let problem = if carve_out {
            if has("forbid") {
                Some(
                    "carve-out crate must use `#![deny(unsafe_code)]`, not `#![forbid]` — \
                     future kernels need per-block `#[allow]`s"
                        .to_owned(),
                )
            } else if !has("deny") {
                Some(
                    "crate root must carry `#![deny(unsafe_code)]` (this crate is a carve-out \
                     reserved for SIMD kernels)"
                        .to_owned(),
                )
            } else {
                None
            }
        } else if !has("forbid") {
            Some("crate root must carry `#![forbid(unsafe_code)]`".to_owned())
        } else {
            None
        };
        if let Some(message) = problem {
            out.push(Violation {
                rule: Rule::UnsafeCode,
                file: lib_rel.clone(),
                line: 1,
                message,
            });
        }
    }
    out
}

/// Looks for `#![<level>(<lint>)]` in the token stream.
fn has_inner_attr(file: &SourceFile, level: &str, lint: &str) -> bool {
    let toks = &file.tokens;
    (0..toks.len()).any(|i| {
        toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_ident(level))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident(lint))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(')'))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AuditConfig;

    fn cfg() -> AuditConfig {
        AuditConfig::parse(
            "[paths]\ninclude = [\"crates/a/src\", \"crates/gf/src\"]\n\
             [rules.unsafe-code]\ncarve-outs = [\"crates/gf/src\"]\n",
        )
        .unwrap()
    }

    #[test]
    fn forbid_everywhere_and_deny_in_the_carve_out() {
        let files = vec![
            SourceFile::from_source("crates/a/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            SourceFile::from_source("crates/gf/src/lib.rs", "#![deny(unsafe_code)]\n"),
        ];
        assert!(check(&cfg(), &files).is_empty());
    }

    #[test]
    fn missing_or_wrong_levels_are_flagged() {
        let files = vec![
            SourceFile::from_source("crates/a/src/lib.rs", "#![warn(missing_docs)]\n"),
            SourceFile::from_source("crates/gf/src/lib.rs", "#![forbid(unsafe_code)]\n"),
        ];
        let v = check(&cfg(), &files);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("forbid(unsafe_code)"));
        assert!(v[1].message.contains("deny(unsafe_code)"));
    }
}
