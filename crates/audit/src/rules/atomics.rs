//! Atomic-ordering audit: every `Ordering::Relaxed/Acquire/Release/AcqRel/
//! SeqCst` use outside tests must carry an `// audit: atomic ok — <reason>`
//! justification. The rule also produces the full inventory (file, line,
//! ordering, reason) that `--report` renders, so the workspace's entire
//! memory-ordering surface is reviewable in one table.

use crate::rules::{Rule, Violation};
use crate::source::SourceFile;

/// The orderings the rule recognises after `Ordering::`.
pub const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One `Ordering::*` site, annotated or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The ordering name (`Relaxed`, …).
    pub ordering: String,
    /// Justification text, when annotated.
    pub reason: Option<String>,
}

/// Scans one file: returns the inventory of non-test sites and a violation
/// for each unannotated one.
pub fn check(file: &SourceFile) -> (Vec<AtomicSite>, Vec<Violation>) {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("Ordering") {
            continue;
        }
        let is_path = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'));
        if !is_path {
            continue;
        }
        let Some(ordering) = toks
            .get(i + 3)
            .and_then(|t| t.ident())
            .filter(|o| ORDERINGS.contains(o))
        else {
            continue;
        };
        let line = toks[i].line;
        if file.is_test_line(line) {
            continue;
        }
        let reason = file
            .annotation_for(Rule::Atomic.id(), line)
            .map(|a| a.reason.clone());
        if reason.is_none() {
            violations.push(Violation {
                rule: Rule::Atomic,
                file: file.rel.clone(),
                line,
                message: format!(
                    "`Ordering::{ordering}` without a justification — add \
                     `// audit: atomic ok — <why this ordering is sufficient>`"
                ),
            });
        }
        sites.push(AtomicSite {
            file: file.rel.clone(),
            line,
            ordering: ordering.to_owned(),
            reason,
        });
    }
    (sites, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unannotated_orderings_are_flagged_and_inventoried() {
        let src = "\
use std::sync::atomic::Ordering;
fn f(a: &AtomicU64) {
    a.load(Ordering::Relaxed);
    // audit: atomic ok — pure statistic, no synchronization piggybacks on it
    a.store(1, Ordering::Release);
}
#[cfg(test)]
mod tests {
    fn t(a: &AtomicU64) { a.load(Ordering::SeqCst); }
}
";
        let f = SourceFile::from_source("t.rs", src);
        let (sites, violations) = check(&f);
        // The `use` line has no ordering variant; the test line is skipped.
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].ordering, "Relaxed");
        assert!(sites[0].reason.is_none());
        assert_eq!(sites[1].ordering, "Release");
        assert!(sites[1].reason.as_deref().unwrap().contains("statistic"));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].line, 3);
    }

    #[test]
    fn cmp_ordering_is_not_confused_with_atomics() {
        let src = "fn f(a: usize, b: usize) -> core::cmp::Ordering { a.cmp(&b) }\n\
                   fn g() -> Ordering { Ordering::Less }\n";
        let f = SourceFile::from_source("t.rs", src);
        let (sites, violations) = check(&f);
        assert!(sites.is_empty());
        assert!(violations.is_empty());
    }
}
