//! Lock-hierarchy rule: acquisitions of the configured `RwLock` fields must
//! respect the documented partial order (outermost first).
//!
//! The analysis is intra-procedural with a file-local call-graph closure:
//!
//! - A zero-argument `.read()` / `.write()` whose receiver chain contains a
//!   configured lock alias is an *acquisition*. A guard bound by a plain
//!   `let g = lock.read()…;` is held until its block closes (or a `drop(g)`);
//!   any other acquisition is a temporary released at the end of its
//!   statement.
//! - Calls are resolved within the file: `self.f()` / `Type::f()` to the
//!   matching impl, bare `f()` to a free function. A resolved callee's
//!   transitive acquisitions are checked against the held set at the call
//!   site. Unresolvable method calls fall back to the configured
//!   `[rules.lock-hierarchy.methods]` table (deliberately sparse: only
//!   distinctive names, so `len()`-style calls never misfire).
//! - Helpers listed in `guard-returning` (e.g. a `read_archive()` that hands
//!   back the guard) count as held by the caller when `let`-bound.
//!
//! Violations fire when a rank lower than (or equal to, unless marked
//! reentrant) the highest held rank is acquired.

use std::collections::BTreeSet;

use crate::config::AuditConfig;
use crate::lexer::{Tok, Token};
use crate::rules::model::{scan_fns, FnSpan};
use crate::rules::{Rule, Violation};
use crate::source::SourceFile;

/// Keywords that can precede `(` or `[` without being calls/indexing.
pub const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "let", "in", "as", "ref", "mut", "move",
    "break", "continue", "where", "impl", "fn", "use", "pub", "dyn", "box", "await",
];

#[derive(Debug, Clone)]
enum Event {
    Acquire {
        lock: String,
        rank: usize,
        line: u32,
        depth: i32,
        bound: bool,
        bound_name: Option<String>,
    },
    Call {
        name: String,
        qualifier: Option<String>,
        is_method: bool,
        is_self: bool,
        line: u32,
        depth: i32,
        bound: bool,
        bound_name: Option<String>,
    },
    StmtEnd {
        depth: i32,
    },
    BlockClose {
        depth_after: i32,
    },
    DropCall {
        name: String,
    },
}

#[derive(Debug)]
struct FnModel {
    span: FnSpan,
    events: Vec<Event>,
}

#[derive(Debug, Clone)]
struct Held {
    lock: String,
    rank: usize,
    depth: i32,
    bound: bool,
    name: Option<String>,
}

/// Runs the rule over one file.
pub fn check(cfg: &AuditConfig, file: &SourceFile) -> Vec<Violation> {
    if cfg.lock_order.is_empty() {
        return Vec::new();
    }
    let spans = scan_fns(&file.tokens);
    let models: Vec<FnModel> = spans
        .iter()
        .map(|span| FnModel {
            span: span.clone(),
            events: build_events(cfg, file, span, &spans),
        })
        .collect();
    let acquire_sets = transitive_acquires(cfg, &models);
    let mut out = Vec::new();
    for model in &models {
        if file.is_test_line(model.span.sig_line) {
            continue;
        }
        replay(cfg, file, model, &models, &acquire_sets, &mut out);
    }
    out.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
    out.dedup();
    out
}

/// Walks one function body into a linear event list. Nested functions'
/// bodies are skipped (they are modelled separately).
fn build_events(cfg: &AuditConfig, file: &SourceFile, span: &FnSpan, all: &[FnSpan]) -> Vec<Event> {
    let toks = &file.tokens;
    let nested: Vec<(usize, usize)> = all
        .iter()
        .filter(|f| f.fn_kw > span.body_open && f.body_close < span.body_close)
        .map(|f| (f.fn_kw, f.body_close))
        .collect();
    let mut events = Vec::new();
    let mut depth = 1i32;
    // Innermost-last stack of pending `let` bindings: (depth, bound name).
    let mut lets: Vec<(i32, Option<String>)> = Vec::new();
    let mut i = span.body_open + 1;
    while i < span.body_close {
        if let Some(&(_, close)) = nested.iter().find(|&&(kw, _)| kw == i) {
            i = close + 1;
            continue;
        }
        let t = &toks[i];
        match &t.tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                events.push(Event::BlockClose { depth_after: depth });
                while lets.last().is_some_and(|&(d, _)| d > depth) {
                    lets.pop();
                }
                i += 1;
            }
            Tok::Punct(';') => {
                events.push(Event::StmtEnd { depth });
                while lets.last().is_some_and(|&(d, _)| d >= depth) {
                    lets.pop();
                }
                i += 1;
            }
            Tok::Ident(word) if word == "let" => {
                let mut j = i + 1;
                while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                let name = toks
                    .get(j)
                    .and_then(Token::ident)
                    .filter(|n| *n != "_")
                    .map(str::to_owned);
                lets.push((depth, name));
                i += 1;
            }
            Tok::Ident(word) if word == "drop" && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) => {
                if let (Some(arg), Some(close)) = (
                    toks.get(i + 2).and_then(Token::ident),
                    Some(i + 3).filter(|&k| toks.get(k).is_some_and(|t| t.is_punct(')'))),
                ) {
                    events.push(Event::DropCall { name: arg.to_owned() });
                    i = close + 1;
                    continue;
                }
                i += 1;
            }
            Tok::Ident(name) if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) => {
                if KEYWORDS.contains(&name.as_str()) {
                    i += 1;
                    continue;
                }
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                if prev.is_some_and(|p| p.is_ident("fn")) {
                    i += 1;
                    continue;
                }
                // `.read()` / `.write()` with zero args on a lock chain is an
                // acquisition, not a call.
                let zero_arg = toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
                let is_dot = prev.is_some_and(|p| p.is_punct('.'));
                if zero_arg && is_dot && (name == "read" || name == "write") {
                    let chain = chain_back(toks, i - 1);
                    if let Some((rank, lock)) = cfg.lock_of_chain(&chain) {
                        let after = i + 3; // one past `)`
                        let (bound, bound_name) = binding_info(toks, after, depth, &lets);
                        events.push(Event::Acquire {
                            lock: lock.to_owned(),
                            rank,
                            line: t.line,
                            depth,
                            bound,
                            bound_name,
                        });
                        i = after;
                        continue;
                    }
                }
                // Otherwise: a call event.
                let qualified =
                    prev.is_some_and(|p| p.is_punct(':')) && i >= 2 && toks[i - 2].is_punct(':');
                let qualifier = if qualified && i >= 3 {
                    toks[i - 3].ident().map(str::to_owned)
                } else {
                    None
                };
                let is_self = if is_dot {
                    let chain = chain_back(toks, i - 1);
                    chain.len() == 1 && chain[0] == "self"
                } else {
                    qualifier.as_deref() == Some("Self")
                };
                let close = matching_paren(toks, i + 1);
                let (bound, bound_name) = binding_info(toks, close + 1, depth, &lets);
                events.push(Event::Call {
                    name: name.clone(),
                    qualifier,
                    is_method: is_dot,
                    is_self,
                    line: t.line,
                    depth,
                    bound,
                    bound_name,
                });
                i += 1;
            }
            _ => i += 1,
        }
    }
    events
}

/// Collects the identifier chain feeding a `.` at token index `dot`
/// (e.g. `self.slabs` → `["self", "slabs"]`, `nodes[p]` → `["nodes"]`).
/// Walks backwards through idents, dots and bracket/paren groups.
fn chain_back(toks: &[Token], dot: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = dot; // index of the `.`
    while let Some(prev) = j.checked_sub(1) {
        match &toks[prev].tok {
            Tok::Ident(word) => {
                if KEYWORDS.contains(&word.as_str()) {
                    break;
                }
                idents.push(word.clone());
                j = prev;
            }
            Tok::Punct('.') => j = prev,
            Tok::Punct(']') => match matching_open(toks, prev, '[', ']') {
                Some(open) => j = open,
                None => break,
            },
            Tok::Punct(')') => match matching_open(toks, prev, '(', ')') {
                Some(open) => j = open,
                None => break,
            },
            _ => break,
        }
    }
    idents.reverse();
    idents
}

/// Index of the opening delimiter matching the closer at `close`, scanning
/// backwards.
fn matching_open(toks: &[Token], close: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i32;
    for j in (0..=close).rev() {
        if toks[j].is_punct(close_c) {
            depth += 1;
        } else if toks[j].is_punct(open_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Decides whether the expression ending just before `after` is directly
/// bound by a pending `let`: only `.expect(…)`, `.unwrap()` and `?` may
/// appear between it and the statement's `;`. Anything else (further method
/// calls, field walks) means the guard is a temporary.
fn binding_info(
    toks: &[Token],
    mut after: usize,
    depth: i32,
    lets: &[(i32, Option<String>)],
) -> (bool, Option<String>) {
    let pending = lets.iter().rev().find(|&&(d, _)| d <= depth);
    let Some((_, name)) = pending else {
        return (false, None);
    };
    loop {
        match toks.get(after).map(|t| &t.tok) {
            Some(Tok::Punct(';')) => return (true, name.clone()),
            Some(Tok::Punct('?')) => after += 1,
            Some(Tok::Punct('.')) => {
                let is_adapter = toks
                    .get(after + 1)
                    .and_then(Token::ident)
                    .is_some_and(|n| n == "expect" || n == "unwrap");
                if is_adapter && toks.get(after + 2).is_some_and(|t| t.is_punct('(')) {
                    after = matching_paren(toks, after + 2) + 1;
                } else {
                    return (false, None);
                }
            }
            _ => return (false, None),
        }
    }
}

/// Fixpoint of "which canonical locks does each function (transitively)
/// acquire", resolving calls file-locally and via the configured method
/// table.
fn transitive_acquires(cfg: &AuditConfig, models: &[FnModel]) -> Vec<BTreeSet<String>> {
    let mut sets: Vec<BTreeSet<String>> = models
        .iter()
        .map(|m| {
            m.events
                .iter()
                .filter_map(|e| match e {
                    Event::Acquire { lock, .. } => Some(lock.clone()),
                    _ => None,
                })
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for idx in 0..models.len() {
            let caller_ty = impl_type(&models[idx].span.qname);
            let mut additions: Vec<String> = Vec::new();
            for event in &models[idx].events {
                if let Event::Call { .. } = event {
                    for lock in callee_locks(cfg, caller_ty, event, models, &sets) {
                        if !sets[idx].contains(&lock) {
                            additions.push(lock);
                        }
                    }
                }
            }
            for lock in additions {
                changed |= sets[idx].insert(lock);
            }
        }
        if !changed {
            return sets;
        }
    }
}

/// The impl type of a qualified function name (`Engine::len` → `Engine`).
fn impl_type(qname: &str) -> Option<&str> {
    qname.split_once("::").map(|(ty, _)| ty)
}

/// Canonical locks a call event acquires, per the resolution policy. A
/// guard-returning helper's locks count here too: the acquisition happens
/// inside the helper whether or not the caller keeps the guard.
fn callee_locks(
    cfg: &AuditConfig,
    caller_ty: Option<&str>,
    event: &Event,
    models: &[FnModel],
    sets: &[BTreeSet<String>],
) -> Vec<String> {
    let Event::Call {
        name,
        qualifier,
        is_method,
        is_self,
        ..
    } = event
    else {
        return Vec::new();
    };
    let mut locks: BTreeSet<String> = BTreeSet::new();
    if let Some(idx) = resolve(
        name,
        qualifier.as_deref(),
        *is_method,
        *is_self,
        caller_ty,
        models,
    ) {
        locks.extend(sets[idx].iter().cloned());
    } else if let Some(configured) = cfg.method_locks.get(name) {
        locks.extend(configured.iter().cloned());
    }
    if let Some(returned) = cfg.guard_returning.get(name) {
        locks.extend(returned.iter().cloned());
    }
    locks.into_iter().collect()
}

/// File-local call resolution. Non-`self` method calls are deliberately
/// *not* resolved by bare name: a method on another type may share a name
/// with a local impl (e.g. `archive.append_version(…)` vs.
/// `SecEngine::append_version`), and a wrong edge would produce false
/// hierarchy violations. Those calls use the config table instead. The same
/// caution applies to `self.f()`: it resolves only within the caller's own
/// impl type, never to a same-named method on another local type.
fn resolve(
    name: &str,
    qualifier: Option<&str>,
    is_method: bool,
    is_self: bool,
    caller_ty: Option<&str>,
    models: &[FnModel],
) -> Option<usize> {
    let find_qname = |q: &str| models.iter().position(|m| m.span.qname == q);
    if is_self || qualifier == Some("Self") {
        let ty = caller_ty?;
        return find_qname(&format!("{ty}::{name}"));
    }
    if let Some(q) = qualifier {
        return find_qname(&format!("{q}::{name}"));
    }
    if !is_method {
        // Bare `f()`: a free function in this file.
        return models.iter().position(|m| m.span.qname == name);
    }
    None
}

/// Replays one function's events against a held-lock set, emitting
/// violations.
fn replay(
    cfg: &AuditConfig,
    file: &SourceFile,
    model: &FnModel,
    models: &[FnModel],
    sets: &[BTreeSet<String>],
    out: &mut Vec<Violation>,
) {
    let mut held: Vec<Held> = Vec::new();
    let order: Vec<&str> = cfg.lock_order.iter().map(|c| c.name.as_str()).collect();
    for event in &model.events {
        match event {
            Event::Acquire {
                lock,
                rank,
                line,
                depth,
                bound,
                bound_name,
            } => {
                if !file.is_test_line(*line) {
                    for h in &held {
                        if let Some(message) = rank_conflict(cfg, *rank, lock, h, &order, None) {
                            push(file, *line, message, out);
                        }
                    }
                }
                held.push(Held {
                    lock: lock.clone(),
                    rank: *rank,
                    depth: *depth,
                    bound: *bound,
                    name: bound_name.clone(),
                });
            }
            Event::Call {
                name,
                line,
                depth,
                bound,
                bound_name,
                ..
            } => {
                let caller_ty = impl_type(&model.span.qname);
                let locks = callee_locks(cfg, caller_ty, event, models, sets);
                if !file.is_test_line(*line) {
                    for lock in &locks {
                        let Some(rank) = cfg.rank_of(lock) else { continue };
                        for h in &held {
                            if let Some(message) = rank_conflict(cfg, rank, lock, h, &order, Some(name))
                            {
                                push(file, *line, message, out);
                            }
                        }
                    }
                }
                // Guard-returning helpers leave their locks held in the
                // caller when the result is `let`-bound.
                if *bound {
                    if let Some(locks) = cfg.guard_returning.get(name) {
                        for lock in locks {
                            if let Some(rank) = cfg.rank_of(lock) {
                                held.push(Held {
                                    lock: lock.clone(),
                                    rank,
                                    depth: *depth,
                                    bound: true,
                                    name: bound_name.clone(),
                                });
                            }
                        }
                    }
                }
            }
            Event::StmtEnd { depth } => {
                held.retain(|h| h.bound || h.depth < *depth);
            }
            Event::BlockClose { depth_after } => {
                held.retain(|h| h.depth <= *depth_after);
            }
            Event::DropCall { name } => {
                if let Some(pos) = held.iter().rposition(|h| h.name.as_deref() == Some(name)) {
                    held.remove(pos);
                }
            }
        }
    }
}

/// The ordering check: acquiring `rank` while `h` is held. Returns the
/// violation message, if any.
fn rank_conflict(
    cfg: &AuditConfig,
    rank: usize,
    lock: &str,
    h: &Held,
    order: &[&str],
    via: Option<&str>,
) -> Option<String> {
    let source = match via {
        Some(callee) => format!("call to `{callee}()` acquires"),
        None => "acquires".to_owned(),
    };
    if rank < h.rank {
        Some(format!(
            "{source} `{lock}` (rank {rank}) while holding `{}` (rank {}); the hierarchy is {}",
            h.lock,
            h.rank,
            order.join(" → ")
        ))
    } else if rank == h.rank && !cfg.is_reentrant(lock) {
        Some(format!(
            "{source} `{lock}` while already holding it, and `{lock}` is not marked reentrant"
        ))
    } else {
        None
    }
}

fn push(file: &SourceFile, line: u32, message: String, out: &mut Vec<Violation>) {
    if file.annotation_for(Rule::LockOrder.id(), line).is_some() {
        return;
    }
    out.push(Violation {
        rule: Rule::LockOrder,
        file: file.rel.clone(),
        line,
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AuditConfig;

    fn cfg() -> AuditConfig {
        AuditConfig::parse(
            r#"
[paths]
include = ["src"]
[rules.lock-hierarchy]
order = ["archive", "slabs", "nodes"]
reentrant = ["nodes"]
[rules.lock-hierarchy.aliases]
nodes = ["node"]
[rules.lock-hierarchy.guard-returning]
read_archive = ["archive"]
[rules.lock-hierarchy.methods]
get_version = ["archive"]
"#,
        )
        .unwrap()
    }

    fn violations(src: &str) -> Vec<Violation> {
        check(&cfg(), &SourceFile::from_source("t.rs", src))
    }

    #[test]
    fn in_order_acquisition_is_clean() {
        let src = "
impl Engine {
    fn append(&self) {
        let mut archive = self.archive.write().expect(\"poisoned\");
        let slabs = self.slabs.read().expect(\"poisoned\");
        let node = self.node.write().expect(\"poisoned\");
        archive.push(node.take(&slabs));
    }
}
";
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }

    #[test]
    fn direct_inversion_is_flagged() {
        let src = "
impl Engine {
    fn bad(&self) {
        let slabs = self.slabs.read().expect(\"poisoned\");
        let archive = self.archive.read().expect(\"poisoned\");
        slabs.use_with(archive);
    }
}
";
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`archive` (rank 0) while holding `slabs`"));
    }

    #[test]
    fn inversion_via_local_call_is_flagged() {
        let src = "
impl Engine {
    fn len(&self) -> usize {
        self.read_archive().len()
    }
    fn read_archive(&self) -> Guard {
        self.archive.read().expect(\"poisoned\")
    }
    fn bad_metrics(&self) {
        let slabs = self.slabs.read().expect(\"poisoned\");
        let versions = self.len();
        slabs.record(versions);
    }
}
";
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("call to `len()`"));
    }

    #[test]
    fn configured_method_edges_apply_to_foreign_receivers() {
        let src = "
impl Cluster {
    fn bad(&self) {
        let slabs = self.slabs.write().expect(\"poisoned\");
        let v = engine.get_version(1);
        slabs.store(v);
    }
}
";
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("get_version"));
    }

    #[test]
    fn temporaries_release_at_statement_end() {
        let src = "
impl Engine {
    fn ok(&self) {
        let n = self.slabs.read().expect(\"poisoned\").len();
        let a = self.archive.read().expect(\"poisoned\");
        a.push(n);
    }
}
";
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }

    #[test]
    fn drop_releases_a_bound_guard() {
        let src = "
impl Engine {
    fn ok(&self) {
        let slabs = self.slabs.read().expect(\"poisoned\");
        let n = slabs.len();
        drop(slabs);
        let a = self.archive.read().expect(\"poisoned\");
        a.push(n);
    }
}
";
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }

    #[test]
    fn block_scope_releases_bound_guards() {
        let src = "
impl Engine {
    fn ok(&self) {
        {
            let slabs = self.slabs.read().expect(\"poisoned\");
            slabs.len();
        }
        let a = self.archive.read().expect(\"poisoned\");
        a.len();
    }
}
";
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }

    #[test]
    fn reentrant_ranks_may_repeat_but_others_may_not() {
        let src = "
impl Engine {
    fn locks_nodes(&self) {
        let a = self.node.read().expect(\"poisoned\");
        let b = self.node.read().expect(\"poisoned\");
        a.merge(b);
    }
    fn double_archive(&self) {
        let a = self.archive.read().expect(\"poisoned\");
        let b = self.archive.read().expect(\"poisoned\");
        a.merge(b);
    }
}
";
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("not marked reentrant"));
    }

    #[test]
    fn annotation_suppresses_and_tests_are_skipped() {
        let src = "
impl Engine {
    fn annotated(&self) {
        let slabs = self.slabs.read().expect(\"poisoned\");
        // audit: lock-order ok — startup only, no concurrent writers exist yet
        let a = self.archive.read().expect(\"poisoned\");
        slabs.use_with(a);
    }
}

#[cfg(test)]
mod tests {
    fn test_helper(&self) {
        let slabs = self.slabs.read().expect(\"poisoned\");
        let a = self.archive.read().expect(\"poisoned\");
        slabs.use_with(a);
    }
}
";
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }

    #[test]
    fn guard_returning_helpers_count_as_held() {
        let src = "
impl Engine {
    fn bad(&self) {
        let node = self.node.write().expect(\"poisoned\");
        let archive = self.read_archive();
        node.store(archive.len());
    }
}
";
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("read_archive"));
    }

    #[test]
    fn reader_with_arguments_is_not_an_acquisition() {
        let src = "
impl Engine {
    fn ok(&self) {
        let slabs = self.slabs.read().expect(\"poisoned\");
        let value = storage_node.read(key);
        slabs.push(value);
    }
}
";
        assert!(violations(src).is_empty(), "{:?}", violations(src));
    }
}
