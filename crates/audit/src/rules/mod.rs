//! The five rule families plus cross-cutting diagnostics.
//!
//! Every rule consumes [`SourceFile`](crate::source::SourceFile)s and emits
//! [`Violation`]s. Rules skip `#[cfg(test)]` regions, and each violation can
//! be suppressed by a justification annotation for the rule's id on (or in
//! the comment block directly above) the offending line.

pub mod atomics;
pub mod lints;
pub mod lock_order;
pub mod model;
pub mod panics;
pub mod shared_read;
pub mod unsafe_blocks;

use crate::source::SourceFile;

/// Identifies a rule family (and its annotation id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Lock acquisitions must follow the configured hierarchy.
    LockOrder,
    /// Every `Ordering::*` use must carry a justification.
    Atomic,
    /// No panicking constructs in designated read-path modules.
    Panic,
    /// Listed retrieval/metrics APIs must keep `&self` receivers.
    SharedRead,
    /// Crate roots must carry the configured `unsafe_code` lint attribute.
    UnsafeCode,
    /// Every `unsafe` block/fn/impl in the carve-out crates must carry a
    /// justification.
    UnsafeBlock,
    /// The annotation itself is malformed or names an unknown rule.
    Annotation,
}

impl Rule {
    /// The rule id used in `// audit: <rule> ok — …` comments and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock-order",
            Rule::Atomic => "atomic",
            Rule::Panic => "panic",
            Rule::SharedRead => "shared-read",
            Rule::UnsafeCode => "unsafe-code",
            Rule::UnsafeBlock => "unsafe",
            Rule::Annotation => "annotation",
        }
    }

    /// Rule ids annotations may legitimately name.
    pub const ANNOTATABLE: [Rule; 5] = [
        Rule::LockOrder,
        Rule::Atomic,
        Rule::Panic,
        Rule::SharedRead,
        Rule::UnsafeBlock,
    ];
}

/// One confirmed finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Validates the annotations themselves: malformed markers and unknown rule
/// ids are violations (a typo'd annotation must not silently suppress
/// nothing), as are annotations whose justification text is still the
/// `--fix-annotations` stub or empty.
pub fn check_annotations(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (line, problem) in &file.malformed {
        if file.is_test_line(*line) {
            continue; // test fixtures may spell annotations however they like
        }
        out.push(Violation {
            rule: Rule::Annotation,
            file: file.rel.clone(),
            line: *line,
            message: format!("malformed audit annotation: {problem}"),
        });
    }
    for ann in file.annotations() {
        if file.is_test_line(ann.line) {
            continue;
        }
        if !Rule::ANNOTATABLE.iter().any(|r| r.id() == ann.rule) {
            out.push(Violation {
                rule: Rule::Annotation,
                file: file.rel.clone(),
                line: ann.line,
                message: format!(
                    "annotation names unknown rule `{}` (expected one of: {})",
                    ann.rule,
                    Rule::ANNOTATABLE.map(Rule::id).join(", ")
                ),
            });
        } else if ann.reason.is_empty() || ann.reason.starts_with("TODO") {
            out.push(Violation {
                rule: Rule::Annotation,
                file: file.rel.clone(),
                line: ann.line,
                message: format!(
                    "annotation for `{}` has no justification — replace the stub with a reason",
                    ann.rule
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_validation_catches_typos_and_stubs() {
        let src = "\
let a = 1; // audit: panics ok — unknown rule id
let b = 2; // audit: panic ok — TODO: justify
let c = 3; // audit: panic ok
let d = 4; // audit: panic ok — a real reason
";
        let f = SourceFile::from_source("t.rs", src);
        let v = check_annotations(&f);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::Annotation));
        assert!(v[0].message.contains("unknown rule"));
        assert!(v[1].message.contains("no justification"));
    }
}
