//! Unsafe-block audit for the carve-out crates: every `unsafe` occurrence
//! (block, fn, impl, trait) outside tests must carry an
//! `// audit: unsafe ok — <reason>` justification stating why the invariants
//! hold. The rule applies only inside the `[rules.unsafe-code]` carve-outs —
//! everywhere else `#![forbid(unsafe_code)]` (enforced by
//! [`lints`](crate::rules::lints)) makes the question moot. Like the atomics
//! rule it also produces the full inventory that `--report` renders, so the
//! workspace's entire unsafe surface is reviewable in one table.

use crate::config::AuditConfig;
use crate::rules::{Rule, Violation};
use crate::source::SourceFile;

/// One `unsafe` site in a carve-out crate, annotated or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What the keyword introduces: `block`, `fn`, `impl`, or `trait`.
    pub kind: &'static str,
    /// Justification text, when annotated.
    pub reason: Option<String>,
}

/// Whether `rel` lies inside one of the configured unsafe carve-out roots.
pub fn applies(config: &AuditConfig, rel: &str) -> bool {
    config.unsafe_carve_outs.iter().any(|root| {
        let root = root.trim_end_matches('/');
        rel == root || rel.strip_prefix(root).is_some_and(|rest| rest.starts_with('/'))
    })
}

/// Scans one carve-out file: returns the inventory of non-test `unsafe`
/// sites and a violation for each unannotated one.
pub fn check(file: &SourceFile) -> (Vec<UnsafeSite>, Vec<Violation>) {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("unsafe") {
            continue;
        }
        let line = toks[i].line;
        if file.is_test_line(line) {
            continue;
        }
        let kind = match toks.get(i + 1) {
            Some(t) if t.is_punct('{') => "block",
            Some(t) if t.is_ident("fn") => "fn",
            Some(t) if t.is_ident("impl") => "impl",
            Some(t) if t.is_ident("trait") => "trait",
            // `unsafe extern`, future syntax, …: still an unsafe promise.
            _ => "block",
        };
        let reason = file
            .annotation_for(Rule::UnsafeBlock.id(), line)
            .map(|a| a.reason.clone());
        if reason.is_none() {
            violations.push(Violation {
                rule: Rule::UnsafeBlock,
                file: file.rel.clone(),
                line,
                message: format!(
                    "`unsafe` {kind} without a justification — add \
                     `// audit: unsafe ok — <why the invariants hold>`"
                ),
            });
        }
        sites.push(UnsafeSite {
            file: file.rel.clone(),
            line,
            kind,
            reason,
        });
    }
    (sites, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AuditConfig {
        AuditConfig::parse(
            "[paths]\ninclude = [\"crates/gf/src\"]\n\
             [rules.unsafe-code]\ncarve-outs = [\"crates/gf/src\"]\n",
        )
        .unwrap()
    }

    #[test]
    fn applies_only_inside_carve_out_roots() {
        let cfg = cfg();
        assert!(applies(&cfg, "crates/gf/src/kernel.rs"));
        assert!(applies(&cfg, "crates/gf/src"));
        assert!(!applies(&cfg, "crates/gf/srcery/x.rs"));
        assert!(!applies(&cfg, "crates/engine/src/engine.rs"));
    }

    #[test]
    fn unannotated_sites_are_flagged_and_inventoried() {
        let src = "\
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
// audit: unsafe ok — caller guarantees the pointer is valid
unsafe fn g(p: *const u8) -> u8 {
    *p
}
#[cfg(test)]
mod tests {
    fn t(p: *const u8) -> u8 { unsafe { *p } }
}
";
        let f = SourceFile::from_source("t.rs", src);
        let (sites, violations) = check(&f);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(sites[0].kind, "block");
        assert!(sites[0].reason.is_none());
        assert_eq!(sites[1].kind, "fn");
        assert!(sites[1].reason.as_deref().unwrap().contains("pointer"));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].line, 2);
        assert!(violations[0].message.contains("`unsafe` block"));
    }

    #[test]
    fn unsafe_code_lint_attribute_is_not_a_site() {
        let src = "#![deny(unsafe_code)]\n#[allow(unsafe_code)]\nmod m {}\n";
        let f = SourceFile::from_source("t.rs", src);
        let (sites, violations) = check(&f);
        assert!(sites.is_empty(), "{sites:?}");
        assert!(violations.is_empty());
    }
}
