//! Panic-freedom rule for the designated read-path modules: no `.unwrap()`,
//! `.expect(…)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` or
//! direct slice/array indexing, unless the site carries an
//! `// audit: panic ok — <why this cannot fire>` justification. A panic on a
//! read path is a poisoned lock for every other reader — the whole point of
//! the shared-read refactor was that readers never take each other down.

use crate::config::AuditConfig;
use crate::lexer::Tok;
use crate::rules::lock_order::KEYWORDS;
use crate::rules::{Rule, Violation};
use crate::source::SourceFile;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Whether the rule applies to this file at all.
pub fn applies(cfg: &AuditConfig, rel: &str) -> bool {
    cfg.panic_modules.iter().any(|m| rel.ends_with(m.as_str()))
}

/// Runs the rule over one designated file.
pub fn check(cfg: &AuditConfig, file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    let mut flag = |line: u32, message: String| {
        if file.is_test_line(line) {
            return;
        }
        if file.annotation_for(Rule::Panic.id(), line).is_some() {
            return;
        }
        out.push(Violation {
            rule: Rule::Panic,
            file: file.rel.clone(),
            line,
            message,
        });
    };
    for i in 0..toks.len() {
        match &toks[i].tok {
            Tok::Ident(name)
                if PANIC_METHODS.contains(&name.as_str())
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && i > 0
                    && toks[i - 1].is_punct('.') =>
            {
                flag(
                    toks[i].line,
                    format!("`.{name}(…)` on a designated read-path module"),
                );
            }
            Tok::Ident(name)
                if PANIC_MACROS.contains(&name.as_str())
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                flag(
                    toks[i].line,
                    format!("`{name}!` on a designated read-path module"),
                );
            }
            Tok::Punct('[') if cfg.check_indexing && is_index_expr(toks, i) => {
                flag(
                    toks[i].line,
                    "slice/array indexing — prefer `.get(…)` or justify why the index is in \
                     bounds"
                        .to_owned(),
                );
            }
            _ => {}
        }
    }
    out
}

/// Whether the `[` at `i` starts an index/slice expression: the previous
/// token must be an expression tail (identifier, `)`, or `]`) rather than a
/// type position, attribute (`#[`), macro (`vec![`) or pattern context.
fn is_index_expr(toks: &[crate::lexer::Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
        return false;
    };
    match &prev.tok {
        Tok::Ident(word) => !KEYWORDS.contains(&word.as_str()),
        Tok::Punct(')') | Tok::Punct(']') => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AuditConfig;

    fn cfg() -> AuditConfig {
        AuditConfig::parse(
            "[paths]\ninclude = [\"src\"]\n\
             [rules.panic-freedom]\nmodules = [\"src/engine.rs\"]\ncheck-indexing = true\n",
        )
        .unwrap()
    }

    fn run(src: &str) -> Vec<Violation> {
        check(&cfg(), &SourceFile::from_source("crates/x/src/engine.rs", src))
    }

    #[test]
    fn module_designation_is_a_path_suffix_match() {
        let c = cfg();
        assert!(applies(&c, "crates/engine/src/engine.rs"));
        assert!(!applies(&c, "crates/engine/src/cluster.rs"));
    }

    #[test]
    fn panicking_constructs_are_flagged() {
        let src = "\
fn f(v: Vec<u8>) -> u8 {
    let a = v.first().unwrap();
    let b = v.last().expect(\"non-empty\");
    if *a > *b { panic!(\"bad\"); }
    match *a { 0 => unreachable!(), _ => v[0] }
}
";
        let v = run(src);
        assert_eq!(v.len(), 5, "{v:?}");
        assert!(v[0].message.contains("unwrap"));
        assert!(v[1].message.contains("expect"));
        assert!(v[2].message.contains("panic!"));
        assert!(v[3].message.contains("unreachable!"));
        assert!(v[4].message.contains("indexing"));
    }

    #[test]
    fn annotated_and_test_sites_are_allowed() {
        let src = "\
fn f(v: Vec<u8>) -> u8 {
    // audit: panic ok — the caller verified v is non-empty one line up
    let a = v.first().unwrap();
    *a
}
#[cfg(test)]
mod tests {
    fn t(v: Vec<u8>) { v.last().unwrap(); }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn non_panicking_lookalikes_are_not_flagged() {
        let src = "\
fn f(v: Vec<u8>, m: &Map) -> u8 {
    let a = v.first().copied().unwrap_or(0);
    let b = v.iter().map(|x| x + 1).collect::<Vec<u8>>();
    let c: &[u8] = &v[..];
    let d = vec![1u8, 2];
    let _ = (b, c, d, m);
    a
}
";
        // `unwrap_or` is a distinct identifier; `vec![` follows `!`; `&v[..]`
        // slicing *is* flagged-worthy only after an expression — here `v`
        // precedes `[`, so it is an index expression and the only finding.
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("indexing"));
    }
}
