//! A lightweight structural model on top of the token stream: impl blocks,
//! function spans and receivers. Shared by the lock-hierarchy rule (which
//! needs per-function bodies and a file-local call graph) and the
//! shared-read rule (which needs receivers by qualified name).

use crate::lexer::{Tok, Token};
use crate::source::matching_brace;

/// How a method takes `self`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// `&self` (possibly with a lifetime).
    SelfRef,
    /// `&mut self`.
    SelfMut,
    /// `self` or `mut self` by value.
    SelfValue,
    /// No receiver (free function or associated function).
    None,
}

/// One function with a body, located in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// `Type::name` inside an impl block, bare `name` otherwise.
    pub qname: String,
    /// The bare function name.
    pub name: String,
    /// Receiver kind.
    pub receiver: Receiver,
    /// 1-based line of the `fn` keyword.
    pub sig_line: u32,
    /// Token index of the `fn` keyword.
    pub fn_kw: usize,
    /// Token index of the body's `{`.
    pub body_open: usize,
    /// Token index of the body's `}`.
    pub body_close: usize,
}

/// Finds every function with a body, tracking the enclosing impl type.
pub fn scan_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    // (type name, brace depth of the impl body).
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            while impl_stack.last().is_some_and(|&(_, d)| depth < d) {
                impl_stack.pop();
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((name, body_open)) = parse_impl_header(tokens, i) {
                depth += 1;
                impl_stack.push((name, depth));
                i = body_open + 1;
                continue;
            }
        }
        if t.is_ident("fn") && tokens.get(i + 1).and_then(Token::ident).is_some() {
            let name = tokens[i + 1].ident().unwrap_or_default().to_owned();
            // Scan to the body `{`; a `;` first means a bodiless trait decl.
            let mut j = i + 2;
            let mut body_open = None;
            while let Some(tk) = tokens.get(j) {
                if tk.is_punct('{') {
                    body_open = Some(j);
                    break;
                }
                if tk.is_punct(';') {
                    break;
                }
                j += 1;
            }
            let Some(open) = body_open else {
                i += 2;
                continue;
            };
            let close = matching_brace(tokens, open);
            let receiver = parse_receiver(tokens, i + 2, open);
            let qname = match impl_stack.last() {
                Some((ty, _)) => format!("{ty}::{name}"),
                None => name.clone(),
            };
            fns.push(FnSpan {
                qname,
                name,
                receiver,
                sig_line: tokens[i].line,
                fn_kw: i,
                body_open: open,
                body_close: close,
            });
            // Do not skip the body: nested functions are discovered too, and
            // brace/impl tracking continues naturally.
            i += 2;
            continue;
        }
        i += 1;
    }
    fns
}

/// Parses `impl … {`, returning the implemented type's name and the index of
/// the body's `{`. For `impl Trait for Type` the type after `for` wins.
fn parse_impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angle_group(tokens, j);
    }
    let mut name: Option<String> = None;
    let mut in_where = false;
    let mut angle = 0i32;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('{') {
            return name.map(|n| (n, j));
        }
        if t.is_punct(';') {
            return None;
        }
        match &t.tok {
            Tok::Punct('<') => angle += 1,
            // `->` is not an angle close; skip it (the `-` was a no-op).
            Tok::Punct('>') if !tokens.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('-')) => {
                angle -= 1;
            }
            Tok::Ident(word) if angle == 0 && !in_where => {
                if word == "for" {
                    // `impl Trait for Type`: the type after `for` wins.
                    name = None;
                } else if word == "where" {
                    in_where = true;
                } else if name.is_none() && !matches!(word.as_str(), "dyn" | "mut" | "const") {
                    name = Some(word.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Skips one `<…>` group starting at the `<`. `->` arrows inside are not
/// counted as closers.
fn skip_angle_group(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !tokens.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Determines the receiver from the tokens between the function name and the
/// body brace.
fn parse_receiver(tokens: &[Token], mut j: usize, body_open: usize) -> Receiver {
    // Skip generics on the function itself (`fn f<F: Fn(usize)>(…)`) so the
    // first `(` we see is the parameter list.
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angle_group(tokens, j);
    }
    while j < body_open && !tokens[j].is_punct('(') {
        j += 1;
    }
    if j >= body_open {
        return Receiver::None;
    }
    // First parameter: tokens up to the first top-level `,` or the closing
    // `)` of the parameter list.
    let mut depth = 0i32;
    let mut first_param = Vec::new();
    let mut k = j;
    while let Some(t) = tokens.get(k) {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Punct(',') if depth == 1 => break,
            _ => {
                if depth >= 1 {
                    first_param.push(t.clone());
                }
            }
        }
        k += 1;
    }
    let has_self = first_param.iter().any(|t| t.is_ident("self"));
    if !has_self {
        return Receiver::None;
    }
    let has_amp = first_param.iter().any(|t| t.is_punct('&'));
    let has_mut = first_param.iter().any(|t| t.is_ident("mut"));
    match (has_amp, has_mut) {
        (true, true) => Receiver::SelfMut,
        (true, false) => Receiver::SelfRef,
        (false, _) => Receiver::SelfValue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_fns_with_impl_context_and_receivers() {
        let src = "
impl<F: GaloisField> DistributedStore<F> {
    pub fn retrieve(&self, l: usize) -> usize { l }
    pub fn repair(&mut self) {}
    fn consume(self) {}
    pub fn new() -> Self { Self }
}
impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
}
fn free_helper(x: usize) -> usize { x }
";
        let toks = lex(src);
        let fns = scan_fns(&toks);
        let by_name: Vec<(&str, Receiver)> =
            fns.iter().map(|f| (f.qname.as_str(), f.receiver)).collect();
        assert_eq!(
            by_name,
            vec![
                ("DistributedStore::retrieve", Receiver::SelfRef),
                ("DistributedStore::repair", Receiver::SelfMut),
                ("DistributedStore::consume", Receiver::SelfValue),
                ("DistributedStore::new", Receiver::None),
                ("StoreError::fmt", Receiver::SelfRef),
                ("free_helper", Receiver::None),
            ]
        );
    }

    #[test]
    fn generic_fn_params_do_not_confuse_the_receiver() {
        let src = "impl T { fn go<F: Fn(usize) -> bool>(&self, f: F) {} }";
        let fns = scan_fns(&lex(src));
        assert_eq!(fns[0].receiver, Receiver::SelfRef);
    }

    #[test]
    fn nested_fns_are_discovered() {
        let src = "fn outer() { fn inner(x: usize) -> usize { x } inner(1); }";
        let fns = scan_fns(&lex(src));
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}
