//! `sec-audit` — the workspace invariant auditor binary.
//!
//! ```text
//! sec-audit check [--root DIR] [--report FILE] [--fix-annotations]
//! ```
//!
//! `check` (the default) scans the configured source roots and exits
//! nonzero on violations. `--report` additionally writes the markdown
//! inventory (lock hierarchy, atomic orderings, panic policy, open
//! violations). `--fix-annotations` inserts `// audit: <rule> ok — TODO:
//! justify` stubs above every violating line — the stubs still fail the
//! audit until a human replaces the TODO with a real justification.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use sec_audit::rules::Rule;
use sec_audit::{insert_annotation_stubs, load, report, run, CONFIG_FILE};

struct Args {
    root: Option<PathBuf>,
    report: Option<PathBuf>,
    fix_annotations: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        report: None,
        fix_annotations: false,
    };
    let mut iter = std::env::args().skip(1).peekable();
    let mut saw_command = false;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" if !saw_command => saw_command = true,
            "--root" => {
                args.root = Some(PathBuf::from(
                    iter.next().ok_or("--root needs a directory argument")?,
                ));
            }
            "--report" => {
                args.report = Some(PathBuf::from(
                    iter.next().ok_or("--report needs a file argument")?,
                ));
            }
            "--fix-annotations" => args.fix_annotations = true,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: sec-audit check [--root DIR] [--report FILE] [--fix-annotations]\n\
                     The root defaults to the nearest ancestor directory containing {CONFIG_FILE}."
                ));
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let start = args
        .root
        .clone()
        .unwrap_or_else(|| std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")));
    let root = match sec_audit::find_root(&start) {
        Some(root) => root,
        None => {
            eprintln!("sec-audit: no {CONFIG_FILE} at or above {}", start.display());
            return ExitCode::from(2);
        }
    };
    let (config, files) = match load(&root) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("sec-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = run(&config, &files);

    print!("{}", report::render_text(&outcome));

    if let Some(report_path) = &args.report {
        let md = report::render_markdown(&config, &outcome);
        if let Err(e) = std::fs::write(report_path, md) {
            eprintln!("sec-audit: writing {}: {e}", report_path.display());
            return ExitCode::from(2);
        }
        println!("report written to {}", report_path.display());
    }

    if args.fix_annotations && !outcome.violations.is_empty() {
        let mut by_file: BTreeMap<&str, Vec<(u32, Rule)>> = BTreeMap::new();
        for v in &outcome.violations {
            if Rule::ANNOTATABLE.contains(&v.rule) {
                by_file.entry(&v.file).or_default().push((v.line, v.rule));
            }
        }
        for (rel, sites) in by_file {
            let path = root.join(rel);
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("sec-audit: reading {rel}: {e}");
                    return ExitCode::from(2);
                }
            };
            let fixed = insert_annotation_stubs(&src, &sites);
            if fixed != src {
                if let Err(e) = std::fs::write(&path, fixed) {
                    eprintln!("sec-audit: writing {rel}: {e}");
                    return ExitCode::from(2);
                }
                println!("inserted {} annotation stub(s) into {rel}", sites.len());
            }
        }
        println!("stubs inserted — replace every `TODO: justify` with a real reason");
    }

    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
