//! Sparsity PMFs and synthetic versioned-edit workloads for SEC experiments.
//!
//! The SEC paper evaluates its I/O savings under parametric probability mass
//! functions on the delta sparsity level `Γ` — truncated Exponential and
//! truncated Poisson distributions (eqs. 22–23, Fig. 6) — because no standard
//! versioning workloads exist. This crate provides:
//!
//! * [`pmf`] — those PMFs (plus uniform/fixed/empirical variants), with exact
//!   probabilities, sampling, and expectations;
//! * [`traces`] — synthetic multi-version edit traces (localized edits,
//!   scattered edits, append-heavy growth, and a mixed "document history"
//!   model) that produce actual symbol-level version sequences whose measured
//!   sparsity can be fed back into the analytical machinery;
//! * [`zipf`] — Zipf popularity PMFs over recency ranks, used by the
//!   `cache_scaling` bench series to draw skewed version-read targets;
//! * [`arrivals`] — open-loop request arrival processes (Poisson
//!   interarrivals and slotted truncated-Poisson counts) consumed by the
//!   network load generator's open-loop mode.
//!
//! # Example
//!
//! ```rust
//! use sec_workload::pmf::SparsityPmf;
//!
//! // Paper, Fig. 6: truncated exponential on {1, 2, 3} with α = 0.6.
//! let pmf = SparsityPmf::truncated_exponential(0.6, 3).unwrap();
//! let probs = pmf.probabilities();
//! assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! assert!(probs[0] > probs[1] && probs[1] > probs[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod pmf;
pub mod traces;
pub mod zipf;

pub use arrivals::{ArrivalProcess, SlottedArrivals};
pub use pmf::SparsityPmf;
pub use traces::{EditModel, TraceConfig, VersionTrace};
pub use zipf::ZipfPmf;
