//! Open-loop request arrival processes for load generation.
//!
//! A *closed-loop* load generator only issues a request when the previous
//! reply returns, so a slow server silently throttles its own offered load.
//! The `server_scaling` bench series and `sec-netload` therefore also drive
//! an **open-loop** mode: requests arrive on a Poisson process of a fixed
//! rate whether or not earlier requests finished, so queueing delay shows
//! up in the latency tail instead of vanishing into the arrival process.
//!
//! Two generators, both deterministic under a seeded [`Rng`]:
//!
//! * [`ArrivalProcess`] — exact Poisson arrivals: i.i.d. exponential
//!   interarrival gaps via inverse-CDF (`-ln(1-u)/rate`).
//! * [`SlottedArrivals`] — a discretized alternative that draws *counts of
//!   arrivals per fixed slot* from the workload crate's existing truncated
//!   Poisson PMF ([`SparsityPmf::truncated_poisson`]), for traces that want
//!   bursty integer batches rather than a continuous timeline.

use rand::Rng;

use crate::pmf::{PmfError, SparsityPmf};

/// A Poisson arrival process of `rate` arrivals per second.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    rate: f64,
}

impl ArrivalProcess {
    /// Creates the process.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::InvalidParameter`] for a non-positive or
    /// non-finite rate.
    pub fn poisson(rate: f64) -> Result<Self, PmfError> {
        if rate <= 0.0 || !rate.is_finite() {
            return Err(PmfError::InvalidParameter {
                name: "rate",
                value: rate,
            });
        }
        Ok(ArrivalProcess { rate })
    }

    /// The configured rate (arrivals per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The exponential inverse CDF: the interarrival gap (seconds) at
    /// quantile `u ∈ [0, 1)`. `gap_for(0.5)` is the median gap
    /// `ln 2 / rate`; the mean gap is `1 / rate`.
    pub fn gap_for(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        -(1.0 - u).ln() / self.rate
    }

    /// Draws one interarrival gap (seconds).
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.gap_for(rng.gen::<f64>())
    }

    /// Arrival timestamps (seconds, strictly increasing from the first gap)
    /// within `[0, horizon)`, capped at `max` arrivals.
    pub fn schedule<R: Rng + ?Sized>(&self, horizon: f64, max: usize, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = 0.0;
        while out.len() < max {
            t += self.next_gap(rng);
            if t >= horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// Integer arrivals-per-slot drawn from the truncated Poisson PMF on
/// `{1, …, k}` (zero-arrival slots occur with probability `idle`).
#[derive(Debug, Clone, PartialEq)]
pub struct SlottedArrivals {
    pmf: SparsityPmf,
    idle: f64,
}

impl SlottedArrivals {
    /// Builds the per-slot distribution: with probability `idle` a slot is
    /// empty, otherwise the count is drawn from
    /// `SparsityPmf::truncated_poisson(lambda, max_per_slot)`.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::InvalidParameter`] for a bad `lambda` or an
    /// `idle` outside `[0, 1]`, and [`PmfError::EmptySupport`] for
    /// `max_per_slot = 0`.
    pub fn truncated_poisson(lambda: f64, max_per_slot: usize, idle: f64) -> Result<Self, PmfError> {
        if !(0.0..=1.0).contains(&idle) {
            return Err(PmfError::InvalidParameter {
                name: "idle",
                value: idle,
            });
        }
        Ok(SlottedArrivals {
            pmf: SparsityPmf::truncated_poisson(lambda, max_per_slot)?,
            idle,
        })
    }

    /// The busy-slot count distribution.
    pub fn pmf(&self) -> &SparsityPmf {
        &self.pmf
    }

    /// Expected arrivals per slot: `(1 - idle) · E[pmf]`.
    pub fn mean_per_slot(&self) -> f64 {
        (1.0 - self.idle) * self.pmf.mean()
    }

    /// Draws the arrival count of one slot.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.idle > 0.0 && rng.gen::<f64>() < self.idle {
            return 0;
        }
        self.pmf.sample(rng)
    }

    /// Draws `slots` consecutive per-slot counts.
    pub fn counts<R: Rng + ?Sized>(&self, slots: usize, rng: &mut R) -> Vec<usize> {
        (0..slots).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            ArrivalProcess::poisson(0.0),
            Err(PmfError::InvalidParameter { name: "rate", .. })
        ));
        assert!(matches!(
            ArrivalProcess::poisson(f64::INFINITY),
            Err(PmfError::InvalidParameter { .. })
        ));
        assert!(matches!(
            SlottedArrivals::truncated_poisson(5.0, 8, 1.5),
            Err(PmfError::InvalidParameter { name: "idle", .. })
        ));
        assert!(matches!(
            SlottedArrivals::truncated_poisson(-1.0, 8, 0.0),
            Err(PmfError::InvalidParameter { .. })
        ));
        assert!(matches!(
            SlottedArrivals::truncated_poisson(5.0, 0, 0.0),
            Err(PmfError::EmptySupport)
        ));
    }

    #[test]
    fn known_answer_inverse_cdf() {
        // Exponential quantiles are exact: F⁻¹(u) = -ln(1-u)/λ.
        let p = ArrivalProcess::poisson(1000.0).unwrap();
        assert!((p.gap_for(0.5) - std::f64::consts::LN_2 / 1000.0).abs() < 1e-15);
        assert_eq!(p.gap_for(0.0), 0.0);
        // 1 - 1/e of the mass lies below the mean gap 1/λ.
        assert!((p.gap_for(1.0 - 1.0 / std::f64::consts::E) - 1e-3).abs() < 1e-12);
        // Quantiles are monotone; u = 1 is clamped finite.
        assert!(p.gap_for(0.99) < p.gap_for(0.999));
        assert!(p.gap_for(1.0).is_finite());
        // Scaling the rate scales every quantile inversely.
        let double = ArrivalProcess::poisson(2000.0).unwrap();
        assert!((p.gap_for(0.7) / double.gap_for(0.7) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_gaps_match_the_rate() {
        let p = ArrivalProcess::poisson(500.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| p.next_gap(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / 500.0).abs() < 0.05 / 500.0,
            "mean gap {mean} vs expected {}",
            1.0 / 500.0
        );
    }

    #[test]
    fn schedule_is_sorted_bounded_and_deterministic() {
        let p = ArrivalProcess::poisson(100.0).unwrap();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let s1 = p.schedule(2.0, 10_000, &mut a);
        let s2 = p.schedule(2.0, 10_000, &mut b);
        assert_eq!(s1, s2);
        assert!(s1.windows(2).all(|w| w[0] < w[1]));
        assert!(s1.iter().all(|&t| (0.0..2.0).contains(&t)));
        // ~200 expected arrivals in 2 s at 100/s.
        assert!((150..=250).contains(&s1.len()), "{}", s1.len());
        // The cap truncates.
        let mut c = StdRng::seed_from_u64(7);
        assert_eq!(p.schedule(2.0, 5, &mut c).len(), 5);
    }

    #[test]
    fn slotted_counts_reuse_the_truncated_poisson_pmf() {
        // λ = 3 on {1,2,3} has the known-answer probabilities 3/12, 4.5/12,
        // 4.5/12 (see pmf.rs); with idle = 0 the slot counts must follow it.
        let slots = SlottedArrivals::truncated_poisson(3.0, 3, 0.0).unwrap();
        assert!((slots.mean_per_slot() - 17.0 / 8.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 120_000;
        let counts = slots.counts(n, &mut rng);
        let mut histogram = [0usize; 4];
        for &c in &counts {
            histogram[c] += 1;
        }
        assert_eq!(histogram[0], 0);
        for (gamma, &seen) in histogram.iter().enumerate().skip(1) {
            let empirical = seen as f64 / n as f64;
            let expected = slots.pmf().probability(gamma);
            assert!(
                (empirical - expected).abs() < 0.01,
                "count {gamma}: {empirical} vs {expected}"
            );
        }
    }

    #[test]
    fn idle_slots_thin_the_process() {
        let slots = SlottedArrivals::truncated_poisson(3.0, 3, 0.25).unwrap();
        assert!((slots.mean_per_slot() - 0.75 * 17.0 / 8.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 80_000;
        let zeros = slots.counts(n, &mut rng).iter().filter(|&&c| c == 0).count();
        assert!(
            (zeros as f64 / n as f64 - 0.25).abs() < 0.01,
            "idle fraction {}",
            zeros as f64 / n as f64
        );
    }
}
