//! Probability mass functions on the delta sparsity level `Γ ∈ {1, …, k}`.
//!
//! The truncated Exponential family concentrates mass on small sparsity
//! (favourable to SEC); the truncated Poisson family concentrates mass on
//! large sparsity (unfavourable). Together they bracket the paper's
//! best-case / worst-case analysis (§V-B, Figs. 6–8).

use core::fmt;

use rand::Rng;

/// Errors from PMF construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PmfError {
    /// The support size `k` must be at least 1.
    EmptySupport,
    /// A distribution parameter was non-positive or non-finite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
    },
    /// An explicit weight vector contained a negative or non-finite entry, or
    /// summed to zero.
    InvalidWeights,
}

impl fmt::Display for PmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmfError::EmptySupport => write!(f, "sparsity support must contain at least one level"),
            PmfError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} must be positive and finite, got {value}")
            }
            PmfError::InvalidWeights => {
                write!(f, "weights must be non-negative, finite and not all zero")
            }
        }
    }
}

impl std::error::Error for PmfError {}

/// A probability mass function on the sparsity support `{1, 2, …, k}`.
///
/// Internally stored as normalized probabilities indexed by `γ - 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityPmf {
    probs: Vec<f64>,
    description: String,
}

impl SparsityPmf {
    /// Truncated exponential PMF `P(γ) ∝ e^{-α γ}` on `{1, …, k}`
    /// (paper, eq. 22).
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::InvalidParameter`] for non-positive or non-finite
    /// `alpha`, and [`PmfError::EmptySupport`] for `k = 0`.
    pub fn truncated_exponential(alpha: f64, k: usize) -> Result<Self, PmfError> {
        if alpha <= 0.0 || !alpha.is_finite() {
            return Err(PmfError::InvalidParameter {
                name: "alpha",
                value: alpha,
            });
        }
        let weights: Vec<f64> = (1..=k).map(|g| (-alpha * g as f64).exp()).collect();
        Self::from_weights_internal(weights, format!("truncated-exponential(alpha={alpha})"))
    }

    /// Truncated Poisson PMF `P(γ) ∝ λ^γ e^{-λ} / γ!` on `{1, …, k}`
    /// (paper, eq. 23).
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::InvalidParameter`] for non-positive or non-finite
    /// `lambda`, and [`PmfError::EmptySupport`] for `k = 0`.
    pub fn truncated_poisson(lambda: f64, k: usize) -> Result<Self, PmfError> {
        if lambda <= 0.0 || !lambda.is_finite() {
            return Err(PmfError::InvalidParameter {
                name: "lambda",
                value: lambda,
            });
        }
        let mut weights = Vec::with_capacity(k);
        let mut factorial = 1.0f64;
        for g in 1..=k {
            factorial *= g as f64;
            weights.push(lambda.powi(g as i32) * (-lambda).exp() / factorial);
        }
        Self::from_weights_internal(weights, format!("truncated-poisson(lambda={lambda})"))
    }

    /// Uniform PMF on `{1, …, k}`.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::EmptySupport`] for `k = 0`.
    pub fn uniform(k: usize) -> Result<Self, PmfError> {
        Self::from_weights_internal(vec![1.0; k], "uniform".to_string())
    }

    /// Degenerate PMF that always produces sparsity `gamma`.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::EmptySupport`] when `gamma` is zero or exceeds `k`.
    pub fn fixed(gamma: usize, k: usize) -> Result<Self, PmfError> {
        if gamma == 0 || gamma > k {
            return Err(PmfError::EmptySupport);
        }
        let mut weights = vec![0.0; k];
        weights[gamma - 1] = 1.0;
        Self::from_weights_internal(weights, format!("fixed(gamma={gamma})"))
    }

    /// PMF from explicit (unnormalized) weights for `γ = 1, …, k`.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::InvalidWeights`] for negative/non-finite weights or
    /// an all-zero vector, and [`PmfError::EmptySupport`] for an empty vector.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, PmfError> {
        Self::from_weights_internal(weights, "empirical".to_string())
    }

    /// Empirical PMF from observed sparsity levels (values above `k` are
    /// clamped to `k`; zeros are clamped to 1).
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::EmptySupport`] when `k = 0` or `samples` is empty.
    pub fn from_samples(samples: &[usize], k: usize) -> Result<Self, PmfError> {
        if k == 0 || samples.is_empty() {
            return Err(PmfError::EmptySupport);
        }
        let mut weights = vec![0.0; k];
        for &s in samples {
            let g = s.clamp(1, k);
            weights[g - 1] += 1.0;
        }
        Self::from_weights_internal(weights, format!("empirical({} samples)", samples.len()))
    }

    fn from_weights_internal(weights: Vec<f64>, description: String) -> Result<Self, PmfError> {
        if weights.is_empty() {
            return Err(PmfError::EmptySupport);
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(PmfError::InvalidWeights);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(PmfError::InvalidWeights);
        }
        Ok(Self {
            probs: weights.into_iter().map(|w| w / total).collect(),
            description,
        })
    }

    /// Size of the support, i.e. the object dimension `k`.
    pub fn support_size(&self) -> usize {
        self.probs.len()
    }

    /// `P(Γ = gamma)`; zero outside the support.
    pub fn probability(&self, gamma: usize) -> f64 {
        if gamma == 0 || gamma > self.probs.len() {
            0.0
        } else {
            self.probs[gamma - 1]
        }
    }

    /// The normalized probabilities for `γ = 1, …, k`.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Expected value `E[Γ]`.
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p)
            .sum()
    }

    /// Expectation `E[f(Γ)]` of an arbitrary function of the sparsity level.
    ///
    /// This is the workhorse of the expected-I/O analysis: e.g.
    /// `E[min(2Γ, k)]` is the expected delta-read cost.
    pub fn expect(&self, mut f: impl FnMut(usize) -> f64) -> f64 {
        self.probs.iter().enumerate().map(|(i, p)| p * f(i + 1)).sum()
    }

    /// Draws one sparsity level according to the PMF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i + 1;
            }
        }
        self.probs.len()
    }

    /// Human-readable description (family and parameter).
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl fmt::Display for SparsityPmf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {{1..{}}}", self.description, self.probs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_pmf_normalizes_and_decreases() {
        for &alpha in &[0.1, 0.6, 1.1, 1.6] {
            let pmf = SparsityPmf::truncated_exponential(alpha, 3).unwrap();
            let p = pmf.probabilities();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12, "alpha={alpha}");
            assert!(p[0] > p[1] && p[1] > p[2], "alpha={alpha}: {p:?}");
            // Closed form: P(γ) = e^{-αγ} / Σ e^{-αj}.
            let norm: f64 = (1..=3).map(|j| (-alpha * j as f64).exp()).sum();
            assert!((pmf.probability(1) - (-alpha).exp() / norm).abs() < 1e-12);
        }
        // Larger alpha concentrates more mass on γ = 1.
        let small = SparsityPmf::truncated_exponential(0.1, 3).unwrap();
        let large = SparsityPmf::truncated_exponential(1.6, 3).unwrap();
        assert!(large.probability(1) > small.probability(1));
        assert!(large.mean() < small.mean());
    }

    #[test]
    fn poisson_pmf_concentrates_on_large_gamma() {
        for &lambda in &[3.0, 5.0, 7.0, 9.0] {
            let pmf = SparsityPmf::truncated_poisson(lambda, 3).unwrap();
            let p = pmf.probabilities();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            // For λ ≥ 3 the truncated mass increases with γ on {1,2,3}.
            assert!(p[2] > p[0], "lambda={lambda}: {p:?}");
        }
        let low = SparsityPmf::truncated_poisson(3.0, 3).unwrap();
        let high = SparsityPmf::truncated_poisson(9.0, 3).unwrap();
        assert!(high.mean() > low.mean());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            SparsityPmf::truncated_exponential(0.0, 3),
            Err(PmfError::InvalidParameter { name: "alpha", .. })
        ));
        assert!(matches!(
            SparsityPmf::truncated_exponential(f64::NAN, 3),
            Err(PmfError::InvalidParameter { .. })
        ));
        assert!(matches!(
            SparsityPmf::truncated_poisson(-1.0, 3),
            Err(PmfError::InvalidParameter { name: "lambda", .. })
        ));
        assert!(matches!(
            SparsityPmf::truncated_exponential(1.0, 0),
            Err(PmfError::EmptySupport)
        ));
        assert!(matches!(SparsityPmf::uniform(0), Err(PmfError::EmptySupport)));
        assert!(matches!(SparsityPmf::fixed(0, 3), Err(PmfError::EmptySupport)));
        assert!(matches!(SparsityPmf::fixed(4, 3), Err(PmfError::EmptySupport)));
        assert!(matches!(
            SparsityPmf::from_weights(vec![0.0, 0.0]),
            Err(PmfError::InvalidWeights)
        ));
        assert!(matches!(
            SparsityPmf::from_weights(vec![1.0, -1.0]),
            Err(PmfError::InvalidWeights)
        ));
        assert!(matches!(
            SparsityPmf::from_samples(&[], 3),
            Err(PmfError::EmptySupport)
        ));
    }

    #[test]
    fn uniform_and_fixed_behave() {
        let u = SparsityPmf::uniform(4).unwrap();
        assert_eq!(u.probability(2), 0.25);
        assert_eq!(u.probability(0), 0.0);
        assert_eq!(u.probability(5), 0.0);
        assert!((u.mean() - 2.5).abs() < 1e-12);
        let f = SparsityPmf::fixed(2, 5).unwrap();
        assert_eq!(f.probability(2), 1.0);
        assert_eq!(f.mean(), 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(f.sample(&mut rng), 2);
        }
    }

    #[test]
    fn known_answer_moments_for_exponential_and_poisson() {
        // α = ln 2 makes the weights dyadic: e^{-αγ} = 2^{-γ}, so on {1,2,3}
        // the weights are 1/2, 1/4, 1/8 (sum 7/8) and
        // E[Γ] = (1/2 + 2/4 + 3/8) / (7/8) = 11/7.
        let exp = SparsityPmf::truncated_exponential(std::f64::consts::LN_2, 3).unwrap();
        assert!((exp.probability(1) - 4.0 / 7.0).abs() < 1e-12);
        assert!((exp.probability(2) - 2.0 / 7.0).abs() < 1e-12);
        assert!((exp.probability(3) - 1.0 / 7.0).abs() < 1e-12);
        assert!((exp.mean() - 11.0 / 7.0).abs() < 1e-12);

        // λ = 3 on {1,2,3}: the e^{-λ} factor cancels, leaving weights
        // λ^γ/γ! = 3, 9/2, 9/2 (sum 12), so
        // E[Γ] = (3 + 9 + 27/2) / 12 = 17/8.
        let poi = SparsityPmf::truncated_poisson(3.0, 3).unwrap();
        assert!((poi.probability(1) - 3.0 / 12.0).abs() < 1e-12);
        assert!((poi.probability(2) - 4.5 / 12.0).abs() < 1e-12);
        assert!((poi.probability(3) - 4.5 / 12.0).abs() < 1e-12);
        assert!((poi.mean() - 17.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_min_2gamma_k() {
        // E[min(2Γ, k)] with k = 3 and uniform Γ: (2 + 3 + 3)/3.
        let u = SparsityPmf::uniform(3).unwrap();
        let e = u.expect(|g| (2 * g).min(3) as f64);
        assert!((e - (2.0 + 3.0 + 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let pmf = SparsityPmf::truncated_exponential(0.6, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000usize;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[pmf.sample(&mut rng) - 1] += 1;
        }
        for g in 1..=3usize {
            let empirical = counts[g - 1] as f64 / n as f64;
            assert!(
                (empirical - pmf.probability(g)).abs() < 0.01,
                "gamma={g} empirical={empirical} expected={}",
                pmf.probability(g)
            );
        }
    }

    #[test]
    fn empirical_pmf_from_samples() {
        let samples = vec![1, 1, 2, 3, 3, 3, 9, 0];
        let pmf = SparsityPmf::from_samples(&samples, 3).unwrap();
        // 9 clamps to 3, 0 clamps to 1.
        assert!((pmf.probability(1) - 3.0 / 8.0).abs() < 1e-12);
        assert!((pmf.probability(2) - 1.0 / 8.0).abs() < 1e-12);
        assert!((pmf.probability(3) - 4.0 / 8.0).abs() < 1e-12);
        assert!(pmf.description().contains("8 samples"));
    }

    #[test]
    fn display_and_description() {
        let pmf = SparsityPmf::truncated_poisson(5.0, 3).unwrap();
        let s = format!("{pmf}");
        assert!(s.contains("poisson"));
        assert!(s.contains("1..3"));
    }
}
