//! Synthetic versioned-edit traces.
//!
//! The paper motivates SEC with SVN histories, Wikipedia article revisions and
//! incremental cloud backups. No public symbol-level traces of those systems
//! exist (the paper cites the absence of standard workloads), so this module
//! generates synthetic version sequences with controllable edit behaviour:
//!
//! * [`EditModel::Localized`] — each revision rewrites a contiguous region
//!   (typical of source-code edits), producing small-γ deltas;
//! * [`EditModel::Scattered`] — each revision touches positions sampled
//!   uniformly at random (metadata churn, search-and-replace);
//! * [`EditModel::AppendHeavy`] — revisions mostly extend the tail of the
//!   object (log files, backup images);
//! * [`EditModel::PmfDriven`] — the number of touched positions is drawn from
//!   an explicit [`SparsityPmf`], matching the paper's parametric evaluation.

use rand::Rng;
use sec_gf::GaloisField;

use crate::pmf::SparsityPmf;

/// How each new version differs from its predecessor.
#[derive(Debug, Clone, PartialEq)]
pub enum EditModel {
    /// A contiguous run of positions is rewritten. `max_run` bounds the run
    /// length.
    Localized {
        /// Maximum length of the rewritten run (clamped to the object size).
        max_run: usize,
    },
    /// `edits` positions chosen uniformly at random are rewritten.
    Scattered {
        /// Number of positions rewritten per revision.
        edits: usize,
    },
    /// The last `head` positions plus a growing tail region are rewritten,
    /// emulating append-mostly objects stored in a fixed-size buffer.
    AppendHeavy {
        /// Number of tail positions rewritten per revision.
        head: usize,
    },
    /// The number of rewritten positions is drawn from a sparsity PMF; the
    /// positions themselves are uniform.
    PmfDriven(SparsityPmf),
}

/// Configuration of a synthetic version trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Object size in field symbols (`k` of the paper).
    pub object_len: usize,
    /// Total number of versions to generate (`L` of the paper), including the
    /// initial one.
    pub versions: usize,
    /// Edit model applied between consecutive versions.
    pub model: EditModel,
}

impl TraceConfig {
    /// Convenience constructor.
    pub fn new(object_len: usize, versions: usize, model: EditModel) -> Self {
        Self {
            object_len,
            versions,
            model,
        }
    }
}

/// A generated sequence of versions together with its per-revision sparsity.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionTrace<F> {
    /// The versions `x_1, …, x_L`, each of `object_len` symbols.
    pub versions: Vec<Vec<F>>,
    /// Sparsity `γ_{j+1}` of each delta `x_{j+1} − x_j` (length `L - 1`).
    pub sparsity: Vec<usize>,
}

impl<F: GaloisField> VersionTrace<F> {
    /// Generates a trace according to `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.object_len` is zero or `config.versions` is zero.
    pub fn generate<R: Rng + ?Sized>(config: &TraceConfig, rng: &mut R) -> Self {
        assert!(config.object_len > 0, "object length must be positive");
        assert!(config.versions > 0, "a trace needs at least one version");
        let k = config.object_len;
        let mut versions = Vec::with_capacity(config.versions);
        let mut sparsity = Vec::with_capacity(config.versions.saturating_sub(1));

        let first: Vec<F> = (0..k).map(|_| random_symbol(rng)).collect();
        versions.push(first);

        for v in 1..config.versions {
            let prev = versions[v - 1].clone();
            let mut next = prev.clone();
            let positions = pick_positions(&config.model, k, v, rng);
            for &pos in &positions {
                // Force an actual change: add a non-zero symbol.
                let delta = random_nonzero_symbol(rng);
                next[pos] = prev[pos] + delta;
            }
            let gamma = next.iter().zip(&prev).filter(|(a, b)| a != b).count();
            sparsity.push(gamma);
            versions.push(next);
        }

        Self { versions, sparsity }
    }

    /// Number of versions in the trace.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// `true` when the trace holds no versions (cannot happen for generated
    /// traces, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// The measured sparsity levels as an empirical PMF over `{1, …, k}`.
    ///
    /// Returns `None` when the trace has fewer than two versions.
    pub fn empirical_pmf(&self) -> Option<SparsityPmf> {
        if self.sparsity.is_empty() {
            return None;
        }
        SparsityPmf::from_samples(&self.sparsity, self.versions[0].len()).ok()
    }

    /// Fraction of deltas that are exploitable by SEC, i.e. with `2γ < k`.
    pub fn exploitable_fraction(&self) -> f64 {
        if self.sparsity.is_empty() {
            return 0.0;
        }
        let k = self.versions[0].len();
        let exploitable = self.sparsity.iter().filter(|&&g| 2 * g < k).count();
        exploitable as f64 / self.sparsity.len() as f64
    }
}

fn pick_positions<R: Rng + ?Sized>(
    model: &EditModel,
    k: usize,
    version_index: usize,
    rng: &mut R,
) -> Vec<usize> {
    match model {
        EditModel::Localized { max_run } => {
            let run = rng.gen_range(1..=(*max_run).clamp(1, k));
            let start = rng.gen_range(0..k);
            (0..run).map(|i| (start + i) % k).collect()
        }
        EditModel::Scattered { edits } => {
            let edits = (*edits).clamp(1, k);
            let mut positions: Vec<usize> = (0..k).collect();
            // Partial Fisher-Yates shuffle: the first `edits` entries are a
            // uniform random subset.
            for i in 0..edits {
                let j = rng.gen_range(i..k);
                positions.swap(i, j);
            }
            positions.truncate(edits);
            positions
        }
        EditModel::AppendHeavy { head } => {
            let head = (*head).clamp(1, k);
            // The "write frontier" advances with the version index, wrapping
            // around the fixed-size object.
            let frontier = (version_index * head) % k;
            (0..head).map(|i| (frontier + i) % k).collect()
        }
        EditModel::PmfDriven(pmf) => {
            let edits = pmf.sample(rng).clamp(1, k);
            let mut positions: Vec<usize> = (0..k).collect();
            for i in 0..edits {
                let j = rng.gen_range(i..k);
                positions.swap(i, j);
            }
            positions.truncate(edits);
            positions
        }
    }
}

fn random_symbol<F: GaloisField, R: Rng + ?Sized>(rng: &mut R) -> F {
    F::from_u64(rng.gen_range(0..F::ORDER))
}

fn random_nonzero_symbol<F: GaloisField, R: Rng + ?Sized>(rng: &mut R) -> F {
    F::from_u64(rng.gen_range(1..F::ORDER))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sec_gf::Gf256;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn trace_has_requested_shape() {
        let config = TraceConfig::new(10, 5, EditModel::Localized { max_run: 3 });
        let trace: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut rng());
        assert_eq!(trace.len(), 5);
        assert!(!trace.is_empty());
        assert_eq!(trace.sparsity.len(), 4);
        assert!(trace.versions.iter().all(|v| v.len() == 10));
    }

    #[test]
    fn sparsity_matches_actual_differences() {
        let config = TraceConfig::new(16, 8, EditModel::Scattered { edits: 4 });
        let trace: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut rng());
        for j in 1..trace.len() {
            let measured = trace.versions[j]
                .iter()
                .zip(&trace.versions[j - 1])
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(measured, trace.sparsity[j - 1]);
            // Scattered with 4 edits touches exactly 4 positions and every
            // touched position actually changes.
            assert_eq!(measured, 4);
        }
    }

    #[test]
    fn localized_edits_bound_sparsity() {
        let config = TraceConfig::new(20, 12, EditModel::Localized { max_run: 3 });
        let trace: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut rng());
        assert!(trace.sparsity.iter().all(|&g| (1..=3).contains(&g)));
        // All deltas exploitable for k = 20 (2γ ≤ 6 < 20).
        assert_eq!(trace.exploitable_fraction(), 1.0);
    }

    #[test]
    fn append_heavy_touches_fixed_count() {
        let config = TraceConfig::new(12, 6, EditModel::AppendHeavy { head: 2 });
        let trace: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut rng());
        assert!(trace.sparsity.iter().all(|&g| g == 2));
    }

    #[test]
    fn pmf_driven_sparsity_stays_in_support() {
        let pmf = SparsityPmf::truncated_exponential(0.6, 5).unwrap();
        let config = TraceConfig::new(10, 40, EditModel::PmfDriven(pmf));
        let trace: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut rng());
        assert!(trace.sparsity.iter().all(|&g| (1..=5).contains(&g)));
        let empirical = trace.empirical_pmf().unwrap();
        // Mass concentrated on small gamma for a decreasing exponential.
        assert!(empirical.probability(1) + empirical.probability(2) > 0.5);
    }

    #[test]
    fn pmf_driven_trace_moments_track_the_source_pmf() {
        // Long traces driven by the bracketing PMFs must reproduce the
        // source mean sparsity — the moment the cache_scaling bench trusts
        // when it converts a PMF into an edit trace. (Scattered positions
        // always change, so measured γ equals the drawn edit count exactly.)
        let k = 12;
        for pmf in [
            SparsityPmf::truncated_exponential(0.6, k).unwrap(),
            SparsityPmf::truncated_poisson(5.0, k).unwrap(),
        ] {
            let expected = pmf.mean();
            let config = TraceConfig::new(k, 4001, EditModel::PmfDriven(pmf));
            let trace: VersionTrace<Gf256> =
                VersionTrace::generate(&config, &mut StdRng::seed_from_u64(11));
            let measured = trace.sparsity.iter().sum::<usize>() as f64 / trace.sparsity.len() as f64;
            assert!(
                (measured - expected).abs() < 0.1,
                "measured mean {measured} vs pmf mean {expected}"
            );
        }
    }

    #[test]
    fn empirical_pmf_absent_for_single_version() {
        let config = TraceConfig::new(4, 1, EditModel::Scattered { edits: 1 });
        let trace: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut rng());
        assert!(trace.empirical_pmf().is_none());
        assert_eq!(trace.exploitable_fraction(), 0.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = TraceConfig::new(8, 5, EditModel::Scattered { edits: 2 });
        let a: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut StdRng::seed_from_u64(3));
        let b: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut StdRng::seed_from_u64(3));
        let c: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "object length must be positive")]
    fn zero_object_length_panics() {
        let config = TraceConfig::new(0, 3, EditModel::Scattered { edits: 1 });
        let _: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut rng());
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn zero_versions_panics() {
        let config = TraceConfig::new(3, 0, EditModel::Scattered { edits: 1 });
        let _: VersionTrace<Gf256> = VersionTrace::generate(&config, &mut rng());
    }
}
