//! Zipf popularity PMFs over recency ranks.
//!
//! Versioned-archive read traffic is strongly skewed: the latest few versions
//! of an object absorb most reads (wiki page views, backup restores of the
//! newest snapshot). The standard model for that skew is a Zipf law over the
//! recency rank — `P(rank) ∝ 1/rank^s` with rank 1 the most recent version.
//! The `cache_scaling` bench series draws its version targets from this PMF
//! so cache hit rates reflect a realistic hot set rather than a uniform scan.

use core::fmt;

use rand::Rng;

use crate::pmf::PmfError;

/// A Zipf probability mass function on the ranks `{1, 2, …, n}`:
/// `P(rank) = rank^{-s} / H_{n,s}` where `H_{n,s} = Σ_{r=1}^{n} r^{-s}` is the
/// generalized harmonic number.
///
/// Rank 1 is the hottest item. `s = 0` degenerates to the uniform
/// distribution; larger `s` concentrates more mass on the head.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfPmf {
    probs: Vec<f64>,
    exponent: f64,
}

impl ZipfPmf {
    /// Builds the Zipf PMF with exponent `s` on ranks `1..=n`.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::EmptySupport`] for `n = 0` and
    /// [`PmfError::InvalidParameter`] for a negative or non-finite `s`
    /// (`s = 0`, the uniform case, is allowed).
    pub fn new(s: f64, n: usize) -> Result<Self, PmfError> {
        if s < 0.0 || !s.is_finite() {
            return Err(PmfError::InvalidParameter { name: "s", value: s });
        }
        if n == 0 {
            return Err(PmfError::EmptySupport);
        }
        let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        Ok(Self {
            probs: weights.into_iter().map(|w| w / total).collect(),
            exponent: s,
        })
    }

    /// Number of ranks in the support.
    pub fn support_size(&self) -> usize {
        self.probs.len()
    }

    /// The Zipf exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// `P(rank)`; zero outside `{1, …, n}`.
    pub fn probability(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.probs.len() {
            0.0
        } else {
            self.probs[rank - 1]
        }
    }

    /// The normalized probabilities for ranks `1, …, n`.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Expected rank `E[R]`.
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p)
            .sum()
    }

    /// Draws one rank (1-based) by inverse-CDF sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i + 1;
            }
        }
        self.probs.len()
    }
}

impl fmt::Display for ZipfPmf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zipf(s={}) on {{1..{}}}", self.exponent, self.probs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_answer_normalization_s1_n4() {
        // H_{4,1} = 1 + 1/2 + 1/3 + 1/4 = 25/12, so P(1) = 12/25 and the
        // mean rank is Σ r · (1/r)/H = 4 / (25/12) = 48/25.
        let pmf = ZipfPmf::new(1.0, 4).unwrap();
        assert!((pmf.probability(1) - 12.0 / 25.0).abs() < 1e-12);
        assert!((pmf.probability(2) - 6.0 / 25.0).abs() < 1e-12);
        assert!((pmf.probability(3) - 4.0 / 25.0).abs() < 1e-12);
        assert!((pmf.probability(4) - 3.0 / 25.0).abs() < 1e-12);
        assert!((pmf.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((pmf.mean() - 48.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn zero_exponent_is_uniform_and_mass_moves_headward_with_s() {
        let uniform = ZipfPmf::new(0.0, 5).unwrap();
        for r in 1..=5 {
            assert!((uniform.probability(r) - 0.2).abs() < 1e-12);
        }
        let mild = ZipfPmf::new(0.8, 5).unwrap();
        let steep = ZipfPmf::new(2.0, 5).unwrap();
        assert!(steep.probability(1) > mild.probability(1));
        assert!(mild.probability(1) > uniform.probability(1));
        assert!(steep.mean() < mild.mean());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            ZipfPmf::new(-0.5, 4),
            Err(PmfError::InvalidParameter { name: "s", .. })
        ));
        assert!(matches!(
            ZipfPmf::new(f64::NAN, 4),
            Err(PmfError::InvalidParameter { .. })
        ));
        assert!(matches!(ZipfPmf::new(1.0, 0), Err(PmfError::EmptySupport)));
        let pmf = ZipfPmf::new(1.0, 3).unwrap();
        assert_eq!(pmf.probability(0), 0.0);
        assert_eq!(pmf.probability(4), 0.0);
        assert_eq!(pmf.support_size(), 3);
        assert_eq!(pmf.exponent(), 1.0);
    }

    #[test]
    fn sampling_matches_distribution() {
        let pmf = ZipfPmf::new(1.1, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000usize;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[pmf.sample(&mut rng) - 1] += 1;
        }
        for r in 1..=4usize {
            let empirical = counts[r - 1] as f64 / n as f64;
            assert!(
                (empirical - pmf.probability(r)).abs() < 0.01,
                "rank={r} empirical={empirical} expected={}",
                pmf.probability(r)
            );
        }
    }

    #[test]
    fn display_names_family_and_support() {
        let pmf = ZipfPmf::new(1.0, 8).unwrap();
        let s = format!("{pmf}");
        assert!(s.contains("zipf"));
        assert!(s.contains("1..8"));
    }
}
