//! Deltas between consecutive versions: `z_{j+1} = x_{j+1} − x_j` and their
//! sparsity level `γ` (Definition 1 of the paper).

use sec_gf::{bulk, GaloisField};

use crate::error::VersioningError;

/// The difference between two consecutive versions of a `k`-symbol object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Delta<F> {
    data: Vec<F>,
    sparsity: usize,
}

impl<F: GaloisField> Delta<F> {
    /// Computes the delta `new − old`.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::ObjectLengthMismatch`] when the versions
    /// have different lengths.
    pub fn between(old: &[F], new: &[F]) -> Result<Self, VersioningError> {
        if old.len() != new.len() {
            return Err(VersioningError::ObjectLengthMismatch {
                expected: old.len(),
                actual: new.len(),
            });
        }
        let data = bulk::diff(new, old);
        let sparsity = bulk::weight(&data);
        Ok(Self { data, sparsity })
    }

    /// Wraps an existing delta vector, computing its sparsity.
    pub fn from_vec(data: Vec<F>) -> Self {
        let sparsity = bulk::weight(&data);
        Self { data, sparsity }
    }

    /// The raw delta symbols.
    pub fn data(&self) -> &[F] {
        &self.data
    }

    /// Consumes the delta and returns the underlying vector.
    pub fn into_vec(self) -> Vec<F> {
        self.data
    }

    /// The sparsity level `γ` — number of non-zero entries.
    pub fn sparsity(&self) -> usize {
        self.sparsity
    }

    /// Object dimension `k`.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the two versions were identical.
    pub fn is_empty(&self) -> bool {
        self.sparsity == 0
    }

    /// `true` when this delta's sparsity is exploitable by SEC for dimension
    /// `k`, i.e. `γ < k/2` so reading `2γ` symbols beats reading `k`
    /// (paper, §III).
    pub fn is_exploitable(&self) -> bool {
        2 * self.sparsity < self.data.len()
    }

    /// Indices of the modified positions.
    pub fn support(&self) -> Vec<usize> {
        self.data
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_zero())
            .map(|(i, _)| i)
            .collect()
    }

    /// Applies the delta to `base`, producing the newer version.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::ObjectLengthMismatch`] when the lengths
    /// differ.
    pub fn apply(&self, base: &[F]) -> Result<Vec<F>, VersioningError> {
        if base.len() != self.data.len() {
            return Err(VersioningError::ObjectLengthMismatch {
                expected: self.data.len(),
                actual: base.len(),
            });
        }
        let mut out = base.to_vec();
        bulk::add_assign(&mut out, &self.data);
        Ok(out)
    }

    /// Applies the delta in reverse: given the newer version, recover the
    /// older one. (In characteristic two this is the same operation as
    /// [`Delta::apply`], exposed separately for call-site clarity, e.g. in
    /// Reversed SEC retrieval which walks backwards from the latest version.)
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::ObjectLengthMismatch`] when the lengths
    /// differ.
    pub fn unapply(&self, newer: &[F]) -> Result<Vec<F>, VersioningError> {
        self.apply(newer)
    }
}

/// Computes the sparsity levels of an entire version sequence:
/// `γ_{j+1} = weight(x_{j+1} − x_j)` for `j = 1, …, L-1`.
///
/// # Errors
///
/// Returns [`VersioningError::ObjectLengthMismatch`] if the versions do not
/// all have the same length.
pub fn sparsity_profile<F: GaloisField>(versions: &[Vec<F>]) -> Result<Vec<usize>, VersioningError> {
    let mut profile = Vec::with_capacity(versions.len().saturating_sub(1));
    for pair in versions.windows(2) {
        profile.push(Delta::between(&pair[0], &pair[1])?.sparsity());
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::Gf1024;

    fn obj(vals: &[u64]) -> Vec<Gf1024> {
        vals.iter().map(|&v| Gf1024::from_u64(v)).collect()
    }

    #[test]
    fn delta_between_and_apply_round_trip() {
        let old = obj(&[1, 2, 3, 4, 5]);
        let new = obj(&[1, 9, 3, 4, 7]);
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.sparsity(), 2);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert_eq!(d.support(), vec![1, 4]);
        assert_eq!(d.apply(&old).unwrap(), new);
        assert_eq!(d.unapply(&new).unwrap(), old);
    }

    #[test]
    fn identical_versions_give_empty_delta() {
        let x = obj(&[7, 7, 7]);
        let d = Delta::between(&x, &x).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.sparsity(), 0);
        assert!(d.support().is_empty());
        assert!(d.is_exploitable());
        assert_eq!(d.apply(&x).unwrap(), x);
    }

    #[test]
    fn exploitability_threshold_matches_definition() {
        // k = 5: γ = 2 exploitable (2·2 < 5), γ = 3 not.
        let base = obj(&[0, 0, 0, 0, 0]);
        let two = obj(&[1, 1, 0, 0, 0]);
        let three = obj(&[1, 1, 1, 0, 0]);
        assert!(Delta::between(&base, &two).unwrap().is_exploitable());
        assert!(!Delta::between(&base, &three).unwrap().is_exploitable());
        // k = 4: γ = 2 is not exploitable (2·2 = 4).
        let base4 = obj(&[0, 0, 0, 0]);
        let two4 = obj(&[1, 1, 0, 0]);
        assert!(!Delta::between(&base4, &two4).unwrap().is_exploitable());
    }

    #[test]
    fn mismatched_lengths_error() {
        let a = obj(&[1, 2]);
        let b = obj(&[1, 2, 3]);
        assert!(matches!(
            Delta::between(&a, &b),
            Err(VersioningError::ObjectLengthMismatch { .. })
        ));
        let d = Delta::between(&a, &obj(&[5, 6])).unwrap();
        assert!(matches!(
            d.apply(&b),
            Err(VersioningError::ObjectLengthMismatch { .. })
        ));
    }

    #[test]
    fn from_vec_and_into_vec() {
        let d = Delta::from_vec(obj(&[0, 5, 0]));
        assert_eq!(d.sparsity(), 1);
        assert_eq!(d.data(), obj(&[0, 5, 0]).as_slice());
        assert_eq!(d.into_vec(), obj(&[0, 5, 0]));
    }

    #[test]
    fn sparsity_profile_of_sequence() {
        // Reproduces the §III-D example profile {3, 8, 3, 6} on k = 10.
        let mut versions = vec![obj(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10])];
        let edits: [&[usize]; 4] = [
            &[0, 1, 2],
            &[0, 1, 2, 3, 4, 5, 6, 7],
            &[3, 4, 5],
            &[0, 2, 4, 6, 8, 9],
        ];
        for positions in edits {
            let mut next = versions.last().unwrap().clone();
            for &p in positions {
                next[p] += Gf1024::from_u64(1000);
            }
            versions.push(next);
        }
        assert_eq!(sparsity_profile(&versions).unwrap(), vec![3, 8, 3, 6]);
        // Single version → empty profile.
        assert_eq!(sparsity_profile(&versions[..1]).unwrap(), Vec::<usize>::new());
        // Ragged versions → error.
        let ragged = vec![obj(&[1, 2]), obj(&[1, 2, 3])];
        assert!(sparsity_profile(&ragged).is_err());
    }
}
