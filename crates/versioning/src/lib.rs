//! Delta-based versioned archives encoded with Sparsity Exploiting Coding —
//! the primary contribution of the SEC paper as a usable library.
//!
//! A [`VersionedArchive`] accepts successive versions of a fixed-size data
//! object (`x_1, x_2, …, x_L ∈ F_q^k`), encodes them with an `(n, k)` MDS code
//! according to an [`EncodingStrategy`], and supports retrieval of any version
//! (or any prefix of versions) with explicit disk-I/O accounting:
//!
//! * [`EncodingStrategy::BasicSec`] — store `x_1` in full, every later
//!   version as the delta `z_{j+1} = x_{j+1} − x_j` (paper, Fig. 1);
//! * [`EncodingStrategy::OptimizedSec`] — like Basic, but store the full
//!   version instead of the delta whenever `γ ≥ k/2` ("Optimized Step j+1");
//! * [`EncodingStrategy::ReversedSec`] — store deltas plus the *latest*
//!   version in full, favouring access to recent versions;
//! * [`EncodingStrategy::NonDifferential`] — the baseline: every version is
//!   encoded in full.
//!
//! For production-shaped byte objects, [`ByteVersionedArchive`] provides the
//! same strategies over contiguous byte shards, with per-block delta sparsity
//! and retrieval through the batched `GF(2^8)` pipeline of `sec-erasure`.
//!
//! The [`io_model`] module provides the closed-form I/O read counts of
//! eqs. (3)–(4) without touching any data, which is what the paper's Fig. 9
//! and the §III-D example report; the archive itself reproduces the same
//! numbers operationally via [`retrieval`].
//!
//! # Example
//!
//! ```rust
//! use sec_gf::{GaloisField, Gf1024};
//! use sec_erasure::GeneratorForm;
//! use sec_versioning::{ArchiveConfig, EncodingStrategy, VersionedArchive};
//!
//! # fn main() -> Result<(), sec_versioning::VersioningError> {
//! let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)?;
//! let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config)?;
//!
//! let v1: Vec<Gf1024> = [10u64, 20, 30].iter().map(|&v| Gf1024::from_u64(v)).collect();
//! let mut v2 = v1.clone();
//! v2[0] = Gf1024::from_u64(99); // a 1-sparse edit
//! archive.append_version(&v1)?;
//! archive.append_version(&v2)?;
//!
//! // Retrieving both versions costs k + 2γ = 3 + 2 = 5 reads instead of 6.
//! let retrieval = archive.retrieve_prefix(2)?;
//! assert_eq!(retrieval.io_reads, 5);
//! assert_eq!(retrieval.versions[1], v2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

mod archive;
mod error;

pub mod byte_archive;
pub mod cache;
pub mod delta;
pub mod io_model;
pub mod object;
pub mod retrieval;
pub mod walk;

pub use archive::{
    ArchiveConfig, CheckpointPolicy, EncodedEntry, EncodingStrategy, StoredPayload, VersionedArchive,
};
pub use byte_archive::{
    ByteEncodedEntry, BytePrefixRetrieval, ByteVersionRetrieval, ByteVersionedArchive,
};
pub use cache::{CacheStats, DeltaCache};
pub use delta::Delta;
pub use error::VersioningError;
pub use io_model::IoModel;
pub use retrieval::{PrefixRetrieval, VersionRetrieval};

#[cfg(test)]
mod proptests;
