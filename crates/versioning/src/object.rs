//! The fixed-size object model: converting application bytes into `F_q^k`
//! coding objects and back.
//!
//! The paper assumes "application level objects are split and transformed into
//! fixed sized objects (arguably with necessary zero padding)". [`ObjectCodec`]
//! implements exactly that transformation for byte payloads: each symbol
//! carries one byte (regardless of the field width, so the mapping is
//! field-agnostic and loss-free) and the object is padded with zero symbols up
//! to the configured dimension `k`.

use bytes::Bytes;
use sec_gf::{bulk, GaloisField};

use crate::error::VersioningError;

/// A 1-based version number, matching the paper's `x_1, x_2, …` indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionId(pub usize);

impl VersionId {
    /// The first version.
    pub const FIRST: VersionId = VersionId(1);

    /// The next version number.
    pub fn next(self) -> VersionId {
        VersionId(self.0 + 1)
    }

    /// Zero-based index into storage vectors.
    pub fn index(self) -> usize {
        self.0 - 1
    }
}

impl core::fmt::Display for VersionId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Converts byte payloads to fixed-size symbol objects and back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectCodec {
    k: usize,
}

impl ObjectCodec {
    /// Creates a codec for `k`-symbol objects.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "object dimension must be positive");
        Self { k }
    }

    /// The object dimension `k`.
    pub fn dimension(&self) -> usize {
        self.k
    }

    /// Maximum payload size in bytes (one byte per symbol).
    pub fn max_bytes(&self) -> usize {
        self.k
    }

    /// Encodes a byte payload into exactly `k` symbols, zero-padding the tail.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::ObjectTooLarge`] when the payload exceeds
    /// `k` bytes.
    pub fn bytes_to_object<F: GaloisField>(&self, payload: &[u8]) -> Result<Vec<F>, VersioningError> {
        if payload.len() > self.k {
            return Err(VersioningError::ObjectTooLarge {
                max_bytes: self.k,
                actual_bytes: payload.len(),
            });
        }
        let mut symbols = bulk::bytes_to_symbols::<F>(payload);
        symbols.resize(self.k, F::ZERO);
        Ok(symbols)
    }

    /// Decodes an object back into its byte payload, trimming to
    /// `original_len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::ObjectLengthMismatch`] when the object does
    /// not have `k` symbols, or [`VersioningError::ObjectTooLarge`] when
    /// `original_len > k`.
    pub fn object_to_bytes<F: GaloisField>(
        &self,
        object: &[F],
        original_len: usize,
    ) -> Result<Bytes, VersioningError> {
        if object.len() != self.k {
            return Err(VersioningError::ObjectLengthMismatch {
                expected: self.k,
                actual: object.len(),
            });
        }
        if original_len > self.k {
            return Err(VersioningError::ObjectTooLarge {
                max_bytes: self.k,
                actual_bytes: original_len,
            });
        }
        let bytes = bulk::symbols_to_bytes(&object[..original_len]);
        Ok(Bytes::from(bytes))
    }

    /// Splits a large byte payload into as many `k`-symbol objects as needed
    /// (the "application object → sequence of coding objects" step), returning
    /// the objects and the original length for later reassembly.
    pub fn split_bytes<F: GaloisField>(&self, payload: &[u8]) -> (Vec<Vec<F>>, usize) {
        let mut objects = Vec::with_capacity(payload.len().div_ceil(self.k).max(1));
        if payload.is_empty() {
            objects.push(vec![F::ZERO; self.k]);
            return (objects, 0);
        }
        for chunk in payload.chunks(self.k) {
            let mut symbols = bulk::bytes_to_symbols::<F>(chunk);
            symbols.resize(self.k, F::ZERO);
            objects.push(symbols);
        }
        (objects, payload.len())
    }

    /// Reassembles objects produced by [`ObjectCodec::split_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::ObjectLengthMismatch`] if any object has the
    /// wrong dimension.
    pub fn join_bytes<F: GaloisField>(
        &self,
        objects: &[Vec<F>],
        original_len: usize,
    ) -> Result<Bytes, VersioningError> {
        let mut bytes = Vec::with_capacity(objects.len() * self.k);
        for object in objects {
            if object.len() != self.k {
                return Err(VersioningError::ObjectLengthMismatch {
                    expected: self.k,
                    actual: object.len(),
                });
            }
            bytes.extend_from_slice(&bulk::symbols_to_bytes(object));
        }
        bytes.truncate(original_len);
        Ok(Bytes::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::{Gf1024, Gf256};

    #[test]
    fn version_id_arithmetic() {
        let v = VersionId::FIRST;
        assert_eq!(v.0, 1);
        assert_eq!(v.index(), 0);
        assert_eq!(v.next(), VersionId(2));
        assert_eq!(format!("{}", VersionId(7)), "v7");
    }

    #[test]
    fn bytes_round_trip_with_padding() {
        let codec = ObjectCodec::new(8);
        assert_eq!(codec.dimension(), 8);
        assert_eq!(codec.max_bytes(), 8);
        let payload = b"hello";
        let object: Vec<Gf256> = codec.bytes_to_object(payload).unwrap();
        assert_eq!(object.len(), 8);
        assert!(object[5..].iter().all(|s| s.is_zero()));
        let back = codec.object_to_bytes(&object, payload.len()).unwrap();
        assert_eq!(back.as_ref(), payload);
    }

    #[test]
    fn wide_field_round_trip() {
        let codec = ObjectCodec::new(4);
        let payload = [0u8, 255, 17, 3];
        let object: Vec<Gf1024> = codec.bytes_to_object(&payload).unwrap();
        let back = codec.object_to_bytes(&object, 4).unwrap();
        assert_eq!(back.as_ref(), payload);
    }

    #[test]
    fn oversized_payload_rejected() {
        let codec = ObjectCodec::new(3);
        assert!(matches!(
            codec.bytes_to_object::<Gf256>(b"toolong"),
            Err(VersioningError::ObjectTooLarge {
                max_bytes: 3,
                actual_bytes: 7
            })
        ));
        let obj = vec![Gf256::ZERO; 3];
        assert!(matches!(
            codec.object_to_bytes(&obj, 4),
            Err(VersioningError::ObjectTooLarge { .. })
        ));
        assert!(matches!(
            codec.object_to_bytes(&[Gf256::ZERO; 2], 1),
            Err(VersioningError::ObjectLengthMismatch { .. })
        ));
    }

    #[test]
    fn split_and_join_large_payload() {
        let codec = ObjectCodec::new(4);
        let payload: Vec<u8> = (0..11).collect();
        let (objects, len) = codec.split_bytes::<Gf256>(&payload);
        assert_eq!(objects.len(), 3);
        assert_eq!(len, 11);
        assert!(objects.iter().all(|o| o.len() == 4));
        let back = codec.join_bytes(&objects, len).unwrap();
        assert_eq!(back.as_ref(), payload.as_slice());
    }

    #[test]
    fn split_empty_payload_gives_one_zero_object() {
        let codec = ObjectCodec::new(4);
        let (objects, len) = codec.split_bytes::<Gf256>(b"");
        assert_eq!(objects.len(), 1);
        assert_eq!(len, 0);
        assert!(objects[0].iter().all(|s| s.is_zero()));
        assert!(codec.join_bytes(&objects, 0).unwrap().is_empty());
    }

    #[test]
    fn join_rejects_misshaped_objects() {
        let codec = ObjectCodec::new(4);
        let objects = vec![vec![Gf256::ZERO; 3]];
        assert!(matches!(
            codec.join_bytes(&objects, 3),
            Err(VersioningError::ObjectLengthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = ObjectCodec::new(0);
    }
}
