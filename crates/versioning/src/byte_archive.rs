//! The byte-shard fast path of the versioning layer: a
//! [`ByteVersionedArchive`] whose stored payloads are contiguous
//! [`ByteShards`] encoded and retrieved through the batched `GF(2^8)`
//! pipeline of `sec-erasure`.
//!
//! Where the generic [`VersionedArchive`](crate::VersionedArchive) models a
//! version as `k` field symbols, this archive models it as an arbitrary byte
//! object split into `k` equally sized blocks (shards). The delta between
//! consecutive versions is computed bytewise and its sparsity level `γ` is
//! counted *per block*: a block counts toward `γ` when any of its bytes
//! changed. All of the paper's strategies (Basic / Optimized / Reversed SEC
//! and the non-differential baseline) and read-count formulas carry over with
//! "symbol" replaced by "block", so every entry stores `n` coded blocks and a
//! `γ`-block-sparse delta is retrieved with `2γ` block reads.
//!
//! # Example
//!
//! ```rust
//! use sec_erasure::GeneratorForm;
//! use sec_versioning::{ArchiveConfig, ByteVersionedArchive, EncodingStrategy};
//!
//! # fn main() -> Result<(), sec_versioning::VersioningError> {
//! let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)?;
//! let mut archive = ByteVersionedArchive::new(config)?;
//!
//! let v1 = vec![7u8; 3 * 1024]; // three 1 KiB blocks
//! let mut v2 = v1.clone();
//! v2[100] ^= 0xFF; // a single-block edit: γ = 1
//! archive.append_version(&v1)?;
//! archive.append_version(&v2)?;
//!
//! // Retrieving v2 costs k + 2γ = 3 + 2 block reads instead of 2k = 6.
//! let r = archive.retrieve_version(2)?;
//! assert_eq!(r.data, v2);
//! assert_eq!(r.io_reads, 3 + 2);
//! # Ok(())
//! # }
//! ```

use sec_erasure::read_plan::plan_read;
use sec_erasure::{ByteCodec, ByteShards, SecCode};

use crate::archive::{ArchiveConfig, EncodingStrategy, StoredPayload};
use crate::error::VersioningError;
use crate::object::VersionId;
use crate::walk::{decode_planned, read_target, walk_prefix, walk_version};

/// One stored, erasure-coded byte object: its semantic payload and its `n`
/// coded blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteEncodedEntry {
    /// What the coded blocks encode.
    pub payload: StoredPayload,
    /// The `n` coded blocks, shard `i` belonging to node position `i`.
    pub shards: ByteShards,
}

/// Result of retrieving a single version from a byte archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteVersionRetrieval {
    /// The 1-based version number that was retrieved.
    pub version: usize,
    /// The reconstructed byte object.
    pub data: Vec<u8>,
    /// Total block reads spent (the paper's I/O unit, lifted to blocks).
    pub io_reads: usize,
    /// Number of stored entries that were touched.
    pub entries_read: usize,
}

/// Result of retrieving the first `l` versions from a byte archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BytePrefixRetrieval {
    /// The reconstructed versions `x_1, …, x_l` in order.
    pub versions: Vec<Vec<u8>>,
    /// Total block reads spent.
    pub io_reads: usize,
    /// Number of stored entries that were touched.
    pub entries_read: usize,
}

/// A delta-based versioned archive over byte objects, encoded with SEC
/// through the batched byte-shard pipeline.
///
/// Every retrieval method takes `&self`: the codec is shared-read (its
/// decode scratch is per-thread), so any number of readers can retrieve
/// versions from one archive concurrently while appends keep the usual
/// exclusive borrow.
#[derive(Debug)]
pub struct ByteVersionedArchive {
    config: ArchiveConfig,
    codec: ByteCodec,
    /// Fixed byte length of every version, set by the first append.
    object_len: Option<usize>,
    entries: Vec<ByteEncodedEntry>,
    latest_full: Option<ByteEncodedEntry>,
    /// Plaintext copy of the latest version for delta computation.
    latest_version: Vec<u8>,
    sparsity: Vec<usize>,
    versions: usize,
    /// Consecutive deltas since the last stored full version.
    delta_run: usize,
    checkpoints_written: usize,
}

impl ByteVersionedArchive {
    /// Creates an empty byte archive over `GF(2^8)`.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::Code`] when the configured code cannot be
    /// built over `GF(2^8)` (e.g. `n` too large for the Cauchy construction).
    pub fn new(config: ArchiveConfig) -> Result<Self, VersioningError> {
        let code = SecCode::cauchy(config.params().n, config.params().k, config.form())?;
        Self::with_codec(config, ByteCodec::new(code))
    }

    /// Creates an empty byte archive that reuses an existing codec instead of
    /// building one.
    ///
    /// [`ByteCodec`] is `Clone`-cheap (its code and multiplication tables sit
    /// behind `Arc`s), so a fleet of archives over the same `(n, k)` code —
    /// e.g. the per-object archives of a sharded cluster — can share one set
    /// of `GF(2^8)` tables per process instead of materializing `n·k` cached
    /// coefficient tables per archive.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::CodecMismatch`] when the codec's code does
    /// not match the configuration's `(n, k, form)`.
    pub fn with_codec(config: ArchiveConfig, codec: ByteCodec) -> Result<Self, VersioningError> {
        let expected = (config.params().n, config.params().k, config.form());
        let code = codec.code();
        let actual = (code.n(), code.k(), code.form());
        if expected != actual {
            return Err(VersioningError::CodecMismatch { expected, actual });
        }
        Ok(Self {
            config,
            codec,
            object_len: None,
            entries: Vec::new(),
            latest_full: None,
            latest_version: Vec::new(),
            sparsity: Vec::new(),
            versions: 0,
            delta_run: 0,
            checkpoints_written: 0,
        })
    }

    /// The archive configuration.
    pub fn config(&self) -> ArchiveConfig {
        self.config
    }

    /// The underlying erasure code.
    pub fn code(&self) -> &SecCode<sec_gf::Gf256> {
        self.codec.code()
    }

    /// The archive's batched codec. Cloning it is cheap and shares the code
    /// and multiplication tables, which is how `sec-store` and `sec-engine`
    /// avoid rebuilding them per store.
    pub fn codec(&self) -> &ByteCodec {
        &self.codec
    }

    /// Shared handle to the underlying code (no clone of the generator).
    pub fn shared_code(&self) -> std::sync::Arc<SecCode<sec_gf::Gf256>> {
        self.codec.shared_code()
    }

    /// Number of versions appended so far (`L`).
    pub fn len(&self) -> usize {
        self.versions
    }

    /// `true` when no version has been appended.
    pub fn is_empty(&self) -> bool {
        self.versions == 0
    }

    /// Byte length every version must have, fixed by the first append
    /// (`None` while the archive is empty).
    pub fn object_len(&self) -> Option<usize> {
        self.object_len
    }

    /// Per-block sparsity profile `γ_2, …, γ_L` of the appended versions.
    pub fn sparsity_profile(&self) -> &[usize] {
        &self.sparsity
    }

    /// Number of policy-forced checkpoint entries written so far (full
    /// versions stored by the [`CheckpointPolicy`](crate::CheckpointPolicy)
    /// where the strategy alone would have stored a delta).
    pub fn checkpoints_written(&self) -> usize {
        self.checkpoints_written
    }

    /// The stored entries, in append order (excluding the Reversed-SEC latest
    /// full copy, exposed by [`ByteVersionedArchive::latest_full_entry`]).
    pub fn entries(&self) -> &[ByteEncodedEntry] {
        &self.entries
    }

    /// Reversed-SEC full copy of the latest version, when that strategy is in
    /// use and at least one version exists.
    pub fn latest_full_entry(&self) -> Option<&ByteEncodedEntry> {
        self.latest_full.as_ref()
    }

    /// Number of stored objects ([`ByteVersionedArchive::stored_entries`]
    /// without materializing the list).
    pub fn stored_entry_count(&self) -> usize {
        self.entries.len() + usize::from(self.latest_full.is_some())
    }

    /// Total number of stored coded bytes across all entries — the storage
    /// footprint.
    pub fn stored_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.shards.total_len()).sum::<usize>()
            + self.latest_full.as_ref().map_or(0, |e| e.shards.total_len())
    }

    /// Appends the next version, encoding it according to the configured
    /// strategy, and returns its version id.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::ObjectLengthMismatch`] when the version's
    /// byte length differs from the first version's, or an encoding error
    /// from the code layer.
    pub fn append_version(&mut self, object: &[u8]) -> Result<VersionId, VersioningError> {
        let k = self.config.params().k;
        if let Some(expected) = self.object_len {
            if object.len() != expected {
                return Err(VersioningError::ObjectLengthMismatch {
                    expected,
                    actual: object.len(),
                });
            }
        } else {
            self.object_len = Some(object.len());
        }
        let id = VersionId(self.versions + 1);

        if self.versions == 0 {
            let shards = self.codec.encode_blocks(&ByteShards::from_flat(object, k))?;
            let entry = ByteEncodedEntry {
                payload: StoredPayload::FullVersion { version: id.0 },
                shards,
            };
            match self.config.strategy() {
                EncodingStrategy::ReversedSec => self.latest_full = Some(entry),
                _ => self.entries.push(entry),
            }
        } else {
            // Bytewise delta against the cached previous version; γ counted
            // per block.
            let mut delta_bytes = object.to_vec();
            sec_gf::bulk8::xor_accumulate(&mut delta_bytes, &[&self.latest_version]);
            let delta = ByteShards::from_flat(&delta_bytes, k);
            let gamma = delta.weight();
            self.sparsity.push(gamma);
            // Anchor checkpoints: after `spacing` consecutive deltas the next
            // Basic/Optimized append stores the full version instead, bounding
            // every forward walk to at most `spacing` delta applications.
            let spacing = self.config.checkpoints().spacing;
            let checkpoint_due = spacing > 0 && self.delta_run >= spacing;

            match self.config.strategy() {
                EncodingStrategy::NonDifferential => {
                    let shards = self.codec.encode_blocks(&ByteShards::from_flat(object, k))?;
                    self.entries.push(ByteEncodedEntry {
                        payload: StoredPayload::FullVersion { version: id.0 },
                        shards,
                    });
                }
                EncodingStrategy::BasicSec => {
                    if checkpoint_due {
                        let shards = self.codec.encode_blocks(&ByteShards::from_flat(object, k))?;
                        self.entries.push(ByteEncodedEntry {
                            payload: StoredPayload::FullVersion { version: id.0 },
                            shards,
                        });
                        self.checkpoints_written += 1;
                        self.delta_run = 0;
                    } else {
                        let shards = self.codec.encode_blocks(&delta)?;
                        self.entries.push(ByteEncodedEntry {
                            payload: StoredPayload::Delta {
                                to: id.0,
                                sparsity: gamma,
                            },
                            shards,
                        });
                        self.delta_run += 1;
                    }
                }
                EncodingStrategy::OptimizedSec => {
                    let threshold_full = self.config.io_model().optimized_stores_full(gamma);
                    if threshold_full || checkpoint_due {
                        let shards = self.codec.encode_blocks(&ByteShards::from_flat(object, k))?;
                        self.entries.push(ByteEncodedEntry {
                            payload: StoredPayload::FullVersion { version: id.0 },
                            shards,
                        });
                        if !threshold_full {
                            self.checkpoints_written += 1;
                        }
                        self.delta_run = 0;
                    } else {
                        let shards = self.codec.encode_blocks(&delta)?;
                        self.entries.push(ByteEncodedEntry {
                            payload: StoredPayload::Delta {
                                to: id.0,
                                sparsity: gamma,
                            },
                            shards,
                        });
                        self.delta_run += 1;
                    }
                }
                EncodingStrategy::ReversedSec => {
                    let shards = self.codec.encode_blocks(&delta)?;
                    self.entries.push(ByteEncodedEntry {
                        payload: StoredPayload::Delta {
                            to: id.0,
                            sparsity: gamma,
                        },
                        shards,
                    });
                    let full = self.codec.encode_blocks(&ByteShards::from_flat(object, k))?;
                    self.latest_full = Some(ByteEncodedEntry {
                        payload: StoredPayload::FullVersion { version: id.0 },
                        shards: full,
                    });
                }
            }
        }

        self.latest_version = object.to_vec();
        self.versions += 1;
        Ok(id)
    }

    /// Appends every version of a sequence in order, returning the id of the
    /// last one.
    ///
    /// # Errors
    ///
    /// Propagates the first append error; versions appended before the error
    /// remain in the archive. An empty sequence on an empty archive yields
    /// [`VersioningError::EmptyArchive`].
    pub fn append_all<B: AsRef<[u8]>>(&mut self, versions: &[B]) -> Result<VersionId, VersioningError> {
        let mut last = VersionId(self.versions.max(1));
        for version in versions {
            last = self.append_version(version.as_ref())?;
        }
        if self.versions == 0 {
            return Err(VersioningError::EmptyArchive);
        }
        Ok(last)
    }

    /// Retrieves version `l` (1-based) assuming every node is alive, decoding
    /// every touched entry through the batched byte pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::NoSuchVersion`] for an out-of-range `l`, or
    /// [`VersioningError::EmptyArchive`] when nothing has been appended.
    pub fn retrieve_version(&self, l: usize) -> Result<ByteVersionRetrieval, VersioningError> {
        self.check_version(l)?;
        let entries = self.stored_entries();
        let out = walk_version(
            self.config.strategy(),
            entries.len(),
            |idx| entries[idx].payload,
            l,
            |idx| decode_entry(&self.codec, entries[idx]),
        )?;
        Ok(ByteVersionRetrieval {
            version: l,
            data: self.trim(&out.shards),
            io_reads: out.io_reads,
            entries_read: out.entries_read,
        })
    }

    /// Retrieves the first `l` versions assuming every node is alive.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::NoSuchVersion`] for an out-of-range `l`, or
    /// [`VersioningError::EmptyArchive`] when nothing has been appended.
    pub fn retrieve_prefix(&self, l: usize) -> Result<BytePrefixRetrieval, VersioningError> {
        self.check_version(l)?;
        let entries = self.stored_entries();
        let out = walk_prefix(
            self.config.strategy(),
            entries.len(),
            |idx| entries[idx].payload,
            l,
            self.object_len.unwrap_or(0),
            |idx| decode_entry(&self.codec, entries[idx]),
        )?;
        Ok(BytePrefixRetrieval {
            versions: out.versions,
            io_reads: out.io_reads,
            entries_read: out.entries_read,
        })
    }

    /// All stored entries in the walk order shared by every read layer
    /// ([`crate::walk`]): append-order entries, with the Reversed-SEC full
    /// latest copy as the final element. `sec-store` and `sec-engine` build
    /// their node layouts and read paths from this list, so the ordering
    /// convention lives here, once.
    pub fn stored_entries(&self) -> Vec<&ByteEncodedEntry> {
        let mut list: Vec<&ByteEncodedEntry> = self.entries.iter().collect();
        if let Some(latest) = self.latest_full.as_ref() {
            list.push(latest);
        }
        list
    }

    fn check_version(&self, l: usize) -> Result<(), VersioningError> {
        if self.is_empty() {
            return Err(VersioningError::EmptyArchive);
        }
        if l == 0 || l > self.len() {
            return Err(VersioningError::NoSuchVersion {
                requested: l,
                available: self.len(),
            });
        }
        Ok(())
    }

    /// Copies decoded data shards out as a flat object, dropping the zero
    /// padding (single copy, no intermediate clone of the padded buffer).
    fn trim(&self, shards: &ByteShards) -> Vec<u8> {
        crate::walk::trim_object(shards, self.object_len.unwrap_or(0))
    }
}

/// Decodes one stored entry with all nodes alive through the byte pipeline,
/// returning `(block_reads, decoded_data_shards)`.
fn decode_entry(
    codec: &ByteCodec,
    entry: &ByteEncodedEntry,
) -> Result<(usize, ByteShards), VersioningError> {
    let Some(target) = read_target(entry.payload) else {
        // Nothing changed; no reads needed at all.
        return Ok((0, ByteShards::zeroed(codec.code().k(), entry.shards.shard_len())));
    };
    let live: Vec<usize> = (0..codec.code().n()).collect();
    let plan = plan_read(codec.code(), &live, target)?;
    let shares: Vec<(usize, &[u8])> = plan.nodes.iter().map(|&i| (i, entry.shards.shard(i))).collect();
    let decoded = decode_planned(codec, plan.method, target, &shares)?;
    Ok((plan.io_reads, decoded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_erasure::GeneratorForm;

    fn archive(strategy: EncodingStrategy) -> ByteVersionedArchive {
        let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, strategy).unwrap();
        ByteVersionedArchive::new(config).unwrap()
    }

    #[test]
    fn with_codec_shares_tables_and_rejects_mismatches() {
        let config =
            ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec).unwrap();
        let donor = ByteVersionedArchive::new(config).unwrap();
        let shared = ByteVersionedArchive::with_codec(config, donor.codec().clone()).unwrap();
        // One set of mul tables per code: both archives point at the same
        // allocations.
        assert!(std::sync::Arc::ptr_eq(
            &donor.codec().shared_code(),
            &shared.codec().shared_code()
        ));
        assert!(std::sync::Arc::ptr_eq(
            &donor.codec().shared_tables(),
            &shared.codec().shared_tables()
        ));

        // A codec for a different (n, k) is rejected, not silently adopted.
        let other =
            ArchiveConfig::new(4, 2, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec).unwrap();
        let other_codec = ByteVersionedArchive::new(other).unwrap().codec().clone();
        match ByteVersionedArchive::with_codec(config, other_codec) {
            Err(VersioningError::CodecMismatch { expected, actual }) => {
                assert_eq!((expected.0, expected.1), (6, 3));
                assert_eq!((actual.0, actual.1), (4, 2));
            }
            other => panic!("expected CodecMismatch, got {other:?}"),
        }
        // Same (n, k) but the wrong generator form is a mismatch too.
        let sys =
            ArchiveConfig::new(6, 3, GeneratorForm::Systematic, EncodingStrategy::BasicSec).unwrap();
        let sys_codec = ByteVersionedArchive::new(sys).unwrap().codec().clone();
        assert!(matches!(
            ByteVersionedArchive::with_codec(config, sys_codec),
            Err(VersioningError::CodecMismatch { .. })
        ));
    }

    /// Three versions of a 90-byte object (30-byte blocks): v2 edits one
    /// block (γ = 1), v3 edits two blocks (γ = 2 ≥ k/2).
    fn three_versions() -> Vec<Vec<u8>> {
        let v1: Vec<u8> = (0..90).map(|i| (i * 13 + 5) as u8).collect();
        let mut v2 = v1.clone();
        v2[35] ^= 0x42; // block 1
        let mut v3 = v2.clone();
        v3[0] ^= 0x01; // block 0
        v3[89] ^= 0x80; // block 2
        vec![v1, v2, v3]
    }

    #[test]
    fn basic_sec_stores_full_then_deltas() {
        let mut a = archive(EncodingStrategy::BasicSec);
        assert!(a.is_empty());
        a.append_all(&three_versions()).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.object_len(), Some(90));
        assert_eq!(a.sparsity_profile(), &[1, 2]);
        let payloads: Vec<StoredPayload> = a.entries().iter().map(|e| e.payload).collect();
        assert_eq!(
            payloads,
            vec![
                StoredPayload::FullVersion { version: 1 },
                StoredPayload::Delta { to: 2, sparsity: 1 },
                StoredPayload::Delta { to: 3, sparsity: 2 },
            ]
        );
        assert!(a.latest_full_entry().is_none());
        // L entries × n blocks × 30 bytes.
        assert_eq!(a.stored_bytes(), 3 * 6 * 30);
    }

    #[test]
    fn every_strategy_round_trips_every_version() {
        for strategy in [
            EncodingStrategy::BasicSec,
            EncodingStrategy::OptimizedSec,
            EncodingStrategy::ReversedSec,
            EncodingStrategy::NonDifferential,
        ] {
            for form in [GeneratorForm::Systematic, GeneratorForm::NonSystematic] {
                let config = ArchiveConfig::new(6, 3, form, strategy).unwrap();
                let mut a = ByteVersionedArchive::new(config).unwrap();
                let versions = three_versions();
                a.append_all(&versions).unwrap();
                for (l, expect) in versions.iter().enumerate() {
                    let r = a.retrieve_version(l + 1).unwrap();
                    assert_eq!(&r.data, expect, "{strategy} {form} version {}", l + 1);
                    assert_eq!(r.version, l + 1);
                }
                let prefix = a.retrieve_prefix(versions.len()).unwrap();
                assert_eq!(prefix.versions, versions, "{strategy} {form} prefix");
            }
        }
    }

    #[test]
    fn optimized_sec_stores_full_for_dense_deltas() {
        let mut a = archive(EncodingStrategy::OptimizedSec);
        a.append_all(&three_versions()).unwrap();
        let payloads: Vec<StoredPayload> = a.entries().iter().map(|e| e.payload).collect();
        // γ3 = 2 ≥ k/2 = 1.5 → version 3 stored in full.
        assert_eq!(
            payloads,
            vec![
                StoredPayload::FullVersion { version: 1 },
                StoredPayload::Delta { to: 2, sparsity: 1 },
                StoredPayload::FullVersion { version: 3 },
            ]
        );
    }

    #[test]
    fn reversed_sec_keeps_latest_full() {
        let mut a = archive(EncodingStrategy::ReversedSec);
        let versions = three_versions();
        a.append_all(&versions).unwrap();
        assert_eq!(a.entries().len(), 2);
        let latest = a.latest_full_entry().unwrap();
        assert_eq!(latest.payload, StoredPayload::FullVersion { version: 3 });
        // Latest version costs only the full copy.
        let r = a.retrieve_version(3).unwrap();
        assert_eq!(r.data, versions[2]);
        assert_eq!(r.entries_read, 1);
        assert_eq!(r.io_reads, 3);
    }

    #[test]
    fn io_reads_match_io_model() {
        let mut a = archive(EncodingStrategy::BasicSec);
        let versions = three_versions();
        a.append_all(&versions).unwrap();
        let model = a.config().io_model();
        let profile = a.sparsity_profile().to_vec();
        for l in 1..=versions.len() {
            let r = a.retrieve_version(l).unwrap();
            assert_eq!(
                r.io_reads,
                model.version_reads(EncodingStrategy::BasicSec, &profile, l),
                "version {l}"
            );
        }
        // k + 2γ2 + min(2γ3, k) = 3 + 2 + 3.
        assert_eq!(a.retrieve_version(3).unwrap().io_reads, 8);
    }

    #[test]
    fn identical_consecutive_versions_cost_no_delta_reads() {
        let mut a = archive(EncodingStrategy::BasicSec);
        let v = vec![9u8; 30];
        a.append_version(&v).unwrap();
        a.append_version(&v).unwrap();
        assert_eq!(a.sparsity_profile(), &[0]);
        let r = a.retrieve_version(2).unwrap();
        assert_eq!(r.data, v);
        assert_eq!(r.io_reads, 3);
    }

    #[test]
    fn append_validates_object_length() {
        let mut a = archive(EncodingStrategy::BasicSec);
        a.append_version(&[1, 2, 3, 4, 5, 6]).unwrap();
        assert!(matches!(
            a.append_version(&[1, 2]),
            Err(VersioningError::ObjectLengthMismatch {
                expected: 6,
                actual: 2
            })
        ));
        let empty: Vec<Vec<u8>> = Vec::new();
        let mut fresh = archive(EncodingStrategy::BasicSec);
        assert!(matches!(
            fresh.append_all(&empty),
            Err(VersioningError::EmptyArchive)
        ));
    }

    #[test]
    fn retrieval_error_paths() {
        let empty = archive(EncodingStrategy::BasicSec);
        assert!(matches!(
            empty.retrieve_version(1),
            Err(VersioningError::EmptyArchive)
        ));
        let mut a = archive(EncodingStrategy::BasicSec);
        a.append_all(&three_versions()).unwrap();
        assert!(matches!(
            a.retrieve_version(0),
            Err(VersioningError::NoSuchVersion {
                requested: 0,
                available: 3
            })
        ));
        assert!(matches!(
            a.retrieve_version(4),
            Err(VersioningError::NoSuchVersion { requested: 4, .. })
        ));
    }

    #[test]
    fn byte_archive_matches_generic_archive_read_counts() {
        // The byte archive and the generic symbol archive must agree on I/O
        // accounting when fed structurally identical version histories.
        use crate::archive::VersionedArchive;
        use sec_gf::{GaloisField, Gf256};

        let config =
            ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec).unwrap();
        let mut bytes_archive = ByteVersionedArchive::new(config).unwrap();
        let mut symbol_archive: VersionedArchive<Gf256> = VersionedArchive::new(config).unwrap();

        // 3-byte objects: one byte per block, so block sparsity == symbol
        // sparsity and the read counts must line up exactly.
        let versions: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![1, 9, 3], vec![4, 9, 8]];
        bytes_archive.append_all(&versions).unwrap();
        for v in &versions {
            let symbols: Vec<Gf256> = v.iter().map(|&b| Gf256::from_u64(u64::from(b))).collect();
            symbol_archive.append_version(&symbols).unwrap();
        }
        assert_eq!(
            bytes_archive.sparsity_profile(),
            symbol_archive.sparsity_profile()
        );
        for l in 1..=3 {
            let via_bytes = bytes_archive.retrieve_version(l).unwrap();
            let via_symbols = symbol_archive.retrieve_version(l).unwrap();
            assert_eq!(via_bytes.io_reads, via_symbols.io_reads, "version {l}");
            let symbol_bytes: Vec<u8> = via_symbols.data.iter().map(|s| s.to_u64() as u8).collect();
            assert_eq!(via_bytes.data, symbol_bytes, "version {l}");
        }
    }

    #[test]
    fn checkpoint_policy_bounds_read_cost_and_round_trips() {
        use crate::archive::{CheckpointPolicy, StoredPayload};

        // Six versions of a 90-byte object, each editing a single block, with
        // a checkpoint every 2 deltas: the chain stores fulls at entries 0
        // and 3, so no retrieval rewinds through more than 2 deltas.
        let spacing = 2;
        let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
            .unwrap()
            .with_checkpoints(CheckpointPolicy::every(spacing));
        let mut a = ByteVersionedArchive::new(config).unwrap();
        let mut versions = vec![(0..90).map(|i| (i * 7 + 3) as u8).collect::<Vec<u8>>()];
        for j in 1..6 {
            let mut next = versions[j - 1].clone();
            next[30 * (j % 3)] ^= 0x5a; // one edited block → γ = 1
            versions.push(next);
        }
        a.append_all(&versions).unwrap();

        let fulls: Vec<usize> = a
            .stored_entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.payload, StoredPayload::FullVersion { .. }))
            .map(|(idx, _)| idx)
            .collect();
        assert_eq!(fulls, vec![0, 3]);
        assert_eq!(a.checkpoints_written(), 1);

        // Bytes still round-trip, reads anchor on the checkpoint, and the
        // layout-aware io-model predicts each cost exactly.
        let model = a.config().io_model();
        let layout: Vec<StoredPayload> = a.stored_entries().iter().map(|e| e.payload).collect();
        for l in 1..=versions.len() {
            let r = a.retrieve_version(l).unwrap();
            assert_eq!(r.data, versions[l - 1], "version {l}");
            assert_eq!(
                r.io_reads,
                model.version_reads_for_layout(EncodingStrategy::BasicSec, &layout, l),
                "version {l}"
            );
            // k · (1 + c): the full anchor plus at most `spacing` deltas.
            assert!(r.io_reads <= 3 * (1 + spacing), "version {l}");
        }
        let prefix = a.retrieve_prefix(versions.len()).unwrap();
        assert_eq!(prefix.versions, versions);
        assert_eq!(
            prefix.io_reads,
            model.prefix_reads_for_layout(EncodingStrategy::BasicSec, &layout, versions.len())
        );

        // A disabled policy leaves the paper layout untouched.
        let plain =
            ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec).unwrap();
        let mut p = ByteVersionedArchive::new(plain).unwrap();
        p.append_all(&versions).unwrap();
        assert_eq!(p.checkpoints_written(), 0);
        assert_eq!(
            p.stored_entries()
                .iter()
                .filter(|e| matches!(e.payload, StoredPayload::FullVersion { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn optimized_checkpoints_skip_threshold_fulls() {
        use crate::archive::{CheckpointPolicy, StoredPayload};

        // Optimized SEC already stores a full when 2γ ≥ k; the policy only
        // counts the fulls *it* forces. With spacing 2: v3's threshold full
        // resets the delta run, so the first policy checkpoint is the v6 full
        // after the two sparse deltas v4 and v5.
        let config =
            ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::OptimizedSec)
                .unwrap()
                .with_checkpoints(CheckpointPolicy::every(2));
        let mut a = ByteVersionedArchive::new(config).unwrap();
        let v1: Vec<u8> = (0..90).map(|i| (i * 11 + 1) as u8).collect();
        let mut v2 = v1.clone();
        v2[0] ^= 1; // γ = 1 → delta (run 1)
        let mut v3 = v2.clone();
        v3[0] ^= 2;
        v3[30] ^= 2; // γ = 2 ≥ k/2 → threshold full (run reset)
        let mut v4 = v3.clone();
        v4[60] ^= 3; // γ = 1 → delta (run 1)
        let mut v5 = v4.clone();
        v5[60] ^= 4; // γ = 1 → delta (run 2)
        let mut v6 = v5.clone();
        v6[30] ^= 5; // γ = 1, but run = 2 → checkpoint full
        a.append_all(&[v1, v2, v3, v4, v5, v6.clone()]).unwrap();

        let payloads: Vec<StoredPayload> = a.stored_entries().iter().map(|e| e.payload).collect();
        assert!(matches!(payloads[2], StoredPayload::FullVersion { version: 3 }));
        assert!(matches!(payloads[3], StoredPayload::Delta { to: 4, sparsity: 1 }));
        assert!(matches!(payloads[4], StoredPayload::Delta { to: 5, sparsity: 1 }));
        assert!(matches!(payloads[5], StoredPayload::FullVersion { version: 6 }));
        // Only the v6 full came from the policy; the v3 full is the paper's rule.
        assert_eq!(a.checkpoints_written(), 1);
        assert_eq!(a.retrieve_version(6).unwrap().data, v6);
        assert_eq!(a.retrieve_version(6).unwrap().io_reads, 3);
    }
}
