//! Retrieval of versions (and version prefixes) from a [`VersionedArchive`],
//! with exact I/O read accounting.
//!
//! The functions here assume all `n` nodes of every entry are alive (the
//! failure-aware path lives in `sec-store`, which combines the archive with a
//! placement and a failure pattern). Under that assumption the read counts
//! reproduce eqs. (3) and (4) of the paper exactly, which the tests assert
//! against [`IoModel`](crate::io_model::IoModel).

use sec_erasure::read_plan::{plan_and_decode, ReadTarget};
use sec_gf::GaloisField;

use crate::archive::{EncodedEntry, EncodingStrategy, StoredPayload, VersionedArchive};
use crate::delta::Delta;
use crate::error::VersioningError;

/// Result of retrieving a single version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionRetrieval<F> {
    /// The 1-based version number that was retrieved.
    pub version: usize,
    /// The reconstructed object.
    pub data: Vec<F>,
    /// Total disk I/O reads spent.
    pub io_reads: usize,
    /// Number of stored entries that were touched.
    pub entries_read: usize,
}

/// Result of retrieving the first `l` versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixRetrieval<F> {
    /// The reconstructed versions `x_1, …, x_l` in order.
    pub versions: Vec<Vec<F>>,
    /// Total disk I/O reads spent.
    pub io_reads: usize,
    /// Number of stored entries that were touched.
    pub entries_read: usize,
}

impl<F: GaloisField> VersionedArchive<F> {
    /// Retrieves version `l` (1-based) assuming every node is alive.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::NoSuchVersion`] for an out-of-range `l`, or
    /// [`VersioningError::EmptyArchive`] when nothing has been appended.
    pub fn retrieve_version(&self, l: usize) -> Result<VersionRetrieval<F>, VersioningError> {
        self.check_version(l)?;
        match self.config().strategy() {
            EncodingStrategy::NonDifferential => self.retrieve_non_differential(l),
            EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => self.retrieve_forward(l),
            EncodingStrategy::ReversedSec => self.retrieve_reversed(l),
        }
    }

    /// Retrieves the first `l` versions assuming every node is alive.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::NoSuchVersion`] for an out-of-range `l`, or
    /// [`VersioningError::EmptyArchive`] when nothing has been appended.
    pub fn retrieve_prefix(&self, l: usize) -> Result<PrefixRetrieval<F>, VersioningError> {
        self.check_version(l)?;
        match self.config().strategy() {
            EncodingStrategy::NonDifferential => {
                let mut versions = Vec::with_capacity(l);
                let mut io_reads = 0;
                for v in 1..=l {
                    let r = self.retrieve_non_differential(v)?;
                    io_reads += r.io_reads;
                    versions.push(r.data);
                }
                Ok(PrefixRetrieval {
                    versions,
                    io_reads,
                    entries_read: l,
                })
            }
            EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
                // Walk forward from x_1, decoding every stored entry up to l.
                let mut io_reads = 0;
                let mut versions: Vec<Vec<F>> = Vec::with_capacity(l);
                for (idx, entry) in self.entries().iter().take(l).enumerate() {
                    let (reads, decoded) = self.decode_entry(entry)?;
                    io_reads += reads;
                    let version = match entry.payload {
                        StoredPayload::FullVersion { .. } => decoded,
                        StoredPayload::Delta { .. } => {
                            let base = versions
                                .get(idx - 1)
                                .expect("delta entries always follow their base version");
                            Delta::from_vec(decoded).apply(base)?
                        }
                    };
                    versions.push(version);
                }
                Ok(PrefixRetrieval {
                    versions,
                    io_reads,
                    entries_read: l,
                })
            }
            EncodingStrategy::ReversedSec => {
                // Reconstruct every version from the latest full copy
                // backwards, then keep the first l.
                let total = self.len();
                let mut io_reads = 0;
                let latest_entry = self.latest_full_entry().ok_or(VersioningError::EmptyArchive)?;
                let (reads, latest) = self.decode_entry(latest_entry)?;
                io_reads += reads;
                let mut versions_rev = vec![latest];
                for entry in self.entries().iter().rev() {
                    let (reads, decoded) = self.decode_entry(entry)?;
                    io_reads += reads;
                    let newer = versions_rev
                        .last()
                        .expect("at least the latest version is present");
                    let older = Delta::from_vec(decoded).unapply(newer)?;
                    versions_rev.push(older);
                }
                versions_rev.reverse();
                debug_assert_eq!(versions_rev.len(), total);
                versions_rev.truncate(l);
                Ok(PrefixRetrieval {
                    versions: versions_rev,
                    io_reads,
                    entries_read: self.entries().len() + 1,
                })
            }
        }
    }

    fn check_version(&self, l: usize) -> Result<(), VersioningError> {
        if self.is_empty() {
            return Err(VersioningError::EmptyArchive);
        }
        if l == 0 || l > self.len() {
            return Err(VersioningError::NoSuchVersion {
                requested: l,
                available: self.len(),
            });
        }
        Ok(())
    }

    /// Decodes one stored entry with all nodes alive, returning
    /// `(io_reads, decoded_object)`.
    fn decode_entry(&self, entry: &EncodedEntry<F>) -> Result<(usize, Vec<F>), VersioningError> {
        let live: Vec<usize> = (0..self.code().n()).collect();
        let target = match entry.payload {
            StoredPayload::FullVersion { .. } => ReadTarget::Full,
            StoredPayload::Delta { sparsity, .. } => {
                if sparsity == 0 {
                    // Nothing changed; no reads needed at all.
                    return Ok((0, vec![F::ZERO; self.code().k()]));
                }
                ReadTarget::Sparse { gamma: sparsity }
            }
        };
        let (plan, decoded) = plan_and_decode(self.code(), &entry.codeword, &live, target)?;
        Ok((plan.io_reads, decoded))
    }

    fn retrieve_non_differential(&self, l: usize) -> Result<VersionRetrieval<F>, VersioningError> {
        let entry = &self.entries()[l - 1];
        let (io_reads, data) = self.decode_entry(entry)?;
        Ok(VersionRetrieval {
            version: l,
            data,
            io_reads,
            entries_read: 1,
        })
    }

    /// Basic / Optimized retrieval: decode from the nearest preceding full
    /// version and apply deltas forward.
    fn retrieve_forward(&self, l: usize) -> Result<VersionRetrieval<F>, VersioningError> {
        // Find the anchor: the most recent entry at or before l that stores a
        // full version. Entry 0 always does.
        let anchor = self.entries()[..l]
            .iter()
            .rposition(|e| matches!(e.payload, StoredPayload::FullVersion { .. }))
            .expect("the first entry always stores a full version");
        let mut io_reads = 0;
        let mut entries_read = 0;
        let (reads, mut data) = self.decode_entry(&self.entries()[anchor])?;
        io_reads += reads;
        entries_read += 1;
        for entry in &self.entries()[anchor + 1..l] {
            let (reads, decoded) = self.decode_entry(entry)?;
            io_reads += reads;
            entries_read += 1;
            data = Delta::from_vec(decoded).apply(&data)?;
        }
        Ok(VersionRetrieval {
            version: l,
            data,
            io_reads,
            entries_read,
        })
    }

    /// Reversed retrieval: decode the latest full copy and un-apply deltas
    /// backwards down to version `l`.
    fn retrieve_reversed(&self, l: usize) -> Result<VersionRetrieval<F>, VersioningError> {
        let latest_entry = self.latest_full_entry().ok_or(VersioningError::EmptyArchive)?;
        let (mut io_reads, mut data) = self.decode_entry(latest_entry)?;
        let mut entries_read = 1;
        // Entries are z_2 … z_L in order; un-apply z_L, z_{L-1}, …, z_{l+1}.
        for entry in self.entries()[l.saturating_sub(1)..].iter().rev() {
            let (reads, decoded) = self.decode_entry(entry)?;
            io_reads += reads;
            entries_read += 1;
            data = Delta::from_vec(decoded).unapply(&data)?;
        }
        Ok(VersionRetrieval {
            version: l,
            data,
            io_reads,
            entries_read,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::ArchiveConfig;
    use sec_erasure::GeneratorForm;
    use sec_gf::Gf1024;

    /// Builds the §III-D version sequence: k = 10, sparsity profile {3, 8, 3, 6}.
    fn paper_versions() -> Vec<Vec<Gf1024>> {
        let k = 10;
        let base: Vec<Gf1024> = (0..k as u64).map(|v| Gf1024::from_u64(v + 1)).collect();
        let mut versions = vec![base];
        let edits: [&[usize]; 4] = [
            &[0, 1, 2],
            &[0, 1, 2, 3, 4, 5, 6, 7],
            &[3, 4, 5],
            &[0, 2, 4, 6, 8, 9],
        ];
        for positions in edits {
            let mut next = versions.last().unwrap().clone();
            for &p in positions {
                next[p] += Gf1024::from_u64(512);
            }
            versions.push(next);
        }
        versions
    }

    fn build(
        strategy: EncodingStrategy,
        form: GeneratorForm,
    ) -> (VersionedArchive<Gf1024>, Vec<Vec<Gf1024>>) {
        let config = ArchiveConfig::new(20, 10, form, strategy).unwrap();
        let mut archive = VersionedArchive::new(config).unwrap();
        let versions = paper_versions();
        archive.append_all(&versions).unwrap();
        (archive, versions)
    }

    #[test]
    fn every_strategy_recovers_every_version_exactly() {
        for strategy in [
            EncodingStrategy::BasicSec,
            EncodingStrategy::OptimizedSec,
            EncodingStrategy::ReversedSec,
            EncodingStrategy::NonDifferential,
        ] {
            for form in [GeneratorForm::Systematic, GeneratorForm::NonSystematic] {
                let (archive, versions) = build(strategy, form);
                for l in 1..=versions.len() {
                    let r = archive.retrieve_version(l).unwrap();
                    assert_eq!(r.data, versions[l - 1], "{strategy} {form} version {l}");
                    assert_eq!(r.version, l);
                }
                let prefix = archive.retrieve_prefix(versions.len()).unwrap();
                assert_eq!(prefix.versions, versions, "{strategy} {form} prefix");
            }
        }
    }

    #[test]
    fn io_reads_match_io_model_for_basic_sec() {
        let (archive, versions) = build(EncodingStrategy::BasicSec, GeneratorForm::NonSystematic);
        let model = archive.config().io_model();
        assert_eq!(archive.sparsity_profile(), &[3, 8, 3, 6]);
        let expect_version = [10, 16, 26, 32, 42];
        for l in 1..=versions.len() {
            let r = archive.retrieve_version(l).unwrap();
            assert_eq!(r.io_reads, expect_version[l - 1], "version {l}");
            assert_eq!(
                r.io_reads,
                model.version_reads(EncodingStrategy::BasicSec, archive.sparsity_profile(), l)
            );
            let p = archive.retrieve_prefix(l).unwrap();
            assert_eq!(
                p.io_reads,
                model.prefix_reads(EncodingStrategy::BasicSec, archive.sparsity_profile(), l)
            );
        }
        // Total for all 5 versions: 42 (vs 50 non-differential).
        assert_eq!(archive.retrieve_prefix(5).unwrap().io_reads, 42);
    }

    #[test]
    fn io_reads_match_io_model_for_optimized_sec() {
        let (archive, versions) = build(EncodingStrategy::OptimizedSec, GeneratorForm::NonSystematic);
        let model = archive.config().io_model();
        let expect_version = [10, 16, 10, 16, 10];
        for l in 1..=versions.len() {
            let r = archive.retrieve_version(l).unwrap();
            assert_eq!(r.io_reads, expect_version[l - 1], "version {l}");
            assert_eq!(
                r.io_reads,
                model.version_reads(EncodingStrategy::OptimizedSec, archive.sparsity_profile(), l)
            );
        }
        assert_eq!(archive.retrieve_prefix(5).unwrap().io_reads, 42);
    }

    #[test]
    fn io_reads_match_io_model_for_reversed_and_non_differential() {
        let (rev, versions) = build(EncodingStrategy::ReversedSec, GeneratorForm::NonSystematic);
        let model = rev.config().io_model();
        for l in 1..=versions.len() {
            let r = rev.retrieve_version(l).unwrap();
            assert_eq!(
                r.io_reads,
                model.version_reads(EncodingStrategy::ReversedSec, rev.sparsity_profile(), l),
                "reversed version {l}"
            );
        }
        assert_eq!(rev.retrieve_version(5).unwrap().io_reads, 10);

        let (nd, _) = build(EncodingStrategy::NonDifferential, GeneratorForm::NonSystematic);
        for l in 1..=5 {
            assert_eq!(nd.retrieve_version(l).unwrap().io_reads, 10);
            assert_eq!(nd.retrieve_prefix(l).unwrap().io_reads, 10 * l);
        }
    }

    #[test]
    fn systematic_form_gives_same_read_counts_for_rate_half() {
        // Rate-1/2 code: systematic SEC exploits the same sparsity range as
        // non-systematic (paper §III-C), so the I/O counts agree.
        let (sys, _) = build(EncodingStrategy::BasicSec, GeneratorForm::Systematic);
        let (ns, _) = build(EncodingStrategy::BasicSec, GeneratorForm::NonSystematic);
        for l in 1..=5 {
            assert_eq!(
                sys.retrieve_version(l).unwrap().io_reads,
                ns.retrieve_version(l).unwrap().io_reads
            );
        }
    }

    #[test]
    fn retrieval_error_paths() {
        let config =
            ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec).unwrap();
        let empty: VersionedArchive<Gf1024> = VersionedArchive::new(config).unwrap();
        assert!(matches!(
            empty.retrieve_version(1),
            Err(VersioningError::EmptyArchive)
        ));
        assert!(matches!(
            empty.retrieve_prefix(1),
            Err(VersioningError::EmptyArchive)
        ));

        let (archive, _) = build(EncodingStrategy::BasicSec, GeneratorForm::NonSystematic);
        assert!(matches!(
            archive.retrieve_version(0),
            Err(VersioningError::NoSuchVersion {
                requested: 0,
                available: 5
            })
        ));
        assert!(matches!(
            archive.retrieve_version(6),
            Err(VersioningError::NoSuchVersion { requested: 6, .. })
        ));
    }

    #[test]
    fn identical_consecutive_versions_cost_no_delta_reads() {
        let config =
            ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec).unwrap();
        let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config).unwrap();
        let v: Vec<Gf1024> = vec![Gf1024::from_u64(5); 3];
        archive.append_version(&v).unwrap();
        archive.append_version(&v).unwrap();
        let r = archive.retrieve_version(2).unwrap();
        assert_eq!(r.data, v);
        // k reads for x1, zero reads for the empty delta.
        assert_eq!(r.io_reads, 3);
    }

    #[test]
    fn entries_read_counts() {
        let (archive, _) = build(EncodingStrategy::BasicSec, GeneratorForm::NonSystematic);
        assert_eq!(archive.retrieve_version(1).unwrap().entries_read, 1);
        assert_eq!(archive.retrieve_version(3).unwrap().entries_read, 3);
        assert_eq!(archive.retrieve_prefix(4).unwrap().entries_read, 4);
        let (rev, _) = build(EncodingStrategy::ReversedSec, GeneratorForm::NonSystematic);
        // Latest version: only the full copy is touched.
        assert_eq!(rev.retrieve_version(5).unwrap().entries_read, 1);
        // Version 1: full copy + all four deltas.
        assert_eq!(rev.retrieve_version(1).unwrap().entries_read, 5);
    }
}
