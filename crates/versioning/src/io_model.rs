//! Closed-form I/O read accounting for the SEC strategies — eqs. (3) and (4)
//! of the paper and their Optimized / Reversed / non-differential variants.
//!
//! Everything in this module is a pure function of the code parameters
//! `(n, k)`, the generator form, and the sparsity profile `{γ_j}`; no data is
//! touched. The archive's operational retrieval path reproduces the same
//! numbers (see `retrieval` tests), and the Fig. 9 / §III-D experiment binary
//! prints them directly from here.

use sec_erasure::{CodeParams, GeneratorForm};

use crate::archive::{EncodingStrategy, StoredPayload};

/// I/O read model for one `(n, k)` code and generator form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoModel {
    params: CodeParams,
    form: GeneratorForm,
}

impl IoModel {
    /// Creates the model.
    pub fn new(params: CodeParams, form: GeneratorForm) -> Self {
        Self { params, form }
    }

    /// Code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// Number of reads to retrieve a *fully encoded* object: always `k`.
    pub fn full_object_reads(&self) -> usize {
        self.params.k
    }

    /// Number of reads to retrieve a stored delta of sparsity `gamma`
    /// (paper: `min(2γ, k)` for non-systematic SEC; systematic SEC
    /// additionally requires `2γ ≤ n − k` to use the parity block, §III-C).
    pub fn delta_reads(&self, gamma: usize) -> usize {
        let k = self.params.k;
        if gamma == 0 {
            return 0;
        }
        if 2 * gamma >= k {
            return k;
        }
        match self.form {
            GeneratorForm::NonSystematic => 2 * gamma,
            GeneratorForm::Systematic => {
                if 2 * gamma <= self.params.n - k {
                    2 * gamma
                } else {
                    k
                }
            }
        }
    }

    /// Whether the Optimized strategy stores version `j+1` in full
    /// (when `γ_{j+1} ≥ k/2`, storing the delta gives no I/O benefit).
    pub fn optimized_stores_full(&self, gamma: usize) -> bool {
        2 * gamma >= self.params.k
    }

    /// Reads per stored entry for the given strategy and sparsity profile.
    ///
    /// `sparsity[j]` is `γ_{j+2}`, i.e. the sparsity of the delta from version
    /// `j+1` to version `j+2` (the profile has `L - 1` entries for `L`
    /// versions). The returned vector has `L` entries: the cost of reading
    /// each stored object individually.
    pub fn entry_reads(&self, strategy: EncodingStrategy, sparsity: &[usize]) -> Vec<usize> {
        let k = self.params.k;
        let versions = sparsity.len() + 1;
        match strategy {
            EncodingStrategy::NonDifferential => vec![k; versions],
            EncodingStrategy::BasicSec => {
                let mut reads = Vec::with_capacity(versions);
                reads.push(k);
                reads.extend(sparsity.iter().map(|&g| self.delta_reads(g)));
                reads
            }
            EncodingStrategy::OptimizedSec => {
                let mut reads = Vec::with_capacity(versions);
                reads.push(k);
                reads.extend(sparsity.iter().map(|&g| {
                    if self.optimized_stores_full(g) {
                        k
                    } else {
                        self.delta_reads(g)
                    }
                }));
                reads
            }
            EncodingStrategy::ReversedSec => {
                // Stored objects: {z_2, …, z_L, x_L}. Entry j (1-based version
                // j ≥ 2) is the delta; version 1 has no stored object of its
                // own — its "entry" is the full latest copy. We report, per
                // version index, the cost of reading the object stored *for*
                // that version: deltas for 2..L and the full copy attributed
                // to the latest version.
                let mut reads = Vec::with_capacity(versions);
                reads.push(k); // the full latest copy (attributed to x_L ≡ entry 0 storage-wise)
                reads.extend(sparsity.iter().map(|&g| self.delta_reads(g)));
                reads
            }
        }
    }

    /// Total reads `η(x_l)` to retrieve version `l` alone (1-based), eq. (3)
    /// and its variants.
    ///
    /// # Panics
    ///
    /// Panics if `l` is zero or exceeds `sparsity.len() + 1`.
    pub fn version_reads(&self, strategy: EncodingStrategy, sparsity: &[usize], l: usize) -> usize {
        let versions = sparsity.len() + 1;
        assert!(l >= 1 && l <= versions, "version {l} out of range 1..={versions}");
        let k = self.params.k;
        match strategy {
            EncodingStrategy::NonDifferential => k,
            EncodingStrategy::BasicSec => {
                // η(x_l) = k + Σ_{j=2}^{l} min(2γ_j, k).
                k + sparsity[..l - 1]
                    .iter()
                    .map(|&g| self.delta_reads(g))
                    .sum::<usize>()
            }
            EncodingStrategy::OptimizedSec => {
                // l' = most recent version ≤ l stored in full.
                let anchor = self.optimized_anchor(sparsity, l);
                k + sparsity[anchor..l - 1]
                    .iter()
                    .map(|&g| self.delta_reads(g))
                    .sum::<usize>()
            }
            EncodingStrategy::ReversedSec => {
                // Walk backwards from the full latest version x_L:
                // x_l = x_L − Σ_{j=l+1}^{L} z_j, so read k + Σ_{j=l+1}^{L} reads(z_j).
                k + sparsity[l - 1..]
                    .iter()
                    .map(|&g| self.delta_reads(g))
                    .sum::<usize>()
            }
        }
    }

    /// Total reads `η(x_1, …, x_l)` to retrieve the first `l` versions,
    /// eq. (4) and its variants.
    ///
    /// # Panics
    ///
    /// Panics if `l` is zero or exceeds `sparsity.len() + 1`.
    pub fn prefix_reads(&self, strategy: EncodingStrategy, sparsity: &[usize], l: usize) -> usize {
        let versions = sparsity.len() + 1;
        assert!(l >= 1 && l <= versions, "version {l} out of range 1..={versions}");
        let k = self.params.k;
        match strategy {
            EncodingStrategy::NonDifferential => l * k,
            EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
                // Differential decoding reads every stored object up to l; the
                // optimized strategy stores full objects exactly where the
                // delta would have cost k anyway, so the totals coincide
                // (paper, §III-D).
                k + sparsity[..l - 1]
                    .iter()
                    .map(|&g| self.delta_reads(g))
                    .sum::<usize>()
            }
            EncodingStrategy::ReversedSec => {
                // Reading versions 1..l requires the latest copy plus every
                // delta back to version 1; deltas l+1..L are shared with the
                // walk to version l, deltas 2..l reconstruct the earlier ones.
                k + sparsity.iter().map(|&g| self.delta_reads(g)).sum::<usize>()
            }
        }
    }

    /// Total reads to retrieve version `l` alone from a *concrete stored
    /// layout* rather than a sparsity profile.
    ///
    /// The closed forms above assume the paper's layouts — full `x_1` then
    /// deltas (Basic), or fulls exactly where `2γ ≥ k` (Optimized). A
    /// [`CheckpointPolicy`](crate::CheckpointPolicy) breaks that assumption
    /// by inserting extra fulls, so this variant walks the actual payload
    /// list (in [`stored_entries`](crate::ByteVersionedArchive::stored_entries)
    /// order, the Reversed-SEC latest copy last) and prices exactly the
    /// entries the operational walk touches. On checkpoint-free layouts it
    /// reproduces [`IoModel::version_reads`].
    ///
    /// # Panics
    ///
    /// Panics if `l` is zero or exceeds the number of versions the layout
    /// stores.
    pub fn version_reads_for_layout(
        &self,
        strategy: EncodingStrategy,
        payloads: &[StoredPayload],
        l: usize,
    ) -> usize {
        let versions = payloads.len();
        assert!(l >= 1 && l <= versions, "version {l} out of range 1..={versions}");
        match strategy {
            EncodingStrategy::NonDifferential => self.params.k,
            EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
                // Anchor on the most recent stored full at or before entry
                // l - 1, then pay for every delta after it — the exact
                // traversal of `walk::walk_version`.
                let anchor = (0..l)
                    .rev()
                    .find(|&idx| matches!(payloads[idx], StoredPayload::FullVersion { .. }))
                    .expect("the first entry always stores a full version");
                (anchor..l).map(|idx| payloads[idx].reads(self)).sum()
            }
            EncodingStrategy::ReversedSec => {
                // The full latest copy (final element) plus the deltas back
                // down to version l.
                let latest_idx = payloads.len() - 1;
                payloads[latest_idx].reads(self)
                    + (l.saturating_sub(1)..latest_idx)
                        .map(|idx| payloads[idx].reads(self))
                        .sum::<usize>()
            }
        }
    }

    /// Total reads to retrieve versions `1..=l` from a concrete stored
    /// layout; the layout-walking counterpart of [`IoModel::prefix_reads`].
    ///
    /// # Panics
    ///
    /// Panics if `l` is zero or exceeds the number of versions the layout
    /// stores.
    pub fn prefix_reads_for_layout(
        &self,
        strategy: EncodingStrategy,
        payloads: &[StoredPayload],
        l: usize,
    ) -> usize {
        let versions = payloads.len();
        assert!(l >= 1 && l <= versions, "version {l} out of range 1..={versions}");
        match strategy {
            EncodingStrategy::NonDifferential => l * self.params.k,
            EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
                // The prefix walk reads every stored entry up to l in order;
                // checkpoint fulls replace their delta's cost with k.
                (0..l).map(|idx| payloads[idx].reads(self)).sum()
            }
            EncodingStrategy::ReversedSec => {
                // Reading versions 1..=l un-applies every delta from the full
                // latest copy regardless of l.
                payloads.iter().map(|p| p.reads(self)).sum()
            }
        }
    }

    /// Index (0-based into the version list) of the most recent version ≤ `l`
    /// that the Optimized strategy stores in full.
    fn optimized_anchor(&self, sparsity: &[usize], l: usize) -> usize {
        for version in (2..=l).rev() {
            if self.optimized_stores_full(sparsity[version - 2]) {
                return version - 1;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_20_10() -> IoModel {
        IoModel::new(CodeParams::new(20, 10).unwrap(), GeneratorForm::NonSystematic)
    }

    const PAPER_PROFILE: [usize; 4] = [3, 8, 3, 6];

    #[test]
    fn delta_reads_formula() {
        let m = model_20_10();
        assert_eq!(m.delta_reads(0), 0);
        assert_eq!(m.delta_reads(3), 6);
        assert_eq!(m.delta_reads(4), 8);
        assert_eq!(m.delta_reads(5), 10);
        assert_eq!(m.delta_reads(8), 10);
        assert_eq!(m.full_object_reads(), 10);
        // Systematic high-rate code cannot exploit γ beyond (n-k)/2.
        let sys = IoModel::new(CodeParams::new(8, 5).unwrap(), GeneratorForm::Systematic);
        assert_eq!(sys.delta_reads(1), 2);
        assert_eq!(sys.delta_reads(2), 5);
        let nsys = IoModel::new(CodeParams::new(8, 5).unwrap(), GeneratorForm::NonSystematic);
        assert_eq!(nsys.delta_reads(2), 4);
    }

    #[test]
    fn paper_section_iii_d_basic_numbers() {
        // Basic SEC, (20,10), γ = {3,8,3,6}: η(x_l) = {10, 16, 26, 32, 42}.
        let m = model_20_10();
        let expect = [10, 16, 26, 32, 42];
        for (l, &e) in expect.iter().enumerate() {
            assert_eq!(
                m.version_reads(EncodingStrategy::BasicSec, &PAPER_PROFILE, l + 1),
                e
            );
        }
        // Total to read all five versions: 42 vs 50 non-differential (20% saving).
        assert_eq!(m.prefix_reads(EncodingStrategy::BasicSec, &PAPER_PROFILE, 5), 42);
        assert_eq!(
            m.prefix_reads(EncodingStrategy::NonDifferential, &PAPER_PROFILE, 5),
            50
        );
    }

    #[test]
    fn paper_section_iii_d_optimized_numbers() {
        // Optimized SEC: stored {x1, z2, x3, z4, x5}; η(x_l) = {10, 16, 10, 16, 10}.
        let m = model_20_10();
        let expect = [10, 16, 10, 16, 10];
        for (l, &e) in expect.iter().enumerate() {
            assert_eq!(
                m.version_reads(EncodingStrategy::OptimizedSec, &PAPER_PROFILE, l + 1),
                e,
                "l = {}",
                l + 1
            );
        }
        // Prefix totals match the basic strategy (paper's observation).
        for l in 1..=5 {
            assert_eq!(
                m.prefix_reads(EncodingStrategy::OptimizedSec, &PAPER_PROFILE, l),
                m.prefix_reads(EncodingStrategy::BasicSec, &PAPER_PROFILE, l)
            );
        }
        assert!(m.optimized_stores_full(8));
        assert!(!m.optimized_stores_full(3));
    }

    #[test]
    fn non_differential_reads_are_flat() {
        let m = model_20_10();
        for l in 1..=5 {
            assert_eq!(
                m.version_reads(EncodingStrategy::NonDifferential, &PAPER_PROFILE, l),
                10
            );
            assert_eq!(
                m.prefix_reads(EncodingStrategy::NonDifferential, &PAPER_PROFILE, l),
                10 * l
            );
        }
    }

    #[test]
    fn reversed_sec_favours_latest_version() {
        let m = model_20_10();
        // Latest version: just the full copy.
        assert_eq!(
            m.version_reads(EncodingStrategy::ReversedSec, &PAPER_PROFILE, 5),
            10
        );
        // Version 1 needs the full copy plus all deltas: 10 + 6 + 10 + 6 + 10 = 42.
        assert_eq!(
            m.version_reads(EncodingStrategy::ReversedSec, &PAPER_PROFILE, 1),
            42
        );
        // Version 4 needs the full copy plus z5: 10 + 10 = 20.
        assert_eq!(
            m.version_reads(EncodingStrategy::ReversedSec, &PAPER_PROFILE, 4),
            20
        );
        // Prefix retrieval reads everything regardless of l.
        assert_eq!(
            m.prefix_reads(EncodingStrategy::ReversedSec, &PAPER_PROFILE, 1),
            42
        );
        assert_eq!(
            m.prefix_reads(EncodingStrategy::ReversedSec, &PAPER_PROFILE, 5),
            42
        );
        // Entry reads: full copy + per-delta costs.
        assert_eq!(
            m.entry_reads(EncodingStrategy::ReversedSec, &PAPER_PROFILE),
            vec![10, 6, 10, 6, 10]
        );
    }

    #[test]
    fn entry_reads_per_strategy() {
        let m = model_20_10();
        assert_eq!(
            m.entry_reads(EncodingStrategy::BasicSec, &PAPER_PROFILE),
            vec![10, 6, 10, 6, 10]
        );
        assert_eq!(
            m.entry_reads(EncodingStrategy::OptimizedSec, &PAPER_PROFILE),
            vec![10, 6, 10, 6, 10]
        );
        assert_eq!(
            m.entry_reads(EncodingStrategy::NonDifferential, &PAPER_PROFILE),
            vec![10; 5]
        );
    }

    #[test]
    fn two_version_example_from_section_iv_c() {
        // (6,3) code, z2 1-sparse: reading both versions costs 5 instead of 6.
        let m = IoModel::new(CodeParams::new(6, 3).unwrap(), GeneratorForm::NonSystematic);
        assert_eq!(m.prefix_reads(EncodingStrategy::BasicSec, &[1], 2), 5);
        assert_eq!(m.prefix_reads(EncodingStrategy::NonDifferential, &[1], 2), 6);
        let sys = IoModel::new(CodeParams::new(6, 3).unwrap(), GeneratorForm::Systematic);
        assert_eq!(sys.prefix_reads(EncodingStrategy::BasicSec, &[1], 2), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_version_panics() {
        let m = model_20_10();
        let _ = m.version_reads(EncodingStrategy::BasicSec, &PAPER_PROFILE, 6);
    }

    /// Paper-profile layouts, as each strategy actually stores them.
    fn paper_layout(strategy: EncodingStrategy) -> Vec<StoredPayload> {
        match strategy {
            EncodingStrategy::BasicSec => vec![
                StoredPayload::FullVersion { version: 1 },
                StoredPayload::Delta { to: 2, sparsity: 3 },
                StoredPayload::Delta { to: 3, sparsity: 8 },
                StoredPayload::Delta { to: 4, sparsity: 3 },
                StoredPayload::Delta { to: 5, sparsity: 6 },
            ],
            EncodingStrategy::OptimizedSec => vec![
                StoredPayload::FullVersion { version: 1 },
                StoredPayload::Delta { to: 2, sparsity: 3 },
                StoredPayload::FullVersion { version: 3 },
                StoredPayload::Delta { to: 4, sparsity: 3 },
                StoredPayload::FullVersion { version: 5 },
            ],
            EncodingStrategy::ReversedSec => vec![
                StoredPayload::Delta { to: 2, sparsity: 3 },
                StoredPayload::Delta { to: 3, sparsity: 8 },
                StoredPayload::Delta { to: 4, sparsity: 3 },
                StoredPayload::Delta { to: 5, sparsity: 6 },
                StoredPayload::FullVersion { version: 5 },
            ],
            EncodingStrategy::NonDifferential => (1..=5)
                .map(|version| StoredPayload::FullVersion { version })
                .collect(),
        }
    }

    #[test]
    fn layout_reads_match_closed_forms_without_checkpoints() {
        let m = model_20_10();
        for strategy in [
            EncodingStrategy::BasicSec,
            EncodingStrategy::OptimizedSec,
            EncodingStrategy::ReversedSec,
            EncodingStrategy::NonDifferential,
        ] {
            let layout = paper_layout(strategy);
            for l in 1..=5 {
                assert_eq!(
                    m.version_reads_for_layout(strategy, &layout, l),
                    m.version_reads(strategy, &PAPER_PROFILE, l),
                    "{strategy} version {l}"
                );
                assert_eq!(
                    m.prefix_reads_for_layout(strategy, &layout, l),
                    m.prefix_reads(strategy, &PAPER_PROFILE, l),
                    "{strategy} prefix {l}"
                );
            }
        }
    }

    #[test]
    fn layout_reads_price_checkpoints_exactly() {
        // Basic SEC with checkpoint spacing 2 over the paper profile stores a
        // policy full at entry 3: {x1, z2, z3, x4, z5}.
        let m = model_20_10();
        let layout = vec![
            StoredPayload::FullVersion { version: 1 },
            StoredPayload::Delta { to: 2, sparsity: 3 },
            StoredPayload::Delta { to: 3, sparsity: 8 },
            StoredPayload::FullVersion { version: 4 },
            StoredPayload::Delta { to: 5, sparsity: 6 },
        ];
        let s = EncodingStrategy::BasicSec;
        // η(x_l): anchor on the checkpoint instead of rewinding to x1.
        assert_eq!(m.version_reads_for_layout(s, &layout, 1), 10);
        assert_eq!(m.version_reads_for_layout(s, &layout, 2), 16);
        assert_eq!(m.version_reads_for_layout(s, &layout, 3), 26);
        assert_eq!(m.version_reads_for_layout(s, &layout, 4), 10);
        assert_eq!(m.version_reads_for_layout(s, &layout, 5), 20);
        // The prefix walk pays k for the checkpoint entry instead of δ4's 6.
        assert_eq!(m.prefix_reads_for_layout(s, &layout, 5), 10 + 6 + 10 + 10 + 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layout_out_of_range_version_panics() {
        let m = model_20_10();
        let layout = paper_layout(EncodingStrategy::BasicSec);
        let _ = m.version_reads_for_layout(EncodingStrategy::BasicSec, &layout, 6);
    }

    #[test]
    fn optimized_anchor_resets_after_dense_delta() {
        let m = model_20_10();
        // Profile {8, 3}: version 2 stored in full, version 3 as delta → η(x3) = 10 + 6.
        assert_eq!(m.version_reads(EncodingStrategy::OptimizedSec, &[8, 3], 3), 16);
        // Profile {3, 8}: version 3 stored in full → η(x3) = 10.
        assert_eq!(m.version_reads(EncodingStrategy::OptimizedSec, &[3, 8], 3), 10);
    }
}
