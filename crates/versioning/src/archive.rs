//! The [`VersionedArchive`]: appending versions under a chosen encoding
//! strategy and holding the resulting encoded entries.

use core::fmt;

use sec_erasure::{CodeParams, GeneratorForm, SecCode};
use sec_gf::GaloisField;

use crate::cache::DeltaCache;
use crate::delta::Delta;
use crate::error::VersioningError;
use crate::io_model::IoModel;
use crate::object::VersionId;

/// How successive versions are mapped to stored (erasure-coded) objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingStrategy {
    /// Paper's basic SEC: store `x_1` in full, then every delta.
    BasicSec,
    /// Paper's "Optimized Step j+1": store the full version instead of the
    /// delta whenever the delta is not exploitable (`γ ≥ k/2`).
    OptimizedSec,
    /// Paper's "Reversed SEC": store all deltas plus the *latest* version in
    /// full, favouring access to recent versions.
    ReversedSec,
    /// Baseline: every version encoded in full, no deltas.
    NonDifferential,
}

impl fmt::Display for EncodingStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EncodingStrategy::BasicSec => "basic-sec",
            EncodingStrategy::OptimizedSec => "optimized-sec",
            EncodingStrategy::ReversedSec => "reversed-sec",
            EncodingStrategy::NonDifferential => "non-differential",
        };
        write!(f, "{name}")
    }
}

/// Anchor-checkpoint policy: materialize a full version every `spacing`
/// consecutive deltas in a Basic/Optimized SEC chain.
///
/// With spacing `c`, at most `c` deltas separate any version from its
/// nearest stored full version, so a single-version read costs at most
/// `k · (1 + c)` blocks — worst-case read amplification is bounded by
/// `1 + c` regardless of chain length. This generalizes the paper's
/// Optimized SEC rule (store full when `2γ ≥ k`), which bounds the *cost*
/// of each link but not the *number* of links walked.
///
/// `spacing = 0` (the [`Default`]) disables checkpointing; the archive then
/// behaves exactly as the paper describes. Reversed SEC and the
/// non-differential baseline already bound their walks (latest copy /
/// per-version fulls) and ignore the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CheckpointPolicy {
    /// Number of consecutive deltas after which the next append stores the
    /// full version instead; zero disables checkpointing.
    pub spacing: usize,
}

impl CheckpointPolicy {
    /// A policy inserting a checkpoint after every `spacing` deltas.
    pub fn every(spacing: usize) -> Self {
        Self { spacing }
    }

    /// The disabled policy (no checkpoints; paper-exact layouts).
    pub fn disabled() -> Self {
        Self { spacing: 0 }
    }

    /// `true` when checkpoints are being inserted.
    pub fn is_enabled(&self) -> bool {
        self.spacing > 0
    }
}

/// Configuration of a versioned archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveConfig {
    params: CodeParams,
    form: GeneratorForm,
    strategy: EncodingStrategy,
    checkpoints: CheckpointPolicy,
}

impl ArchiveConfig {
    /// Creates and validates a configuration (checkpointing disabled; opt in
    /// with [`ArchiveConfig::with_checkpoints`]).
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::Code`] when the `(n, k)` pair is invalid.
    pub fn new(
        n: usize,
        k: usize,
        form: GeneratorForm,
        strategy: EncodingStrategy,
    ) -> Result<Self, VersioningError> {
        Ok(Self {
            params: CodeParams::new(n, k)?,
            form,
            strategy,
            checkpoints: CheckpointPolicy::disabled(),
        })
    }

    /// Returns the configuration with the given checkpoint policy.
    pub fn with_checkpoints(mut self, checkpoints: CheckpointPolicy) -> Self {
        self.checkpoints = checkpoints;
        self
    }

    /// The `(n, k)` code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The generator form.
    pub fn form(&self) -> GeneratorForm {
        self.form
    }

    /// The encoding strategy.
    pub fn strategy(&self) -> EncodingStrategy {
        self.strategy
    }

    /// The anchor-checkpoint policy.
    pub fn checkpoints(&self) -> CheckpointPolicy {
        self.checkpoints
    }

    /// The I/O model induced by this configuration.
    pub fn io_model(&self) -> IoModel {
        IoModel::new(self.params, self.form)
    }
}

/// What one stored, erasure-coded object represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoredPayload {
    /// The full contents of a version.
    FullVersion {
        /// 1-based version number.
        version: usize,
    },
    /// The delta from version `to - 1` to version `to`.
    Delta {
        /// 1-based version number this delta produces when applied to its
        /// predecessor.
        to: usize,
        /// Sparsity level `γ` of the delta.
        sparsity: usize,
    },
}

impl StoredPayload {
    /// Number of I/O reads needed to retrieve this stored object under the
    /// given model.
    pub fn reads(&self, model: &IoModel) -> usize {
        match self {
            StoredPayload::FullVersion { .. } => model.full_object_reads(),
            StoredPayload::Delta { sparsity, .. } => model.delta_reads(*sparsity),
        }
    }
}

/// One erasure-coded stored object: its semantic payload and its `n` coded
/// symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedEntry<F> {
    /// What the codeword encodes.
    pub payload: StoredPayload,
    /// The `n` coded symbols, indexed by node position within the entry's
    /// node set.
    pub codeword: Vec<F>,
}

/// A delta-based versioned archive encoded with SEC.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct VersionedArchive<F> {
    config: ArchiveConfig,
    code: SecCode<F>,
    /// Stored objects in append order. For Basic/Optimized/NonDifferential the
    /// entry at index `j` corresponds to version `j + 1`. For Reversed SEC the
    /// entries are the deltas `z_2, …, z_L` (index `j` ↦ delta to version
    /// `j + 2`) and the full latest copy lives in `latest_full`.
    entries: Vec<EncodedEntry<F>>,
    /// Reversed SEC only: the full encoding of the latest version.
    latest_full: Option<EncodedEntry<F>>,
    /// Plaintext of the latest version, kept for delta computation (the
    /// paper's "cache a full copy of the latest version" rule, as state the
    /// append path *owns* rather than a cache entry it hopes survives).
    latest: Vec<F>,
    cache: DeltaCache<Vec<F>>,
    sparsity: Vec<usize>,
    versions: usize,
    /// Consecutive deltas since the last stored full version.
    delta_run: usize,
    checkpoints_written: usize,
}

impl<F: GaloisField> VersionedArchive<F> {
    /// Creates an empty archive.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::Code`] when the configured code cannot be
    /// built over `F` (field too small for the Cauchy construction).
    pub fn new(config: ArchiveConfig) -> Result<Self, VersioningError> {
        let code = SecCode::cauchy(config.params.n, config.params.k, config.form)?;
        Ok(Self {
            config,
            code,
            entries: Vec::new(),
            latest_full: None,
            latest: Vec::new(),
            cache: DeltaCache::new(1),
            sparsity: Vec::new(),
            versions: 0,
            delta_run: 0,
            checkpoints_written: 0,
        })
    }

    /// The archive configuration.
    pub fn config(&self) -> ArchiveConfig {
        self.config
    }

    /// The underlying erasure code.
    pub fn code(&self) -> &SecCode<F> {
        &self.code
    }

    /// Number of versions appended so far (`L`).
    pub fn len(&self) -> usize {
        self.versions
    }

    /// `true` when no version has been appended.
    pub fn is_empty(&self) -> bool {
        self.versions == 0
    }

    /// Sparsity profile `γ_2, …, γ_L` of the appended versions.
    pub fn sparsity_profile(&self) -> &[usize] {
        &self.sparsity
    }

    /// The stored entries, in append order (excluding the Reversed-SEC latest
    /// full copy, exposed by [`VersionedArchive::latest_full_entry`]).
    pub fn entries(&self) -> &[EncodedEntry<F>] {
        &self.entries
    }

    /// Reversed-SEC full copy of the latest version, when that strategy is in
    /// use and at least one version exists.
    pub fn latest_full_entry(&self) -> Option<&EncodedEntry<F>> {
        self.latest_full.as_ref()
    }

    /// Read access to the latest-version cache (its counters in particular).
    /// A capacity-1 [`DeltaCache`] under object key 0: `peek_latest(0)`
    /// exposes the cached newest version.
    pub fn cache(&self) -> &DeltaCache<Vec<F>> {
        &self.cache
    }

    /// Number of policy-forced checkpoint entries written so far (fulls the
    /// Optimized threshold would not have stored on its own).
    pub fn checkpoints_written(&self) -> usize {
        self.checkpoints_written
    }

    /// Total number of stored coded symbols across all entries — the storage
    /// footprint in symbols (every strategy stores `L · n` symbols; Reversed
    /// SEC keeps the same count because the full copy replaces the delta-less
    /// first entry).
    pub fn stored_symbols(&self) -> usize {
        self.entries.iter().map(|e| e.codeword.len()).sum::<usize>()
            + self.latest_full.as_ref().map_or(0, |e| e.codeword.len())
    }

    /// Appends the next version, encoding it according to the configured
    /// strategy, and returns its version id.
    ///
    /// # Errors
    ///
    /// Returns [`VersioningError::ObjectLengthMismatch`] when the version does
    /// not have `k` symbols, or an encoding error from the code layer.
    pub fn append_version(&mut self, version: &[F]) -> Result<VersionId, VersioningError> {
        let k = self.config.params.k;
        if version.len() != k {
            return Err(VersioningError::ObjectLengthMismatch {
                expected: k,
                actual: version.len(),
            });
        }
        let id = VersionId(self.versions + 1);

        if self.versions == 0 {
            // First version: every strategy stores it in full (Reversed keeps
            // it as the `latest_full` copy instead of a delta entry).
            let codeword = self.code.encode(version)?;
            let entry = EncodedEntry {
                payload: StoredPayload::FullVersion { version: id.0 },
                codeword,
            };
            match self.config.strategy {
                EncodingStrategy::ReversedSec => self.latest_full = Some(entry),
                _ => self.entries.push(entry),
            }
        } else {
            let delta = Delta::between(&self.latest, version)?;
            let gamma = delta.sparsity();
            self.sparsity.push(gamma);
            // Anchor checkpoints: after `spacing` consecutive deltas the next
            // Basic/Optimized append stores the full version instead.
            let spacing = self.config.checkpoints.spacing;
            let checkpoint_due = spacing > 0 && self.delta_run >= spacing;

            match self.config.strategy {
                EncodingStrategy::NonDifferential => {
                    let codeword = self.code.encode(version)?;
                    self.entries.push(EncodedEntry {
                        payload: StoredPayload::FullVersion { version: id.0 },
                        codeword,
                    });
                }
                EncodingStrategy::BasicSec => {
                    if checkpoint_due {
                        let codeword = self.code.encode(version)?;
                        self.entries.push(EncodedEntry {
                            payload: StoredPayload::FullVersion { version: id.0 },
                            codeword,
                        });
                        self.checkpoints_written += 1;
                        self.delta_run = 0;
                    } else {
                        let codeword = self.code.encode(delta.data())?;
                        self.entries.push(EncodedEntry {
                            payload: StoredPayload::Delta {
                                to: id.0,
                                sparsity: gamma,
                            },
                            codeword,
                        });
                        self.delta_run += 1;
                    }
                }
                EncodingStrategy::OptimizedSec => {
                    let threshold_full = self.config.io_model().optimized_stores_full(gamma);
                    if threshold_full || checkpoint_due {
                        let codeword = self.code.encode(version)?;
                        self.entries.push(EncodedEntry {
                            payload: StoredPayload::FullVersion { version: id.0 },
                            codeword,
                        });
                        if !threshold_full {
                            self.checkpoints_written += 1;
                        }
                        self.delta_run = 0;
                    } else {
                        let codeword = self.code.encode(delta.data())?;
                        self.entries.push(EncodedEntry {
                            payload: StoredPayload::Delta {
                                to: id.0,
                                sparsity: gamma,
                            },
                            codeword,
                        });
                        self.delta_run += 1;
                    }
                }
                EncodingStrategy::ReversedSec => {
                    // Store the delta and refresh the full latest copy.
                    let codeword = self.code.encode(delta.data())?;
                    self.entries.push(EncodedEntry {
                        payload: StoredPayload::Delta {
                            to: id.0,
                            sparsity: gamma,
                        },
                        codeword,
                    });
                    let full = self.code.encode(version)?;
                    self.latest_full = Some(EncodedEntry {
                        payload: StoredPayload::FullVersion { version: id.0 },
                        codeword: full,
                    });
                }
            }
        }

        self.latest = version.to_vec();
        self.cache.insert(0, id.0, version.to_vec());
        self.versions += 1;
        Ok(id)
    }

    /// Appends every version of a sequence in order, returning the id of the
    /// last one.
    ///
    /// # Errors
    ///
    /// Propagates the first append error; versions appended before the error
    /// remain in the archive.
    pub fn append_all(&mut self, versions: &[Vec<F>]) -> Result<VersionId, VersioningError> {
        let mut last = VersionId(self.versions.max(1));
        for version in versions {
            last = self.append_version(version)?;
        }
        if self.versions == 0 {
            return Err(VersioningError::EmptyArchive);
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::Gf1024;

    fn obj(vals: &[u64]) -> Vec<Gf1024> {
        vals.iter().map(|&v| Gf1024::from_u64(v)).collect()
    }

    fn archive(strategy: EncodingStrategy) -> VersionedArchive<Gf1024> {
        let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, strategy).unwrap();
        VersionedArchive::new(config).unwrap()
    }

    fn three_versions() -> Vec<Vec<Gf1024>> {
        let v1 = obj(&[10, 20, 30]);
        let mut v2 = v1.clone();
        v2[1] = Gf1024::from_u64(500); // γ2 = 1
        let mut v3 = v2.clone();
        v3[0] = Gf1024::from_u64(7);
        v3[2] = Gf1024::from_u64(9); // γ3 = 2 (≥ k/2 for k = 3)
        vec![v1, v2, v3]
    }

    #[test]
    fn config_accessors() {
        let config =
            ArchiveConfig::new(6, 3, GeneratorForm::Systematic, EncodingStrategy::BasicSec).unwrap();
        assert_eq!(config.params().n, 6);
        assert_eq!(config.form(), GeneratorForm::Systematic);
        assert_eq!(config.strategy(), EncodingStrategy::BasicSec);
        assert_eq!(config.io_model().full_object_reads(), 3);
        assert!(
            ArchiveConfig::new(3, 3, GeneratorForm::Systematic, EncodingStrategy::BasicSec).is_err()
        );
        assert_eq!(format!("{}", EncodingStrategy::OptimizedSec), "optimized-sec");
    }

    #[test]
    fn basic_sec_stores_full_then_deltas() {
        let mut a = archive(EncodingStrategy::BasicSec);
        assert!(a.is_empty());
        a.append_all(&three_versions()).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.sparsity_profile(), &[1, 2]);
        let payloads: Vec<StoredPayload> = a.entries().iter().map(|e| e.payload).collect();
        assert_eq!(
            payloads,
            vec![
                StoredPayload::FullVersion { version: 1 },
                StoredPayload::Delta { to: 2, sparsity: 1 },
                StoredPayload::Delta { to: 3, sparsity: 2 },
            ]
        );
        assert!(a.latest_full_entry().is_none());
        assert_eq!(a.stored_symbols(), 3 * 6);
        assert_eq!(a.cache().peek_latest(0).unwrap().0, 3);
    }

    #[test]
    fn checkpoint_policy_inserts_periodic_fulls() {
        let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
            .unwrap()
            .with_checkpoints(CheckpointPolicy::every(2));
        assert!(config.checkpoints().is_enabled());
        let mut a: VersionedArchive<Gf1024> = VersionedArchive::new(config).unwrap();
        // Six versions differing by one symbol each: with spacing 2 the
        // layout is full, δ, δ, full(checkpoint), δ, δ.
        let mut version = obj(&[10, 20, 30]);
        for v in 1..=6u64 {
            version[0] = Gf1024::from_u64(v);
            a.append_version(&version).unwrap();
        }
        let fulls: Vec<usize> = a
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.payload, StoredPayload::FullVersion { .. }))
            .map(|(idx, _)| idx)
            .collect();
        assert_eq!(fulls, vec![0, 3]);
        assert_eq!(a.checkpoints_written(), 1);
        // The disabled policy leaves the paper-exact layout untouched.
        let mut plain = archive(EncodingStrategy::BasicSec);
        plain.append_all(&three_versions()).unwrap();
        assert_eq!(plain.checkpoints_written(), 0);
    }

    #[test]
    fn optimized_sec_stores_full_for_dense_deltas() {
        let mut a = archive(EncodingStrategy::OptimizedSec);
        a.append_all(&three_versions()).unwrap();
        let payloads: Vec<StoredPayload> = a.entries().iter().map(|e| e.payload).collect();
        // γ3 = 2 ≥ k/2 = 1.5 → version 3 stored in full.
        assert_eq!(
            payloads,
            vec![
                StoredPayload::FullVersion { version: 1 },
                StoredPayload::Delta { to: 2, sparsity: 1 },
                StoredPayload::FullVersion { version: 3 },
            ]
        );
    }

    #[test]
    fn reversed_sec_keeps_latest_full() {
        let mut a = archive(EncodingStrategy::ReversedSec);
        let versions = three_versions();
        a.append_all(&versions).unwrap();
        // Entries are the two deltas; latest_full encodes version 3.
        assert_eq!(a.entries().len(), 2);
        assert!(matches!(
            a.entries()[0].payload,
            StoredPayload::Delta { to: 2, sparsity: 1 }
        ));
        let latest = a.latest_full_entry().unwrap();
        assert_eq!(latest.payload, StoredPayload::FullVersion { version: 3 });
        // The full copy decodes to version 3.
        let shares: Vec<(usize, Gf1024)> = latest.codeword.iter().copied().enumerate().take(3).collect();
        assert_eq!(a.code().decode_full(&shares).unwrap(), versions[2]);
        // Storage footprint is still L · n symbols.
        assert_eq!(a.stored_symbols(), 3 * 6);
    }

    #[test]
    fn non_differential_stores_every_version_fully() {
        let mut a = archive(EncodingStrategy::NonDifferential);
        a.append_all(&three_versions()).unwrap();
        assert!(a
            .entries()
            .iter()
            .all(|e| matches!(e.payload, StoredPayload::FullVersion { .. })));
        // The sparsity profile is still tracked for reporting purposes.
        assert_eq!(a.sparsity_profile(), &[1, 2]);
    }

    #[test]
    fn append_validates_object_length() {
        let mut a = archive(EncodingStrategy::BasicSec);
        assert!(matches!(
            a.append_version(&obj(&[1, 2])),
            Err(VersioningError::ObjectLengthMismatch {
                expected: 3,
                actual: 2
            })
        ));
        assert!(matches!(a.append_all(&[]), Err(VersioningError::EmptyArchive)));
    }

    #[test]
    fn delta_codewords_encode_the_delta_not_the_version() {
        let mut a = archive(EncodingStrategy::BasicSec);
        let versions = three_versions();
        a.append_all(&versions).unwrap();
        let delta_entry = &a.entries()[1];
        let expected_delta: Vec<Gf1024> = versions[1]
            .iter()
            .zip(&versions[0])
            .map(|(&b, &a)| b - a)
            .collect();
        let expected_codeword = a.code().encode(&expected_delta).unwrap();
        assert_eq!(delta_entry.codeword, expected_codeword);
    }

    #[test]
    fn payload_reads_use_io_model() {
        let model = IoModel::new(CodeParams::new(20, 10).unwrap(), GeneratorForm::NonSystematic);
        assert_eq!(StoredPayload::FullVersion { version: 1 }.reads(&model), 10);
        assert_eq!(StoredPayload::Delta { to: 2, sparsity: 3 }.reads(&model), 6);
        assert_eq!(StoredPayload::Delta { to: 2, sparsity: 8 }.reads(&model), 10);
    }
}
