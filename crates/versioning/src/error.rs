//! Error type of the versioning layer.

use core::fmt;

use sec_erasure::{CodeError, GeneratorForm};

/// Errors returned by archive construction, appending and retrieval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersioningError {
    /// A version had the wrong number of symbols for the configured object
    /// dimension `k`.
    ObjectLengthMismatch {
        /// The configured dimension `k`.
        expected: usize,
        /// The supplied length.
        actual: usize,
    },
    /// The requested version index does not exist (versions are numbered from
    /// 1, as in the paper).
    NoSuchVersion {
        /// Requested version number.
        requested: usize,
        /// Number of versions currently archived.
        available: usize,
    },
    /// The archive holds no versions yet.
    EmptyArchive,
    /// A byte object was too large to fit in the configured `k` symbols.
    ObjectTooLarge {
        /// Maximum number of bytes the codec accepts.
        max_bytes: usize,
        /// Supplied number of bytes.
        actual_bytes: usize,
    },
    /// A shared codec passed to an archive constructor was built for a
    /// different code than the archive configuration names.
    CodecMismatch {
        /// `(n, k, form)` the archive configuration requires.
        expected: (usize, usize, GeneratorForm),
        /// `(n, k, form)` of the supplied codec's code.
        actual: (usize, usize, GeneratorForm),
    },
    /// An underlying erasure-coding error.
    Code(CodeError),
}

impl fmt::Display for VersioningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersioningError::ObjectLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "version has {actual} symbols but the archive stores {expected}-symbol objects"
                )
            }
            VersioningError::NoSuchVersion { requested, available } => {
                write!(
                    f,
                    "version {requested} does not exist ({available} versions archived)"
                )
            }
            VersioningError::EmptyArchive => write!(f, "the archive holds no versions"),
            VersioningError::ObjectTooLarge {
                max_bytes,
                actual_bytes,
            } => {
                write!(
                    f,
                    "object of {actual_bytes} bytes exceeds the {max_bytes}-byte capacity"
                )
            }
            VersioningError::CodecMismatch { expected, actual } => {
                write!(
                    f,
                    "shared codec was built for a ({}, {}) {} code but the archive requires a \
                     ({}, {}) {} code",
                    actual.0, actual.1, actual.2, expected.0, expected.1, expected.2
                )
            }
            VersioningError::Code(err) => write!(f, "erasure coding error: {err}"),
        }
    }
}

impl std::error::Error for VersioningError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VersioningError::Code(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CodeError> for VersioningError {
    fn from(err: CodeError) -> Self {
        VersioningError::Code(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(VersioningError::ObjectLengthMismatch {
            expected: 3,
            actual: 5
        }
        .to_string()
        .contains("3-symbol"));
        assert!(VersioningError::NoSuchVersion {
            requested: 7,
            available: 2
        }
        .to_string()
        .contains("7"));
        assert!(VersioningError::EmptyArchive.to_string().contains("no versions"));
        assert!(VersioningError::ObjectTooLarge {
            max_bytes: 10,
            actual_bytes: 20
        }
        .to_string()
        .contains("20 bytes"));
        let wrapped = VersioningError::from(CodeError::UndecodableShareSet);
        assert!(wrapped.to_string().contains("erasure coding"));
        use std::error::Error;
        assert!(wrapped.source().is_some());
        assert!(VersioningError::EmptyArchive.source().is_none());
    }
}
