//! The delta-aware decoded-version cache shared by every serving layer.
//!
//! SEC stores only deltas, so a read of version `l` walks a chain whose
//! length grows with `l`'s distance from the nearest stored full version.
//! Exact-hit caching wastes most of that work: after decoding version `v`,
//! a read of `v + 1` needs only one more delta, yet an exact-hit cache
//! re-walks the entire chain. [`DeltaCache`] therefore indexes decoded
//! versions by `(object, version)` and answers *nearest-base* queries —
//! "the closest cached version at or below the target" for the forward
//! strategies ([`DeltaCache::nearest_at_most`]) and "at or above" for
//! Reversed SEC, whose walk un-applies deltas backwards
//! ([`DeltaCache::nearest_at_least`]). It also subsumes the paper's
//! "cache a full copy of the latest version" rule (the old
//! `LatestVersionCache`): [`DeltaCache::peek_latest`] serves the
//! append path's need for the previous plaintext without touching the
//! hit/miss statistics.
//!
//! Lookups take `&self` (the recency touch is an atomic store under a read
//! lock), so cached retrievals from many concurrent readers never serialize
//! on the cache. A capacity of zero disables the cache entirely: lookups
//! return `None` and inserts store nothing, with **zero** bookkeeping — no
//! miss counts, no lock traffic, no slot allocation — so a disabled cache is
//! indistinguishable from no cache at all in both metrics and cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Hit/miss statistics of a [`DeltaCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found exactly their target version.
    pub hits: u64,
    /// Nearest-base lookups that found a usable base other than the target
    /// itself (the walk still applies the trailing deltas).
    pub base_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Versions currently cached.
    pub len: usize,
    /// Maximum number of cached versions.
    pub capacity: usize,
}

impl CacheStats {
    /// Accumulates another snapshot's counters into this one (used to
    /// aggregate many caches' statistics into fleet-wide totals; `len` and
    /// `capacity` sum as well).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.base_hits += other.base_hits;
        self.misses += other.misses;
        self.len += other.len;
        self.capacity += other.capacity;
    }
}

/// One cached decoded version: its key, its value, and an atomically
/// touchable recency stamp.
#[derive(Debug)]
struct CacheSlot<V> {
    object: u64,
    version: usize,
    value: Arc<V>,
    last_used: AtomicU64,
}

/// A capacity-bounded LRU cache of decoded versions keyed by
/// `(object, version)`, with shared-read nearest-base lookup.
///
/// Versions are immutable once appended (even under Reversed SEC, where only
/// the *latest-full slot* is rewritten — it then encodes a new version id),
/// so cached values never need invalidation — eviction is purely
/// capacity-driven. The design goal is that the *read path never takes an
/// exclusive lock*:
///
/// * the lookup family ([`DeltaCache::get`], [`DeltaCache::nearest_at_most`],
///   [`DeltaCache::nearest_at_least`]) takes the slot list's read lock
///   (shared among any number of readers) and performs the LRU touch by
///   storing a fresh logical timestamp into the slot's atomic — interior
///   mutability instead of a write lock;
/// * [`DeltaCache::insert`] takes the write lock only to admit a new
///   version, evicting the slot with the oldest stamp when full.
///
/// Values are handed out as [`Arc`]s so a hit costs one refcount bump, not a
/// copy of the decoded object. Single-archive owners pass `object = 0`;
/// cluster layers key by their object id so one cache can back many engines.
#[derive(Debug)]
pub struct DeltaCache<V> {
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    base_hits: AtomicU64,
    misses: AtomicU64,
    slots: RwLock<Vec<CacheSlot<V>>>,
}

impl<V> DeltaCache<V> {
    /// Creates a cache holding at most `capacity` decoded versions. A zero
    /// capacity disables the cache: every lookup returns `None` and inserts
    /// are dropped, with no bookkeeping of any kind.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            base_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            slots: RwLock::new(Vec::with_capacity(capacity)),
        }
    }

    /// Maximum number of cached versions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently cached versions.
    pub fn len(&self) -> usize {
        // audit: panic ok — lock poisoning only propagates a prior panic
        self.slots.read().expect("cache lock poisoned").len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Touches `slot`'s recency stamp and returns a handle to its value.
    fn touch(&self, slot: &CacheSlot<V>) -> Arc<V> {
        // LRU touch through the slot's atomic: no write lock needed.
        // audit: atomic ok — LRU clock tick; approximate recency is acceptable
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        // audit: atomic ok — LRU stamp publish; staleness only skews eviction choice
        slot.last_used.store(stamp, Ordering::Relaxed);
        Arc::clone(&slot.value)
    }

    /// Records the statistics outcome of one nearest-base lookup.
    fn count(&self, target: usize, found: Option<usize>) {
        let counter = match found {
            Some(version) if version == target => &self.hits,
            Some(_) => &self.base_hits,
            None => &self.misses,
        };
        // audit: atomic ok — hit/miss statistic; no ordering dependency
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Shared core of the lookup family: finds the best slot for `object`
    /// under `candidate` (which ranks acceptable versions by distance,
    /// `None` meaning unusable), touches it and records the outcome against
    /// `target`.
    fn lookup(
        &self,
        object: u64,
        target: usize,
        candidate: impl Fn(usize) -> Option<usize>,
    ) -> Option<(usize, Arc<V>)> {
        if self.capacity == 0 {
            return None;
        }
        // audit: panic ok — lock poisoning only propagates a prior panic
        let slots = self.slots.read().expect("cache lock poisoned");
        let found = slots
            .iter()
            .filter(|slot| slot.object == object)
            .filter_map(|slot| candidate(slot.version).map(|rank| (rank, slot)))
            .min_by_key(|(rank, _)| *rank)
            .map(|(_, slot)| (slot.version, self.touch(slot)));
        self.count(target, found.as_ref().map(|(version, _)| *version));
        found
    }

    /// Looks up exactly `(object, version)`, touching its recency stamp and
    /// recording a hit or miss. Concurrent lookups proceed in parallel.
    ///
    /// A disabled cache (capacity 0) returns `None` without recording a
    /// miss — there is no cache to be cold.
    pub fn get(&self, object: u64, version: usize) -> Option<Arc<V>> {
        self.lookup(object, version, |v| (v == version).then_some(0))
            .map(|(_, value)| value)
    }

    /// Returns the nearest cached base **at or below** `version` for
    /// `object` — the best starting point for a forward (Basic/Optimized
    /// SEC) delta walk. An exact match counts as a hit, a lower base as a
    /// base hit, nothing as a miss.
    pub fn nearest_at_most(&self, object: u64, version: usize) -> Option<(usize, Arc<V>)> {
        self.lookup(object, version, |v| (v <= version).then(|| version - v))
    }

    /// Returns the nearest cached base **at or above** `version` for
    /// `object` — the best starting point for a backward (Reversed SEC)
    /// un-apply walk. An exact match counts as a hit, a higher base as a
    /// base hit, nothing as a miss.
    pub fn nearest_at_least(&self, object: u64, version: usize) -> Option<(usize, Arc<V>)> {
        self.lookup(object, version, |v| (v >= version).then(|| v - version))
    }

    /// The highest cached version for `object`, if any, without touching
    /// recency or statistics — the append path's "previous plaintext" probe
    /// (the paper's cache-the-latest rule).
    pub fn peek_latest(&self, object: u64) -> Option<(usize, Arc<V>)> {
        if self.capacity == 0 {
            return None;
        }
        // audit: panic ok — lock poisoning only propagates a prior panic
        let slots = self.slots.read().expect("cache lock poisoned");
        slots
            .iter()
            .filter(|slot| slot.object == object)
            .max_by_key(|slot| slot.version)
            .map(|slot| (slot.version, Arc::clone(&slot.value)))
    }

    /// Admits `(object, version)`, evicting the least recently used slot
    /// when the cache is full. Returns the cached handle (the existing one
    /// when the version was already present — versions are immutable, so
    /// the first admitted value wins).
    pub fn insert(&self, object: u64, version: usize, value: V) -> Arc<V> {
        let value = Arc::new(value);
        if self.capacity == 0 {
            return value;
        }
        // audit: panic ok — lock poisoning only propagates a prior panic
        let mut slots = self.slots.write().expect("cache lock poisoned");
        if let Some(slot) = slots
            .iter()
            .find(|slot| slot.object == object && slot.version == version)
        {
            return Arc::clone(&slot.value);
        }
        // audit: atomic ok — LRU clock tick; approximate recency is acceptable
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if slots.len() >= self.capacity {
            let oldest = slots
                .iter()
                .enumerate()
                // audit: atomic ok — stale stamp only skews which slot is evicted
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(idx, _)| idx)
                // audit: panic ok — capacity > 0 here and len ≥ capacity, so the list is non-empty
                .expect("capacity > 0 and cache full");
            slots.swap_remove(oldest);
        }
        slots.push(CacheSlot {
            object,
            version,
            value: Arc::clone(&value),
            last_used: AtomicU64::new(stamp),
        });
        value
    }

    /// Drops every cached version (counters are kept).
    pub fn clear(&self) {
        // audit: panic ok — lock poisoning only propagates a prior panic
        self.slots.write().expect("cache lock poisoned").clear();
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed), // audit: atomic ok — statistic read
            base_hits: self.base_hits.load(Ordering::Relaxed), // audit: atomic ok — statistic read
            misses: self.misses.load(Ordering::Relaxed), // audit: atomic ok — statistic read
            len: self.len(),
            capacity: self.capacity,
        }
    }
}

impl<V> Clone for DeltaCache<V> {
    /// Clones the cache contents and statistics. Values are shared (`Arc`
    /// clones), counters are copied at their current relaxed values.
    fn clone(&self) -> Self {
        // audit: panic ok — lock poisoning only propagates a prior panic
        let slots = self.slots.read().expect("cache lock poisoned");
        Self {
            capacity: self.capacity,
            // audit: atomic ok — relaxed copy of the LRU clock
            clock: AtomicU64::new(self.clock.load(Ordering::Relaxed)),
            // audit: atomic ok — relaxed copy of statistics
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            // audit: atomic ok — relaxed copy of statistics
            base_hits: AtomicU64::new(self.base_hits.load(Ordering::Relaxed)),
            // audit: atomic ok — relaxed copy of statistics
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
            slots: RwLock::new(
                slots
                    .iter()
                    .map(|slot| CacheSlot {
                        object: slot.object,
                        version: slot.version,
                        value: Arc::clone(&slot.value),
                        // audit: atomic ok — relaxed copy of a recency stamp
                        last_used: AtomicU64::new(slot.last_used.load(Ordering::Relaxed)),
                    })
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_get_and_counters() {
        let cache: DeltaCache<Vec<u8>> = DeltaCache::new(2);
        assert!(cache.get(0, 1).is_none());
        assert_eq!(cache.stats().misses, 1);

        cache.insert(0, 1, vec![1, 2, 3]);
        assert_eq!(*cache.get(0, 1).unwrap(), vec![1, 2, 3]);
        assert_eq!(cache.stats().hits, 1);
        // Asking for a different version misses; exact get never base-hits.
        assert!(cache.get(0, 2).is_none());
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.base_hits, 0);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn nearest_at_most_prefers_the_closest_lower_base() {
        let cache: DeltaCache<Vec<u8>> = DeltaCache::new(4);
        cache.insert(0, 2, vec![2]);
        cache.insert(0, 5, vec![5]);
        // Exact match is a hit.
        assert_eq!(cache.nearest_at_most(0, 5).unwrap().0, 5);
        // Version 4: base 2 is the only one ≤ 4.
        assert_eq!(cache.nearest_at_most(0, 4).unwrap().0, 2);
        // Version 7: base 5 beats base 2.
        assert_eq!(cache.nearest_at_most(0, 7).unwrap().0, 5);
        // Version 1: nothing at or below.
        assert!(cache.nearest_at_most(0, 1).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.base_hits, 2);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn nearest_at_least_prefers_the_closest_higher_base() {
        let cache: DeltaCache<Vec<u8>> = DeltaCache::new(4);
        cache.insert(0, 3, vec![3]);
        cache.insert(0, 8, vec![8]);
        assert_eq!(cache.nearest_at_least(0, 3).unwrap().0, 3);
        assert_eq!(cache.nearest_at_least(0, 4).unwrap().0, 8);
        assert_eq!(cache.nearest_at_least(0, 1).unwrap().0, 3);
        assert!(cache.nearest_at_least(0, 9).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.base_hits, 2);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn objects_are_isolated() {
        let cache: DeltaCache<Vec<u8>> = DeltaCache::new(4);
        cache.insert(7, 3, vec![73]);
        cache.insert(9, 5, vec![95]);
        assert_eq!(cache.nearest_at_most(7, 4).unwrap().0, 3);
        assert!(cache.nearest_at_most(8, 9).is_none(), "unknown object");
        assert_eq!(cache.peek_latest(9).unwrap().0, 5);
        assert!(cache.peek_latest(8).is_none());
    }

    #[test]
    fn peek_latest_returns_the_newest_without_counting() {
        let cache: DeltaCache<Vec<u8>> = DeltaCache::new(4);
        assert!(cache.peek_latest(0).is_none());
        cache.insert(0, 1, vec![1]);
        cache.insert(0, 3, vec![3]);
        cache.insert(0, 2, vec![2]);
        let (version, value) = cache.peek_latest(0).unwrap();
        assert_eq!(version, 3);
        assert_eq!(*value, vec![3]);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                base_hits: 0,
                misses: 0,
                len: 3,
                capacity: 4,
            }
        );
    }

    #[test]
    fn lru_eviction() {
        let cache: DeltaCache<Vec<u8>> = DeltaCache::new(2);
        assert!(cache.is_empty());
        cache.insert(0, 1, vec![1]);
        cache.insert(0, 2, vec![2]);
        // Touch version 1 so version 2 is the LRU.
        assert_eq!(*cache.get(0, 1).unwrap(), vec![1]);
        cache.insert(0, 3, vec![3]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(0, 2).is_none(), "LRU entry evicted");
        assert!(cache.get(0, 1).is_some());
        assert!(cache.get(0, 3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.len, 2);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn first_value_wins_and_zero_capacity_disables() {
        let cache: DeltaCache<Vec<u8>> = DeltaCache::new(2);
        let first = cache.insert(0, 1, vec![1]);
        let second = cache.insert(0, 1, vec![99]);
        assert!(Arc::ptr_eq(&first, &second), "versions are immutable");
        assert_eq!(*second, vec![1]);

        let disabled: DeltaCache<Vec<u8>> = DeltaCache::new(0);
        disabled.insert(0, 1, vec![1]);
        assert!(disabled.get(0, 1).is_none());
        assert!(disabled.nearest_at_most(0, 1).is_none());
        assert!(disabled.nearest_at_least(0, 1).is_none());
        assert!(disabled.peek_latest(0).is_none());
        // A disabled cache is not "cold": lookups record no bookkeeping.
        assert_eq!(
            disabled.stats(),
            CacheStats {
                hits: 0,
                base_hits: 0,
                misses: 0,
                len: 0,
                capacity: 0,
            }
        );
    }

    #[test]
    fn clone_carries_contents_and_counters() {
        let cache: DeltaCache<Vec<u8>> = DeltaCache::new(3);
        cache.insert(0, 1, vec![4]);
        let _ = cache.get(0, 1);
        let _ = cache.nearest_at_most(0, 9);
        let _ = cache.nearest_at_least(0, 9);
        let cloned = cache.clone();
        let stats = cloned.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.base_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(*cloned.get(0, 1).unwrap(), vec![4]);
    }

    #[test]
    fn stats_absorb_sums_every_field() {
        let mut total = CacheStats {
            hits: 1,
            base_hits: 2,
            misses: 3,
            len: 4,
            capacity: 5,
        };
        total.absorb(&CacheStats {
            hits: 10,
            base_hits: 20,
            misses: 30,
            len: 40,
            capacity: 50,
        });
        assert_eq!(
            total,
            CacheStats {
                hits: 11,
                base_hits: 22,
                misses: 33,
                len: 44,
                capacity: 55,
            }
        );
    }

    #[test]
    fn shared_reads() {
        let cache: Arc<DeltaCache<Vec<u8>>> = Arc::new(DeltaCache::new(4));
        for v in 1..=4 {
            cache.insert(0, v, vec![v as u8]);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let v = (t + i) % 4 + 1;
                        assert_eq!(*cache.get(0, v).unwrap(), vec![v as u8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().hits, 400);
    }
}
