//! Caches for the versioning layer.
//!
//! SEC stores only deltas, yet computing the next delta `z_{j+1} = x_{j+1} −
//! x_j` requires `x_j`. The paper's practical answer is to "cache a full copy
//! of the latest version until a new version arrives", which also speeds up
//! reads of the newest version. [`LatestVersionCache`] is that cache, with hit
//! and miss counters so experiments can report its effect.
//!
//! [`VersionCache`] generalizes it into a small shared-read LRU over decoded
//! versions for serving layers: lookups take `&self` (the recency touch is an
//! atomic store under a read lock), so cached retrievals from many concurrent
//! readers never serialize on the cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use sec_gf::GaloisField;

use crate::object::VersionId;

/// Cache holding the plaintext of the most recently appended version.
///
/// Lookups are `&self`: the hit/miss counters are atomics, so a pure read
/// never needs an exclusive borrow of the archive that owns the cache.
#[derive(Debug)]
pub struct LatestVersionCache<F> {
    entry: Option<(VersionId, Vec<F>)>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<F: GaloisField> LatestVersionCache<F> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            entry: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Replaces the cached version.
    pub fn put(&mut self, id: VersionId, data: Vec<F>) {
        self.entry = Some((id, data));
    }

    /// Returns the cached data if it is exactly version `id`, recording a hit
    /// or miss. A pure lookup: concurrent readers can call this through a
    /// shared borrow without serializing.
    pub fn get(&self, id: VersionId) -> Option<&[F]> {
        match &self.entry {
            Some((cached_id, data)) if *cached_id == id => {
                // audit: atomic ok — hit/miss statistic; no ordering dependency
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(data.as_slice())
            }
            _ => {
                // audit: atomic ok — hit/miss statistic; no ordering dependency
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The cached version id, if any (does not affect hit/miss counters).
    pub fn cached_version(&self) -> Option<VersionId> {
        self.entry.as_ref().map(|(id, _)| *id)
    }

    /// A view of the cached data, if any (does not affect counters).
    pub fn peek(&self) -> Option<(&VersionId, &[F])> {
        self.entry.as_ref().map(|(id, data)| (id, data.as_slice()))
    }

    /// Clears the cache.
    pub fn clear(&mut self) {
        self.entry = None;
    }

    /// Number of lookups that found the requested version.
    pub fn hits(&self) -> u64 {
        // audit: atomic ok — statistic read; cross-thread exactness not claimed
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that did not find the requested version.
    pub fn misses(&self) -> u64 {
        // audit: atomic ok — statistic read; cross-thread exactness not claimed
        self.misses.load(Ordering::Relaxed)
    }
}

impl<F: GaloisField> Default for LatestVersionCache<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Clone> Clone for LatestVersionCache<F> {
    fn clone(&self) -> Self {
        Self {
            entry: self.entry.clone(),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)), // audit: atomic ok — relaxed copy of statistics
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)), // audit: atomic ok — relaxed copy of statistics
        }
    }
}

/// Hit/miss statistics of a [`VersionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found their version.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Versions currently cached.
    pub len: usize,
    /// Maximum number of cached versions.
    pub capacity: usize,
}

impl CacheStats {
    /// Accumulates another snapshot's counters into this one (used to
    /// aggregate many caches' statistics into fleet-wide totals; `len` and
    /// `capacity` sum as well).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.len += other.len;
        self.capacity += other.capacity;
    }
}

/// One cached version: its number, its decoded value, and an atomically
/// touchable recency stamp.
#[derive(Debug)]
struct CacheSlot<V> {
    version: usize,
    value: Arc<V>,
    last_used: AtomicU64,
}

/// A capacity-bounded LRU cache of decoded versions with shared-read lookup.
///
/// Versions are immutable once appended, so cached values never need
/// invalidation — eviction is purely capacity-driven. The design goal is that
/// the *read path never takes an exclusive lock*:
///
/// * [`VersionCache::get`] takes the slot list's read lock (shared among any
///   number of readers) and performs the LRU touch by storing a fresh logical
///   timestamp into the slot's atomic — interior mutability instead of a
///   write lock;
/// * [`VersionCache::insert`] takes the write lock only to admit a new
///   version, evicting the slot with the oldest stamp when full.
///
/// Values are handed out as [`Arc`]s so a hit costs one refcount bump, not a
/// copy of the decoded object.
#[derive(Debug)]
pub struct VersionCache<V> {
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    slots: RwLock<Vec<CacheSlot<V>>>,
}

impl<V> VersionCache<V> {
    /// Creates a cache holding at most `capacity` versions. A zero capacity
    /// disables the cache: every lookup misses and inserts are dropped.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            slots: RwLock::new(Vec::with_capacity(capacity)),
        }
    }

    /// Maximum number of cached versions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently cached versions.
    pub fn len(&self) -> usize {
        self.slots.read().expect("cache lock poisoned").len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up version `version` (1-based), touching its recency stamp and
    /// recording a hit or miss. Concurrent lookups proceed in parallel.
    ///
    /// A disabled cache (capacity 0) returns `None` without recording a
    /// miss — there is no cache to be cold.
    pub fn get(&self, version: usize) -> Option<Arc<V>> {
        if self.capacity == 0 {
            return None;
        }
        let slots = self.slots.read().expect("cache lock poisoned");
        let found = slots.iter().find(|slot| slot.version == version).map(|slot| {
            // LRU touch through the slot's atomic: no write lock needed.
            // audit: atomic ok — LRU clock tick; approximate recency is acceptable
            let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
            // audit: atomic ok — LRU stamp publish; staleness only skews eviction choice
            slot.last_used.store(stamp, Ordering::Relaxed);
            Arc::clone(&slot.value)
        });
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed), // audit: atomic ok — hit/miss statistic
            None => self.misses.fetch_add(1, Ordering::Relaxed), // audit: atomic ok — hit/miss statistic
        };
        found
    }

    /// Admits version `version`, evicting the least recently used slot when
    /// the cache is full. Returns the cached handle (the existing one when
    /// the version was already present — versions are immutable, so the first
    /// admitted value wins).
    pub fn insert(&self, version: usize, value: V) -> Arc<V> {
        let value = Arc::new(value);
        if self.capacity == 0 {
            return value;
        }
        let mut slots = self.slots.write().expect("cache lock poisoned");
        if let Some(slot) = slots.iter().find(|slot| slot.version == version) {
            return Arc::clone(&slot.value);
        }
        // audit: atomic ok — LRU clock tick; approximate recency is acceptable
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if slots.len() >= self.capacity {
            let oldest = slots
                .iter()
                .enumerate()
                // audit: atomic ok — stale stamp only skews which slot is evicted
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(idx, _)| idx)
                .expect("capacity > 0 and cache full");
            slots.swap_remove(oldest);
        }
        slots.push(CacheSlot {
            version,
            value: Arc::clone(&value),
            last_used: AtomicU64::new(stamp),
        });
        value
    }

    /// Drops every cached version (counters are kept).
    pub fn clear(&self) {
        self.slots.write().expect("cache lock poisoned").clear();
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed), // audit: atomic ok — statistic read
            misses: self.misses.load(Ordering::Relaxed), // audit: atomic ok — statistic read
            len: self.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::Gf256;

    fn obj(vals: &[u64]) -> Vec<Gf256> {
        vals.iter().map(|&v| Gf256::from_u64(v)).collect()
    }

    #[test]
    fn put_get_and_counters() {
        let mut cache = LatestVersionCache::new();
        assert!(cache.cached_version().is_none());
        assert!(cache.peek().is_none());
        assert!(cache.get(VersionId(1)).is_none());
        assert_eq!(cache.misses(), 1);

        cache.put(VersionId(1), obj(&[1, 2, 3]));
        assert_eq!(cache.cached_version(), Some(VersionId(1)));
        assert_eq!(cache.get(VersionId(1)).unwrap(), obj(&[1, 2, 3]).as_slice());
        assert_eq!(cache.hits(), 1);
        // Asking for a different version misses.
        assert!(cache.get(VersionId(2)).is_none());
        assert_eq!(cache.misses(), 2);

        // A newer version replaces the older one.
        cache.put(VersionId(2), obj(&[9]));
        assert_eq!(cache.peek().unwrap().0, &VersionId(2));
        // Lookups through a shared borrow still count.
        let shared = &cache;
        assert!(shared.get(VersionId(2)).is_some());
        assert_eq!(cache.hits(), 2);
        cache.clear();
        assert!(cache.cached_version().is_none());
    }

    #[test]
    fn clone_carries_counters() {
        let mut cache = LatestVersionCache::new();
        cache.put(VersionId(1), obj(&[4]));
        let _ = cache.get(VersionId(1));
        let _ = cache.get(VersionId(9));
        let cloned = cache.clone();
        assert_eq!(cloned.hits(), 1);
        assert_eq!(cloned.misses(), 1);
        assert_eq!(cloned.cached_version(), Some(VersionId(1)));
    }

    #[test]
    fn default_is_empty() {
        let cache: LatestVersionCache<Gf256> = LatestVersionCache::default();
        assert!(cache.peek().is_none());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn version_cache_lru_eviction() {
        let cache: VersionCache<Vec<u8>> = VersionCache::new(2);
        assert!(cache.is_empty());
        cache.insert(1, vec![1]);
        cache.insert(2, vec![2]);
        // Touch version 1 so version 2 is the LRU.
        assert_eq!(*cache.get(1).unwrap(), vec![1]);
        cache.insert(3, vec![3]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.len, 2);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn version_cache_first_value_wins_and_zero_capacity_disables() {
        let cache: VersionCache<Vec<u8>> = VersionCache::new(2);
        let first = cache.insert(1, vec![1]);
        let second = cache.insert(1, vec![99]);
        assert!(Arc::ptr_eq(&first, &second), "versions are immutable");
        assert_eq!(*second, vec![1]);

        let disabled: VersionCache<Vec<u8>> = VersionCache::new(0);
        disabled.insert(1, vec![1]);
        assert!(disabled.get(1).is_none());
        // A disabled cache is not "cold": lookups record no misses.
        assert_eq!(disabled.stats().misses, 0);
        assert_eq!(disabled.len(), 0);
    }

    #[test]
    fn version_cache_shared_reads() {
        let cache: Arc<VersionCache<Vec<u8>>> = Arc::new(VersionCache::new(4));
        for v in 1..=4 {
            cache.insert(v, vec![v as u8]);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let v = (t + i) % 4 + 1;
                        assert_eq!(*cache.get(v).unwrap(), vec![v as u8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().hits, 400);
    }
}
