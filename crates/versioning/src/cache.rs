//! Cache of the latest plaintext version.
//!
//! SEC stores only deltas, yet computing the next delta `z_{j+1} = x_{j+1} −
//! x_j` requires `x_j`. The paper's practical answer is to "cache a full copy
//! of the latest version until a new version arrives", which also speeds up
//! reads of the newest version. [`LatestVersionCache`] is that cache, with hit
//! and miss counters so experiments can report its effect.

use sec_gf::GaloisField;

use crate::object::VersionId;

/// Cache holding the plaintext of the most recently appended version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatestVersionCache<F> {
    entry: Option<(VersionId, Vec<F>)>,
    hits: u64,
    misses: u64,
}

impl<F: GaloisField> LatestVersionCache<F> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            entry: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Replaces the cached version.
    pub fn put(&mut self, id: VersionId, data: Vec<F>) {
        self.entry = Some((id, data));
    }

    /// Returns the cached data if it is exactly version `id`, recording a hit
    /// or miss.
    pub fn get(&mut self, id: VersionId) -> Option<&[F]> {
        match &self.entry {
            Some((cached_id, data)) if *cached_id == id => {
                self.hits += 1;
                Some(data.as_slice())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// The cached version id, if any (does not affect hit/miss counters).
    pub fn cached_version(&self) -> Option<VersionId> {
        self.entry.as_ref().map(|(id, _)| *id)
    }

    /// A view of the cached data, if any (does not affect counters).
    pub fn peek(&self) -> Option<(&VersionId, &[F])> {
        self.entry.as_ref().map(|(id, data)| (id, data.as_slice()))
    }

    /// Clears the cache.
    pub fn clear(&mut self) {
        self.entry = None;
    }

    /// Number of lookups that found the requested version.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that did not find the requested version.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl<F: GaloisField> Default for LatestVersionCache<F> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::Gf256;

    fn obj(vals: &[u64]) -> Vec<Gf256> {
        vals.iter().map(|&v| Gf256::from_u64(v)).collect()
    }

    #[test]
    fn put_get_and_counters() {
        let mut cache = LatestVersionCache::new();
        assert!(cache.cached_version().is_none());
        assert!(cache.peek().is_none());
        assert!(cache.get(VersionId(1)).is_none());
        assert_eq!(cache.misses(), 1);

        cache.put(VersionId(1), obj(&[1, 2, 3]));
        assert_eq!(cache.cached_version(), Some(VersionId(1)));
        assert_eq!(cache.get(VersionId(1)).unwrap(), obj(&[1, 2, 3]).as_slice());
        assert_eq!(cache.hits(), 1);
        // Asking for a different version misses.
        assert!(cache.get(VersionId(2)).is_none());
        assert_eq!(cache.misses(), 2);

        // A newer version replaces the older one.
        cache.put(VersionId(2), obj(&[9]));
        assert_eq!(cache.peek().unwrap().0, &VersionId(2));
        cache.clear();
        assert!(cache.cached_version().is_none());
    }

    #[test]
    fn default_is_empty() {
        let cache: LatestVersionCache<Gf256> = LatestVersionCache::default();
        assert!(cache.peek().is_none());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }
}
