//! Property-based tests: any randomly edited version history is stored and
//! retrieved exactly by every strategy, and SEC never costs more I/O than the
//! non-differential baseline for whole-archive reads.

use proptest::prelude::*;

use sec_erasure::GeneratorForm;
use sec_gf::{GaloisField, Gf256};

use crate::archive::{ArchiveConfig, EncodingStrategy, VersionedArchive};
use crate::delta::sparsity_profile;

const N: usize = 12;
const K: usize = 6;

/// Strategy producing a random version history: a base object plus a list of
/// per-version edit sets (position, new value).
fn history() -> impl Strategy<Value = Vec<Vec<Gf256>>> {
    let base = prop::collection::vec((0u64..256).prop_map(Gf256::from_u64), K);
    let edits = prop::collection::vec(prop::collection::vec((0usize..K, 1u64..256), 1..=K), 1..6);
    (base, edits).prop_map(|(base, edits)| {
        let mut versions = vec![base];
        for edit_set in edits {
            let mut next = versions.last().expect("non-empty").clone();
            for (pos, val) in edit_set {
                next[pos] += Gf256::from_u64(val);
            }
            versions.push(next);
        }
        versions
    })
}

fn all_strategies() -> [EncodingStrategy; 4] {
    [
        EncodingStrategy::BasicSec,
        EncodingStrategy::OptimizedSec,
        EncodingStrategy::ReversedSec,
        EncodingStrategy::NonDifferential,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_strategy_round_trips_random_histories(versions in history()) {
        for strategy in all_strategies() {
            for form in [GeneratorForm::Systematic, GeneratorForm::NonSystematic] {
                let config = ArchiveConfig::new(N, K, form, strategy).unwrap();
                let mut archive: VersionedArchive<Gf256> = VersionedArchive::new(config).unwrap();
                archive.append_all(&versions).unwrap();
                prop_assert_eq!(archive.len(), versions.len());
                for (l, expect) in versions.iter().enumerate() {
                    let r = archive.retrieve_version(l + 1).unwrap();
                    prop_assert_eq!(&r.data, expect);
                }
                let prefix = archive.retrieve_prefix(versions.len()).unwrap();
                prop_assert_eq!(&prefix.versions, &versions);
            }
        }
    }

    #[test]
    fn archive_io_matches_io_model_and_beats_baseline(versions in history()) {
        let profile = sparsity_profile(&versions).unwrap();
        for strategy in [EncodingStrategy::BasicSec, EncodingStrategy::OptimizedSec] {
            let config = ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap();
            let mut archive: VersionedArchive<Gf256> = VersionedArchive::new(config).unwrap();
            archive.append_all(&versions).unwrap();
            prop_assert_eq!(archive.sparsity_profile(), profile.as_slice());
            let model = archive.config().io_model();
            for l in 1..=versions.len() {
                let measured = archive.retrieve_version(l).unwrap().io_reads;
                let predicted = model.version_reads(strategy, &profile, l);
                prop_assert_eq!(measured, predicted, "{} version {}", strategy, l);
                let prefix_measured = archive.retrieve_prefix(l).unwrap().io_reads;
                let prefix_predicted = model.prefix_reads(strategy, &profile, l);
                prop_assert_eq!(prefix_measured, prefix_predicted);
                // SEC never reads more than the non-differential baseline for
                // whole-prefix retrieval.
                prop_assert!(prefix_measured <= l * K);
            }
        }
    }

    #[test]
    fn sparsity_profile_is_strategy_independent(versions in history()) {
        let mut profiles = Vec::new();
        for strategy in all_strategies() {
            let config = ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap();
            let mut archive: VersionedArchive<Gf256> = VersionedArchive::new(config).unwrap();
            archive.append_all(&versions).unwrap();
            profiles.push(archive.sparsity_profile().to_vec());
        }
        for pair in profiles.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
    }

    #[test]
    fn storage_footprint_is_l_times_n(versions in history()) {
        for strategy in all_strategies() {
            let config = ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap();
            let mut archive: VersionedArchive<Gf256> = VersionedArchive::new(config).unwrap();
            archive.append_all(&versions).unwrap();
            prop_assert_eq!(archive.stored_symbols(), versions.len() * N, "{}", strategy);
        }
    }
}
