//! The per-strategy retrieval traversal, shared by every byte-shard read
//! path.
//!
//! Three layers serve versions out of the same stored-entry layout — the
//! all-nodes-alive [`ByteVersionedArchive`](crate::ByteVersionedArchive),
//! the failure-aware `ByteDistributedStore` in `sec-store`, and the
//! concurrent `SecEngine` in `sec-engine`. They differ only in *how one
//! entry's blocks are fetched and decoded*; the strategy walk itself (find
//! the anchor, XOR deltas forward, or un-apply deltas backward from the
//! Reversed-SEC latest copy) is identical. This module holds that walk
//! once, parameterized over a per-entry read callback, so the strategy
//! semantics cannot drift between layers.
//!
//! Conventions shared by every caller:
//!
//! * `payload_at(i)` describes stored entry `i` of `stored_count` entries in
//!   entry order, with the Reversed-SEC full latest copy as the **final**
//!   element (the order [`ByteVersionedArchive::stored_entries`]
//!   (crate::ByteVersionedArchive::stored_entries) produces);
//! * the read callback receives the entry index and returns
//!   `(block_reads, decoded_data_shards)`; the `γ = 0` shortcut (an empty
//!   delta needs no reads) is provided by [`read_target`] returning `None`;
//! * version bounds are validated by the caller — the walk assumes
//!   `1 ≤ l ≤ L`.

use sec_erasure::read_plan::{DecodeMethod, ReadTarget};
use sec_erasure::{ByteCodec, ByteShards, CodeError};

use crate::archive::{EncodingStrategy, StoredPayload};

/// Result of one strategy walk: the I/O spent and what was reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Total block reads spent.
    pub io_reads: usize,
    /// Number of stored entries that were touched.
    pub entries_read: usize,
    /// The reconstructed data shards of the requested version.
    pub shards: ByteShards,
}

/// Reconstructs version `l` by walking the stored entries under `strategy`,
/// fetching each touched entry through `read_entry`.
///
/// # Errors
///
/// Propagates the first `read_entry` error; shard-shape mismatches during
/// delta application surface through `E: From<CodeError>`.
pub fn walk_version<E, P, R>(
    strategy: EncodingStrategy,
    stored_count: usize,
    payload_at: P,
    l: usize,
    mut read_entry: R,
) -> Result<WalkOutcome, E>
where
    E: From<CodeError>,
    P: Fn(usize) -> StoredPayload,
    R: FnMut(usize) -> Result<(usize, ByteShards), E>,
{
    match strategy {
        EncodingStrategy::NonDifferential => {
            let (io_reads, shards) = read_entry(l - 1)?;
            Ok(WalkOutcome {
                io_reads,
                entries_read: 1,
                shards,
            })
        }
        EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
            let anchor = (0..l)
                .rev()
                .find(|&idx| matches!(payload_at(idx), StoredPayload::FullVersion { .. }))
                // audit: panic ok — archive invariant: entry 0 always stores a full version
                .expect("the first entry always stores a full version");
            let (mut io_reads, mut acc) = read_entry(anchor)?;
            let mut entries_read = 1;
            for idx in anchor + 1..l {
                let (reads, delta) = read_entry(idx)?;
                io_reads += reads;
                entries_read += 1;
                acc.xor_with(&delta)?;
            }
            Ok(WalkOutcome {
                io_reads,
                entries_read,
                shards: acc,
            })
        }
        EncodingStrategy::ReversedSec => {
            // The full latest copy is the final stored entry; un-apply the
            // deltas z_L, …, z_{l+1} backwards.
            let latest_idx = stored_count - 1;
            let (mut io_reads, mut acc) = read_entry(latest_idx)?;
            let mut entries_read = 1;
            for idx in (l.saturating_sub(1)..latest_idx).rev() {
                let (reads, delta) = read_entry(idx)?;
                io_reads += reads;
                entries_read += 1;
                acc.xor_with(&delta)?;
            }
            Ok(WalkOutcome {
                io_reads,
                entries_read,
                shards: acc,
            })
        }
    }
}

/// Reconstructs version `l` under Basic/Optimized SEC starting from an
/// already-decoded base: `base_shards` holds version `base_version`
/// (1-based, `base_version ≤ l`), and the walk XORs only the trailing
/// deltas `z_{b+1}, …, z_l` on top of it.
///
/// Two cases leave the base unused (the second bool in the return is
/// `false`): the degenerate `base_version == l` never happens here because
/// the caller serves an exact hit directly, but a stored **full version**
/// inside the region to walk does — a checkpoint or Optimized-threshold
/// full at entry `f ∈ [b, l)` is not a delta and cannot be XORed, and
/// anchoring the plain walk at the *latest* such full is cheaper than any
/// cached base below it. In that case this falls back to [`walk_version`].
///
/// # Errors
///
/// As for [`walk_version`].
pub fn walk_version_from_base<E, P, R>(
    strategy: EncodingStrategy,
    stored_count: usize,
    payload_at: P,
    l: usize,
    base_version: usize,
    base_shards: ByteShards,
    mut read_entry: R,
) -> Result<(WalkOutcome, bool), E>
where
    E: From<CodeError>,
    P: Fn(usize) -> StoredPayload,
    R: FnMut(usize) -> Result<(usize, ByteShards), E>,
{
    debug_assert!(matches!(
        strategy,
        EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec
    ));
    debug_assert!(base_version >= 1 && base_version <= l);
    if base_version == l {
        return Ok((
            WalkOutcome {
                io_reads: 0,
                entries_read: 0,
                shards: base_shards,
            },
            true,
        ));
    }
    // Entry `v - 1` stores the delta to version `v`, so the trailing deltas
    // occupy entries `base_version..l`. A full version stored in that range
    // both invalidates the XOR chain and offers a closer anchor.
    if (base_version..l).any(|idx| matches!(payload_at(idx), StoredPayload::FullVersion { .. })) {
        return walk_version(strategy, stored_count, payload_at, l, read_entry).map(|out| (out, false));
    }
    let mut acc = base_shards;
    let mut io_reads = 0;
    let mut entries_read = 0;
    for idx in base_version..l {
        let (reads, delta) = read_entry(idx)?;
        io_reads += reads;
        entries_read += 1;
        acc.xor_with(&delta)?;
    }
    Ok((
        WalkOutcome {
            io_reads,
            entries_read,
            shards: acc,
        },
        true,
    ))
}

/// Reconstructs version `l` under Reversed SEC starting from an
/// already-decoded tail: `tail_shards` holds version `tail_version`
/// (`tail_version ≥ l`), and the walk un-applies only the deltas
/// `z_{tail}, …, z_{l+1}` — never touching the stored full latest copy.
///
/// # Errors
///
/// As for [`walk_version`].
pub fn walk_version_from_tail<E, R>(
    l: usize,
    tail_version: usize,
    tail_shards: ByteShards,
    mut read_entry: R,
) -> Result<WalkOutcome, E>
where
    E: From<CodeError>,
    R: FnMut(usize) -> Result<(usize, ByteShards), E>,
{
    debug_assert!(l >= 1 && tail_version >= l);
    // Entry `v - 2` stores the delta to version `v`; un-apply deltas to
    // versions `tail_version, …, l + 1`, i.e. entries `l - 1..tail_version - 1`
    // walked newest-first.
    let mut acc = tail_shards;
    let mut io_reads = 0;
    let mut entries_read = 0;
    for idx in (l.saturating_sub(1)..tail_version.saturating_sub(1)).rev() {
        let (reads, delta) = read_entry(idx)?;
        io_reads += reads;
        entries_read += 1;
        acc.xor_with(&delta)?;
    }
    Ok(WalkOutcome {
        io_reads,
        entries_read,
        shards: acc,
    })
}

/// Reconstructs versions `1..=l` under Reversed SEC starting from an
/// already-decoded tail at `tail_version ≥ l`, un-applying deltas backwards
/// from the tail instead of reading the stored full latest copy.
///
/// # Errors
///
/// As for [`walk_version`].
pub fn walk_prefix_from_tail<E, R>(
    l: usize,
    object_len: usize,
    tail_version: usize,
    tail_shards: ByteShards,
    mut read_entry: R,
) -> Result<PrefixWalkOutcome, E>
where
    E: From<CodeError>,
    R: FnMut(usize) -> Result<(usize, ByteShards), E>,
{
    debug_assert!(l >= 1 && tail_version >= l);
    let mut acc = tail_shards;
    let mut io_reads = 0;
    let mut versions_rev = vec![trim_object(&acc, object_len)];
    for idx in (0..tail_version.saturating_sub(1)).rev() {
        let (reads, delta) = read_entry(idx)?;
        io_reads += reads;
        acc.xor_with(&delta)?;
        versions_rev.push(trim_object(&acc, object_len));
    }
    let entries_read = versions_rev.len() - 1;
    versions_rev.reverse();
    versions_rev.truncate(l);
    Ok(PrefixWalkOutcome {
        io_reads,
        entries_read,
        versions: versions_rev,
    })
}

/// Maps one stored payload to its SEC read target, or `None` for the
/// `γ = 0` shortcut: an all-zero delta is known without reading a single
/// block, so the caller should return `(0, ByteShards::zeroed(k, shard_len))`
/// directly.
pub fn read_target(payload: StoredPayload) -> Option<ReadTarget> {
    match payload {
        StoredPayload::FullVersion { .. } => Some(ReadTarget::Full),
        StoredPayload::Delta { sparsity: 0, .. } => None,
        StoredPayload::Delta { sparsity, .. } => Some(ReadTarget::Sparse { gamma: sparsity }),
    }
}

/// Decodes one planned entry read: the gathered shares of a
/// [`ReadPlan`](sec_erasure::read_plan::ReadPlan) under its chosen method.
///
/// Shared by every read layer so the method dispatch (and the invariant that
/// sparse plans only arise for sparse targets) lives once.
///
/// # Errors
///
/// Propagates decode failures from the codec.
pub fn decode_planned(
    codec: &ByteCodec,
    method: DecodeMethod,
    target: ReadTarget,
    shares: &[(usize, &[u8])],
) -> Result<ByteShards, CodeError> {
    match method {
        DecodeMethod::SystematicDirect | DecodeMethod::Inversion => codec.decode_blocks(shares),
        DecodeMethod::SparseRecovery => match target {
            ReadTarget::Sparse { gamma } => codec.recover_sparse_blocks(shares, gamma),
            // audit: panic ok — plan_read returns SparseRecovery only for ReadTarget::Sparse
            ReadTarget::Full => unreachable!("sparse plans only arise for sparse targets"),
        },
    }
}

/// Copies decoded data shards out as a flat object of `object_len` bytes,
/// dropping the shard zero-padding — the one padding rule every read layer
/// shares.
pub fn trim_object(shards: &ByteShards, object_len: usize) -> Vec<u8> {
    let len = object_len.min(shards.total_len());
    // audit: panic ok — `len` is clamped to the shard total two lines up
    shards.as_bytes()[..len].to_vec()
}

/// Result of a prefix walk: the I/O spent and versions `x_1, …, x_l`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixWalkOutcome {
    /// Total block reads spent.
    pub io_reads: usize,
    /// Number of stored entries that were touched.
    pub entries_read: usize,
    /// The reconstructed versions in order, trimmed to `object_len` bytes.
    pub versions: Vec<Vec<u8>>,
}

/// Reconstructs versions `1..=l` in one pass under `strategy`, trimming each
/// to `object_len` bytes (dropping shard zero-padding).
///
/// # Errors
///
/// As for [`walk_version`].
pub fn walk_prefix<E, P, R>(
    strategy: EncodingStrategy,
    stored_count: usize,
    payload_at: P,
    l: usize,
    object_len: usize,
    mut read_entry: R,
) -> Result<PrefixWalkOutcome, E>
where
    E: From<CodeError>,
    P: Fn(usize) -> StoredPayload,
    R: FnMut(usize) -> Result<(usize, ByteShards), E>,
{
    let trim = |shards: &ByteShards| trim_object(shards, object_len);
    match strategy {
        EncodingStrategy::NonDifferential => {
            let mut versions = Vec::with_capacity(l);
            let mut io_reads = 0;
            for idx in 0..l {
                let (reads, data) = read_entry(idx)?;
                io_reads += reads;
                versions.push(trim(&data));
            }
            Ok(PrefixWalkOutcome {
                io_reads,
                entries_read: l,
                versions,
            })
        }
        EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
            let mut io_reads = 0;
            let mut versions: Vec<Vec<u8>> = Vec::with_capacity(l);
            let mut acc: Option<ByteShards> = None;
            for idx in 0..l {
                let (reads, decoded) = read_entry(idx)?;
                io_reads += reads;
                match payload_at(idx) {
                    StoredPayload::FullVersion { .. } => acc = Some(decoded),
                    StoredPayload::Delta { .. } => {
                        // audit: panic ok — archive invariant: a delta is always preceded by its base full version
                        let base = acc.as_mut().expect("delta entries follow their base version");
                        base.xor_with(&decoded)?;
                    }
                }
                // audit: panic ok — `acc` was set on this or an earlier iteration (entry 0 is full)
                versions.push(trim(acc.as_ref().expect("set above")));
            }
            Ok(PrefixWalkOutcome {
                io_reads,
                entries_read: l,
                versions,
            })
        }
        EncodingStrategy::ReversedSec => {
            let latest_idx = stored_count - 1;
            let (mut io_reads, mut acc) = read_entry(latest_idx)?;
            let mut versions_rev = vec![trim(&acc)];
            for idx in (0..latest_idx).rev() {
                let (reads, delta) = read_entry(idx)?;
                io_reads += reads;
                acc.xor_with(&delta)?;
                versions_rev.push(trim(&acc));
            }
            versions_rev.reverse();
            versions_rev.truncate(l);
            Ok(PrefixWalkOutcome {
                io_reads,
                entries_read: latest_idx + 1,
                versions: versions_rev,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny in-memory entry list driving the walk directly: k = 1 shard
    /// of one byte, so deltas are single XOR bytes and outcomes are easy to
    /// enumerate by hand.
    fn entries() -> Vec<(StoredPayload, ByteShards)> {
        let full = |version, byte| {
            (
                StoredPayload::FullVersion { version },
                ByteShards::from_flat(&[byte], 1),
            )
        };
        let delta = |to, byte: u8| {
            (
                StoredPayload::Delta {
                    to,
                    sparsity: usize::from(byte != 0),
                },
                ByteShards::from_flat(&[byte], 1),
            )
        };
        // Versions: 5, 5^3 = 6, 6^1 = 7.
        vec![full(1, 5), delta(2, 3), delta(3, 1)]
    }

    fn reader(
        entries: &[(StoredPayload, ByteShards)],
    ) -> impl FnMut(usize) -> Result<(usize, ByteShards), CodeError> + '_ {
        |idx| Ok((1, entries[idx].1.clone()))
    }

    #[test]
    fn forward_walk_xors_deltas_from_the_anchor() {
        let entries = entries();
        let payloads: Vec<StoredPayload> = entries.iter().map(|(p, _)| *p).collect();
        for (l, expect) in [(1, 5u8), (2, 6), (3, 7)] {
            let out = walk_version(
                EncodingStrategy::BasicSec,
                payloads.len(),
                |i| payloads[i],
                l,
                reader(&entries),
            )
            .unwrap();
            assert_eq!(out.shards.as_bytes(), &[expect], "version {l}");
            assert_eq!(out.entries_read, l);
            assert_eq!(out.io_reads, l);
        }
    }

    #[test]
    fn reversed_walk_unapplies_from_the_latest_copy() {
        // Stored list: z_2 = 3, z_3 = 1, full x_3 = 7 (final entry).
        let entries = vec![
            (
                StoredPayload::Delta { to: 2, sparsity: 1 },
                ByteShards::from_flat(&[3], 1),
            ),
            (
                StoredPayload::Delta { to: 3, sparsity: 1 },
                ByteShards::from_flat(&[1], 1),
            ),
            (
                StoredPayload::FullVersion { version: 3 },
                ByteShards::from_flat(&[7], 1),
            ),
        ];
        let payloads: Vec<StoredPayload> = entries.iter().map(|(p, _)| *p).collect();
        for (l, expect, touched) in [(3, 7u8, 1), (2, 6, 2), (1, 5, 3)] {
            let out = walk_version(
                EncodingStrategy::ReversedSec,
                payloads.len(),
                |i| payloads[i],
                l,
                reader(&entries),
            )
            .unwrap();
            assert_eq!(out.shards.as_bytes(), &[expect], "version {l}");
            assert_eq!(out.entries_read, touched);
        }
        let prefix = walk_prefix(
            EncodingStrategy::ReversedSec,
            payloads.len(),
            |i| payloads[i],
            2,
            1,
            reader(&entries),
        )
        .unwrap();
        assert_eq!(prefix.versions, vec![vec![5u8], vec![6]]);
        assert_eq!(prefix.entries_read, 3);
    }

    #[test]
    fn prefix_walk_snapshots_every_intermediate_version() {
        let entries = entries();
        let payloads: Vec<StoredPayload> = entries.iter().map(|(p, _)| *p).collect();
        let out = walk_prefix(
            EncodingStrategy::BasicSec,
            payloads.len(),
            |i| payloads[i],
            3,
            1,
            reader(&entries),
        )
        .unwrap();
        assert_eq!(out.versions, vec![vec![5u8], vec![6], vec![7]]);
        assert_eq!(out.io_reads, 3);
    }

    #[test]
    fn forward_walk_from_base_applies_only_trailing_deltas() {
        let entries = entries();
        let payloads: Vec<StoredPayload> = entries.iter().map(|(p, _)| *p).collect();
        // Base: decoded version 2 (value 6). Target 3 needs one delta.
        let (out, base_used) = walk_version_from_base(
            EncodingStrategy::BasicSec,
            payloads.len(),
            |i| payloads[i],
            3,
            2,
            ByteShards::from_flat(&[6], 1),
            reader(&entries),
        )
        .unwrap();
        assert!(base_used);
        assert_eq!(out.shards.as_bytes(), &[7]);
        assert_eq!(out.entries_read, 1);
        assert_eq!(out.io_reads, 1);
        // Base equal to the target: nothing to read at all.
        let (out, base_used) = walk_version_from_base(
            EncodingStrategy::BasicSec,
            payloads.len(),
            |i| payloads[i],
            2,
            2,
            ByteShards::from_flat(&[6], 1),
            reader(&entries),
        )
        .unwrap();
        assert!(base_used);
        assert_eq!(out.shards.as_bytes(), &[6]);
        assert_eq!(out.io_reads, 0);
        assert_eq!(out.entries_read, 0);
    }

    #[test]
    fn forward_walk_from_base_falls_back_when_a_full_interposes() {
        // Layout with a checkpoint: full x1=5, z2=3, full x3=7, z4=2.
        // Versions: 5, 6, 7, 5.
        let full = |version, byte| {
            (
                StoredPayload::FullVersion { version },
                ByteShards::from_flat(&[byte], 1),
            )
        };
        let delta = |to, byte: u8| {
            (
                StoredPayload::Delta { to, sparsity: 1 },
                ByteShards::from_flat(&[byte], 1),
            )
        };
        let entries = vec![full(1, 5), delta(2, 3), full(3, 7), delta(4, 2)];
        let payloads: Vec<StoredPayload> = entries.iter().map(|(p, _)| *p).collect();
        // Cached base 1 is older than the stored full at entry 2: the walk
        // must anchor on the full, not XOR it onto the base.
        let (out, base_used) = walk_version_from_base(
            EncodingStrategy::OptimizedSec,
            payloads.len(),
            |i| payloads[i],
            4,
            1,
            ByteShards::from_flat(&[5], 1),
            reader(&entries),
        )
        .unwrap();
        assert!(!base_used, "full version inside the walk region");
        assert_eq!(out.shards.as_bytes(), &[5]);
        assert_eq!(out.entries_read, 2, "anchor full + one trailing delta");
        // A base past the checkpoint is used directly.
        let (out, base_used) = walk_version_from_base(
            EncodingStrategy::OptimizedSec,
            payloads.len(),
            |i| payloads[i],
            4,
            3,
            ByteShards::from_flat(&[7], 1),
            reader(&entries),
        )
        .unwrap();
        assert!(base_used);
        assert_eq!(out.shards.as_bytes(), &[5]);
        assert_eq!(out.entries_read, 1);
    }

    #[test]
    fn reversed_walk_from_tail_unapplies_only_newer_deltas() {
        // Stored list: z_2 = 3, z_3 = 1, full x_3 = 7 (final entry).
        let entries = vec![
            (
                StoredPayload::Delta { to: 2, sparsity: 1 },
                ByteShards::from_flat(&[3], 1),
            ),
            (
                StoredPayload::Delta { to: 3, sparsity: 1 },
                ByteShards::from_flat(&[1], 1),
            ),
            (
                StoredPayload::FullVersion { version: 3 },
                ByteShards::from_flat(&[7], 1),
            ),
        ];
        for (l, tail, expect, touched) in [(1, 3, 5u8, 2), (2, 3, 6, 1), (3, 3, 7, 0), (1, 2, 5, 1)] {
            let shards = ByteShards::from_flat(&[if tail == 3 { 7 } else { 6 }], 1);
            let out = walk_version_from_tail(l, tail, shards, reader(&entries)).unwrap();
            assert_eq!(out.shards.as_bytes(), &[expect], "l={l} tail={tail}");
            assert_eq!(out.entries_read, touched, "l={l} tail={tail}");
            assert_eq!(out.io_reads, touched);
        }
        // Prefix from the tail: versions 1..=2 without reading the full copy.
        let prefix =
            walk_prefix_from_tail(2, 1, 3, ByteShards::from_flat(&[7], 1), reader(&entries)).unwrap();
        assert_eq!(prefix.versions, vec![vec![5u8], vec![6]]);
        assert_eq!(prefix.entries_read, 2);
        assert_eq!(prefix.io_reads, 2);
    }

    #[test]
    fn read_errors_propagate() {
        let entries = entries();
        let payloads: Vec<StoredPayload> = entries.iter().map(|(p, _)| *p).collect();
        let result = walk_version(
            EncodingStrategy::BasicSec,
            payloads.len(),
            |i| payloads[i],
            3,
            |idx| {
                if idx == 1 {
                    Err(CodeError::SparseRecoveryFailed { gamma: 1 })
                } else {
                    Ok((1, entries[idx].1.clone()))
                }
            },
        );
        assert!(matches!(
            result,
            Err(CodeError::SparseRecoveryFailed { gamma: 1 })
        ));
    }
}
