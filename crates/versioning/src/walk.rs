//! The per-strategy retrieval traversal, shared by every byte-shard read
//! path.
//!
//! Three layers serve versions out of the same stored-entry layout — the
//! all-nodes-alive [`ByteVersionedArchive`](crate::ByteVersionedArchive),
//! the failure-aware `ByteDistributedStore` in `sec-store`, and the
//! concurrent `SecEngine` in `sec-engine`. They differ only in *how one
//! entry's blocks are fetched and decoded*; the strategy walk itself (find
//! the anchor, XOR deltas forward, or un-apply deltas backward from the
//! Reversed-SEC latest copy) is identical. This module holds that walk
//! once, parameterized over a per-entry read callback, so the strategy
//! semantics cannot drift between layers.
//!
//! Conventions shared by every caller:
//!
//! * `payload_at(i)` describes stored entry `i` of `stored_count` entries in
//!   entry order, with the Reversed-SEC full latest copy as the **final**
//!   element (the order [`ByteVersionedArchive::stored_entries`]
//!   (crate::ByteVersionedArchive::stored_entries) produces);
//! * the read callback receives the entry index and returns
//!   `(block_reads, decoded_data_shards)`; the `γ = 0` shortcut (an empty
//!   delta needs no reads) is provided by [`read_target`] returning `None`;
//! * version bounds are validated by the caller — the walk assumes
//!   `1 ≤ l ≤ L`.

use sec_erasure::read_plan::{DecodeMethod, ReadTarget};
use sec_erasure::{ByteCodec, ByteShards, CodeError};

use crate::archive::{EncodingStrategy, StoredPayload};

/// Result of one strategy walk: the I/O spent and what was reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Total block reads spent.
    pub io_reads: usize,
    /// Number of stored entries that were touched.
    pub entries_read: usize,
    /// The reconstructed data shards of the requested version.
    pub shards: ByteShards,
}

/// Reconstructs version `l` by walking the stored entries under `strategy`,
/// fetching each touched entry through `read_entry`.
///
/// # Errors
///
/// Propagates the first `read_entry` error; shard-shape mismatches during
/// delta application surface through `E: From<CodeError>`.
pub fn walk_version<E, P, R>(
    strategy: EncodingStrategy,
    stored_count: usize,
    payload_at: P,
    l: usize,
    mut read_entry: R,
) -> Result<WalkOutcome, E>
where
    E: From<CodeError>,
    P: Fn(usize) -> StoredPayload,
    R: FnMut(usize) -> Result<(usize, ByteShards), E>,
{
    match strategy {
        EncodingStrategy::NonDifferential => {
            let (io_reads, shards) = read_entry(l - 1)?;
            Ok(WalkOutcome {
                io_reads,
                entries_read: 1,
                shards,
            })
        }
        EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
            let anchor = (0..l)
                .rev()
                .find(|&idx| matches!(payload_at(idx), StoredPayload::FullVersion { .. }))
                // audit: panic ok — archive invariant: entry 0 always stores a full version
                .expect("the first entry always stores a full version");
            let (mut io_reads, mut acc) = read_entry(anchor)?;
            let mut entries_read = 1;
            for idx in anchor + 1..l {
                let (reads, delta) = read_entry(idx)?;
                io_reads += reads;
                entries_read += 1;
                acc.xor_with(&delta)?;
            }
            Ok(WalkOutcome {
                io_reads,
                entries_read,
                shards: acc,
            })
        }
        EncodingStrategy::ReversedSec => {
            // The full latest copy is the final stored entry; un-apply the
            // deltas z_L, …, z_{l+1} backwards.
            let latest_idx = stored_count - 1;
            let (mut io_reads, mut acc) = read_entry(latest_idx)?;
            let mut entries_read = 1;
            for idx in (l.saturating_sub(1)..latest_idx).rev() {
                let (reads, delta) = read_entry(idx)?;
                io_reads += reads;
                entries_read += 1;
                acc.xor_with(&delta)?;
            }
            Ok(WalkOutcome {
                io_reads,
                entries_read,
                shards: acc,
            })
        }
    }
}

/// Maps one stored payload to its SEC read target, or `None` for the
/// `γ = 0` shortcut: an all-zero delta is known without reading a single
/// block, so the caller should return `(0, ByteShards::zeroed(k, shard_len))`
/// directly.
pub fn read_target(payload: StoredPayload) -> Option<ReadTarget> {
    match payload {
        StoredPayload::FullVersion { .. } => Some(ReadTarget::Full),
        StoredPayload::Delta { sparsity: 0, .. } => None,
        StoredPayload::Delta { sparsity, .. } => Some(ReadTarget::Sparse { gamma: sparsity }),
    }
}

/// Decodes one planned entry read: the gathered shares of a
/// [`ReadPlan`](sec_erasure::read_plan::ReadPlan) under its chosen method.
///
/// Shared by every read layer so the method dispatch (and the invariant that
/// sparse plans only arise for sparse targets) lives once.
///
/// # Errors
///
/// Propagates decode failures from the codec.
pub fn decode_planned(
    codec: &ByteCodec,
    method: DecodeMethod,
    target: ReadTarget,
    shares: &[(usize, &[u8])],
) -> Result<ByteShards, CodeError> {
    match method {
        DecodeMethod::SystematicDirect | DecodeMethod::Inversion => codec.decode_blocks(shares),
        DecodeMethod::SparseRecovery => match target {
            ReadTarget::Sparse { gamma } => codec.recover_sparse_blocks(shares, gamma),
            // audit: panic ok — plan_read returns SparseRecovery only for ReadTarget::Sparse
            ReadTarget::Full => unreachable!("sparse plans only arise for sparse targets"),
        },
    }
}

/// Copies decoded data shards out as a flat object of `object_len` bytes,
/// dropping the shard zero-padding — the one padding rule every read layer
/// shares.
pub fn trim_object(shards: &ByteShards, object_len: usize) -> Vec<u8> {
    let len = object_len.min(shards.total_len());
    // audit: panic ok — `len` is clamped to the shard total two lines up
    shards.as_bytes()[..len].to_vec()
}

/// Result of a prefix walk: the I/O spent and versions `x_1, …, x_l`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixWalkOutcome {
    /// Total block reads spent.
    pub io_reads: usize,
    /// Number of stored entries that were touched.
    pub entries_read: usize,
    /// The reconstructed versions in order, trimmed to `object_len` bytes.
    pub versions: Vec<Vec<u8>>,
}

/// Reconstructs versions `1..=l` in one pass under `strategy`, trimming each
/// to `object_len` bytes (dropping shard zero-padding).
///
/// # Errors
///
/// As for [`walk_version`].
pub fn walk_prefix<E, P, R>(
    strategy: EncodingStrategy,
    stored_count: usize,
    payload_at: P,
    l: usize,
    object_len: usize,
    mut read_entry: R,
) -> Result<PrefixWalkOutcome, E>
where
    E: From<CodeError>,
    P: Fn(usize) -> StoredPayload,
    R: FnMut(usize) -> Result<(usize, ByteShards), E>,
{
    let trim = |shards: &ByteShards| trim_object(shards, object_len);
    match strategy {
        EncodingStrategy::NonDifferential => {
            let mut versions = Vec::with_capacity(l);
            let mut io_reads = 0;
            for idx in 0..l {
                let (reads, data) = read_entry(idx)?;
                io_reads += reads;
                versions.push(trim(&data));
            }
            Ok(PrefixWalkOutcome {
                io_reads,
                entries_read: l,
                versions,
            })
        }
        EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
            let mut io_reads = 0;
            let mut versions: Vec<Vec<u8>> = Vec::with_capacity(l);
            let mut acc: Option<ByteShards> = None;
            for idx in 0..l {
                let (reads, decoded) = read_entry(idx)?;
                io_reads += reads;
                match payload_at(idx) {
                    StoredPayload::FullVersion { .. } => acc = Some(decoded),
                    StoredPayload::Delta { .. } => {
                        // audit: panic ok — archive invariant: a delta is always preceded by its base full version
                        let base = acc.as_mut().expect("delta entries follow their base version");
                        base.xor_with(&decoded)?;
                    }
                }
                // audit: panic ok — `acc` was set on this or an earlier iteration (entry 0 is full)
                versions.push(trim(acc.as_ref().expect("set above")));
            }
            Ok(PrefixWalkOutcome {
                io_reads,
                entries_read: l,
                versions,
            })
        }
        EncodingStrategy::ReversedSec => {
            let latest_idx = stored_count - 1;
            let (mut io_reads, mut acc) = read_entry(latest_idx)?;
            let mut versions_rev = vec![trim(&acc)];
            for idx in (0..latest_idx).rev() {
                let (reads, delta) = read_entry(idx)?;
                io_reads += reads;
                acc.xor_with(&delta)?;
                versions_rev.push(trim(&acc));
            }
            versions_rev.reverse();
            versions_rev.truncate(l);
            Ok(PrefixWalkOutcome {
                io_reads,
                entries_read: latest_idx + 1,
                versions: versions_rev,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny in-memory entry list driving the walk directly: k = 1 shard
    /// of one byte, so deltas are single XOR bytes and outcomes are easy to
    /// enumerate by hand.
    fn entries() -> Vec<(StoredPayload, ByteShards)> {
        let full = |version, byte| {
            (
                StoredPayload::FullVersion { version },
                ByteShards::from_flat(&[byte], 1),
            )
        };
        let delta = |to, byte: u8| {
            (
                StoredPayload::Delta {
                    to,
                    sparsity: usize::from(byte != 0),
                },
                ByteShards::from_flat(&[byte], 1),
            )
        };
        // Versions: 5, 5^3 = 6, 6^1 = 7.
        vec![full(1, 5), delta(2, 3), delta(3, 1)]
    }

    fn reader(
        entries: &[(StoredPayload, ByteShards)],
    ) -> impl FnMut(usize) -> Result<(usize, ByteShards), CodeError> + '_ {
        |idx| Ok((1, entries[idx].1.clone()))
    }

    #[test]
    fn forward_walk_xors_deltas_from_the_anchor() {
        let entries = entries();
        let payloads: Vec<StoredPayload> = entries.iter().map(|(p, _)| *p).collect();
        for (l, expect) in [(1, 5u8), (2, 6), (3, 7)] {
            let out = walk_version(
                EncodingStrategy::BasicSec,
                payloads.len(),
                |i| payloads[i],
                l,
                reader(&entries),
            )
            .unwrap();
            assert_eq!(out.shards.as_bytes(), &[expect], "version {l}");
            assert_eq!(out.entries_read, l);
            assert_eq!(out.io_reads, l);
        }
    }

    #[test]
    fn reversed_walk_unapplies_from_the_latest_copy() {
        // Stored list: z_2 = 3, z_3 = 1, full x_3 = 7 (final entry).
        let entries = vec![
            (
                StoredPayload::Delta { to: 2, sparsity: 1 },
                ByteShards::from_flat(&[3], 1),
            ),
            (
                StoredPayload::Delta { to: 3, sparsity: 1 },
                ByteShards::from_flat(&[1], 1),
            ),
            (
                StoredPayload::FullVersion { version: 3 },
                ByteShards::from_flat(&[7], 1),
            ),
        ];
        let payloads: Vec<StoredPayload> = entries.iter().map(|(p, _)| *p).collect();
        for (l, expect, touched) in [(3, 7u8, 1), (2, 6, 2), (1, 5, 3)] {
            let out = walk_version(
                EncodingStrategy::ReversedSec,
                payloads.len(),
                |i| payloads[i],
                l,
                reader(&entries),
            )
            .unwrap();
            assert_eq!(out.shards.as_bytes(), &[expect], "version {l}");
            assert_eq!(out.entries_read, touched);
        }
        let prefix = walk_prefix(
            EncodingStrategy::ReversedSec,
            payloads.len(),
            |i| payloads[i],
            2,
            1,
            reader(&entries),
        )
        .unwrap();
        assert_eq!(prefix.versions, vec![vec![5u8], vec![6]]);
        assert_eq!(prefix.entries_read, 3);
    }

    #[test]
    fn prefix_walk_snapshots_every_intermediate_version() {
        let entries = entries();
        let payloads: Vec<StoredPayload> = entries.iter().map(|(p, _)| *p).collect();
        let out = walk_prefix(
            EncodingStrategy::BasicSec,
            payloads.len(),
            |i| payloads[i],
            3,
            1,
            reader(&entries),
        )
        .unwrap();
        assert_eq!(out.versions, vec![vec![5u8], vec![6], vec![7]]);
        assert_eq!(out.io_reads, 3);
    }

    #[test]
    fn read_errors_propagate() {
        let entries = entries();
        let payloads: Vec<StoredPayload> = entries.iter().map(|(p, _)| *p).collect();
        let result = walk_version(
            EncodingStrategy::BasicSec,
            payloads.len(),
            |i| payloads[i],
            3,
            |idx| {
                if idx == 1 {
                    Err(CodeError::SparseRecoveryFailed { gamma: 1 })
                } else {
                    Ok((1, entries[idx].1.clone()))
                }
            },
        );
        assert!(matches!(
            result,
            Err(CodeError::SparseRecoveryFailed { gamma: 1 })
        ));
    }
}
