//! Small combinatorial helpers shared by the criterion checks, the exhaustive
//! failure-pattern analysis and the resilience formulas.

/// Iterator over all `r`-element subsets of `0..n`, each yielded as a sorted
/// vector, in lexicographic order.
///
/// # Example
///
/// ```rust
/// use sec_linalg::combinatorics::Combinations;
///
/// let subsets: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
/// assert_eq!(subsets.len(), 6);
/// assert_eq!(subsets[0], vec![0, 1]);
/// assert_eq!(subsets[5], vec![2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Combinations {
    n: usize,
    r: usize,
    current: Vec<usize>,
    done: bool,
}

impl Combinations {
    /// Creates the iterator over `r`-subsets of `0..n`.
    ///
    /// When `r > n` the iterator is immediately empty; when `r == 0` it yields
    /// exactly one empty subset.
    pub fn new(n: usize, r: usize) -> Self {
        Self {
            n,
            r,
            current: (0..r).collect(),
            done: r > n,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let result = self.current.clone();
        // Advance to the next combination, or mark the iterator finished.
        let r = self.r;
        let n = self.n;
        if r == 0 {
            self.done = true;
            return Some(result);
        }
        let mut i = r;
        while i > 0 && self.current[i - 1] == i - 1 + n - r {
            i -= 1;
        }
        if i == 0 {
            self.done = true;
        } else {
            self.current[i - 1] += 1;
            for j in i..r {
                self.current[j] = self.current[j - 1] + 1;
            }
        }
        Some(result)
    }
}

/// All `r`-element subsets of `0..n`, collected into a vector.
pub fn combinations(n: usize, r: usize) -> Vec<Vec<usize>> {
    Combinations::new(n, r).collect()
}

/// The binomial coefficient `C(n, r)` as an `f64` (used by the closed-form
/// resilience expressions, eqs. 6–9 and 17–20 of the paper).
pub fn binomial(n: u64, r: u64) -> f64 {
    if r > n {
        return 0.0;
    }
    let r = r.min(n - r);
    let mut acc = 1.0f64;
    for i in 0..r {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc.round()
}

/// The exact binomial coefficient `C(n, r)` as a `u128`.
///
/// # Panics
///
/// Panics on intermediate overflow, which cannot happen for the `n ≤ 64`
/// storage-system sizes this crate targets.
pub fn binomial_exact(n: u64, r: u64) -> u128 {
    if r > n {
        return 0;
    }
    let r = r.min(n - r);
    let mut acc: u128 = 1;
    for i in 0..r {
        acc = acc
            .checked_mul((n - i) as u128)
            .expect("binomial coefficient overflow");
        acc /= (i + 1) as u128;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinations_counts_match_binomial() {
        for n in 0..8usize {
            for r in 0..=n {
                let combos = combinations(n, r);
                assert_eq!(combos.len() as u128, binomial_exact(n as u64, r as u64));
                // Each subset is sorted and within range, and all are distinct.
                let mut seen = std::collections::HashSet::new();
                for c in &combos {
                    assert!(c.windows(2).all(|w| w[0] < w[1]));
                    assert!(c.iter().all(|&x| x < n));
                    assert!(seen.insert(c.clone()));
                }
            }
        }
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(combinations(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(0, 0), vec![Vec::<usize>::new()]);
        assert!(combinations(3, 4).is_empty());
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn lexicographic_order() {
        let combos = combinations(5, 3);
        for w in combos.windows(2) {
            assert!(w[0] < w[1], "{:?} should precede {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn binomial_known_values() {
        assert_eq!(binomial(6, 0), 1.0);
        assert_eq!(binomial(6, 4), 15.0);
        assert_eq!(binomial(6, 5), 6.0);
        assert_eq!(binomial(6, 6), 1.0);
        assert_eq!(binomial(6, 7), 0.0);
        assert_eq!(binomial(20, 10), 184756.0);
        assert_eq!(binomial_exact(63, 31), 916312070471295267);
        assert_eq!(binomial_exact(10, 3), 120);
    }

    #[test]
    fn binomial_matches_exact_for_small_inputs() {
        for n in 0..30u64 {
            for r in 0..=n {
                assert_eq!(binomial(n, r), binomial_exact(n, r) as f64, "C({n},{r})");
            }
        }
    }
}
