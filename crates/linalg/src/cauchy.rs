//! Cauchy matrices: the paper's recommended construction for SEC generator
//! matrices (Examples 1 and 2).
//!
//! A Cauchy matrix over `F_q` is `C[i][j] = 1 / (h_i - f_j)` for two disjoint
//! sequences of distinct field elements `h_1..h_n` and `f_1..f_k`. Every
//! square submatrix of a Cauchy matrix is invertible (Lacan & Fimes), which
//! simultaneously gives:
//!
//! * the MDS property (any `k` rows of the `n × k` generator are invertible),
//!   i.e. **Criterion 1**, and
//! * the sparse-recovery property: every `2γ × k` submatrix has all of its
//!   `2γ`-column subsets linearly independent, i.e. **Criterion 2**.

use core::fmt;

use sec_gf::GaloisField;

use crate::Matrix;

/// Errors from Cauchy-matrix construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CauchyError {
    /// The field has fewer than `n + k` elements, so disjoint point sets of
    /// the required sizes do not exist.
    FieldTooSmall {
        /// Requested number of rows (`n`).
        rows: usize,
        /// Requested number of columns (`k`).
        cols: usize,
        /// Number of elements in the field.
        field_order: u64,
    },
    /// The row points and column points are not pairwise distinct/disjoint.
    InvalidPoints,
}

impl fmt::Display for CauchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CauchyError::FieldTooSmall {
                rows,
                cols,
                field_order,
            } => write!(
                f,
                "a {rows}x{cols} Cauchy matrix needs {} distinct field elements but the field has only {field_order}",
                rows + cols
            ),
            CauchyError::InvalidPoints => {
                write!(f, "cauchy points must be distinct within and disjoint across the two sets")
            }
        }
    }
}

impl std::error::Error for CauchyError {}

/// Builds the Cauchy matrix `C[i][j] = 1 / (h[i] - f[j])` from explicit point
/// sets.
///
/// # Errors
///
/// Returns [`CauchyError::InvalidPoints`] if the points within either set are
/// not distinct or the two sets are not disjoint.
pub fn cauchy_from_points<F: GaloisField>(h: &[F], f: &[F]) -> Result<Matrix<F>, CauchyError> {
    for (i, &a) in h.iter().enumerate() {
        if h[i + 1..].contains(&a) {
            return Err(CauchyError::InvalidPoints);
        }
    }
    for (j, &b) in f.iter().enumerate() {
        if f[j + 1..].contains(&b) {
            return Err(CauchyError::InvalidPoints);
        }
        if h.contains(&b) {
            return Err(CauchyError::InvalidPoints);
        }
    }
    let m = Matrix::from_fn(h.len(), f.len(), |i, j| {
        (h[i] - f[j])
            .inv()
            .expect("disjoint point sets guarantee h_i - f_j != 0")
    });
    Ok(m)
}

/// Builds an `n × k` Cauchy matrix using the canonical point choice
/// `h_i = i` (for `i = 0..n`) and `f_j = n + j` (for `j = 0..k`).
///
/// # Errors
///
/// Returns [`CauchyError::FieldTooSmall`] when `n + k > q`.
pub fn cauchy_matrix<F: GaloisField>(n: usize, k: usize) -> Result<Matrix<F>, CauchyError> {
    if (n + k) as u64 > F::ORDER {
        return Err(CauchyError::FieldTooSmall {
            rows: n,
            cols: k,
            field_order: F::ORDER,
        });
    }
    let h: Vec<F> = (0..n as u64).map(F::from_u64).collect();
    let f: Vec<F> = (n as u64..(n + k) as u64).map(F::from_u64).collect();
    cauchy_from_points(&h, &f)
}

/// Builds the `(n - k) × k` Cauchy parity block `B` used by the systematic
/// generator `G_S = [I_k ; B]` (paper, Example 2).
///
/// # Errors
///
/// Returns [`CauchyError::FieldTooSmall`] when `n > q`.
pub fn cauchy_parity_block<F: GaloisField>(n: usize, k: usize) -> Result<Matrix<F>, CauchyError> {
    let parity_rows = n.saturating_sub(k);
    if (parity_rows + k) as u64 > F::ORDER {
        return Err(CauchyError::FieldTooSmall {
            rows: parity_rows,
            cols: k,
            field_order: F::ORDER,
        });
    }
    cauchy_matrix::<F>(parity_rows, k)
}

/// Closed-form determinant of a square Cauchy matrix built from points
/// `h` and `f` (used to cross-check Gaussian elimination in tests):
///
/// `det = Π_{i<j}(h_j - h_i)(f_i - f_j) / Π_{i,j}(h_i - f_j)`.
pub fn cauchy_determinant<F: GaloisField>(h: &[F], f: &[F]) -> F {
    assert_eq!(h.len(), f.len(), "cauchy determinant requires a square matrix");
    let n = h.len();
    let mut num = F::ONE;
    for i in 0..n {
        for j in i + 1..n {
            num *= (h[j] - h[i]) * (f[i] - f[j]);
        }
    }
    let mut den = F::ONE;
    for &hi in h {
        for &fj in f {
            den *= hi - fj;
        }
    }
    num * den.inv().expect("disjoint points give non-zero denominator")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use sec_gf::{Gf1024, Gf16, Gf256};

    #[test]
    fn canonical_points_produce_expected_shape() {
        let m: Matrix<Gf256> = cauchy_matrix(6, 3).unwrap();
        assert_eq!(m.shape(), (6, 3));
        // Entry formula check.
        let h = Gf256::from_u64(2);
        let f = Gf256::from_u64(6 + 1);
        assert_eq!(m.get(2, 1), (h - f).inv().unwrap());
    }

    #[test]
    fn every_square_submatrix_is_invertible_small() {
        // Exhaustively verify the defining Cauchy property on a (6,3) matrix
        // over GF(16): every square submatrix is invertible.
        let m: Matrix<Gf16> = cauchy_matrix(6, 3).unwrap();
        let n = m.rows();
        let k = m.cols();
        for size in 1..=k {
            for rows in crate::combinatorics::combinations(n, size) {
                for cols in crate::combinatorics::combinations(k, size) {
                    let sub = m.submatrix(&rows, &cols).unwrap();
                    assert!(
                        ops::is_invertible(&sub),
                        "singular {size}x{size} submatrix at rows {rows:?} cols {cols:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn field_too_small_is_reported() {
        let err = cauchy_matrix::<Gf16>(14, 5).unwrap_err();
        assert!(matches!(err, CauchyError::FieldTooSmall { field_order: 16, .. }));
        assert!(err.to_string().contains("19"));
        assert!(cauchy_matrix::<Gf1024>(20, 10).is_ok());
    }

    #[test]
    fn invalid_points_are_rejected() {
        let a = Gf256::from_u64(1);
        let b = Gf256::from_u64(2);
        // Duplicate within h.
        assert_eq!(
            cauchy_from_points(&[a, a], &[b]).unwrap_err(),
            CauchyError::InvalidPoints
        );
        // Duplicate within f.
        assert_eq!(
            cauchy_from_points(&[a], &[b, b]).unwrap_err(),
            CauchyError::InvalidPoints
        );
        // Overlap across sets.
        assert_eq!(
            cauchy_from_points(&[a, b], &[b]).unwrap_err(),
            CauchyError::InvalidPoints
        );
    }

    #[test]
    fn parity_block_shape() {
        let b: Matrix<Gf256> = cauchy_parity_block(6, 3).unwrap();
        assert_eq!(b.shape(), (3, 3));
        assert!(ops::is_invertible(&b));
        let wide: Matrix<Gf256> = cauchy_parity_block(20, 10).unwrap();
        assert_eq!(wide.shape(), (10, 10));
    }

    #[test]
    fn closed_form_determinant_matches_elimination() {
        let h: Vec<Gf256> = [3u64, 7, 11, 19].iter().map(|&v| Gf256::from_u64(v)).collect();
        let f: Vec<Gf256> = [100u64, 101, 150, 200]
            .iter()
            .map(|&v| Gf256::from_u64(v))
            .collect();
        let m = cauchy_from_points(&h, &f).unwrap();
        assert_eq!(ops::determinant(&m).unwrap(), cauchy_determinant(&h, &f));
    }

    #[test]
    fn rectangular_cauchy_has_full_rank() {
        let m: Matrix<Gf1024> = cauchy_matrix(20, 10).unwrap();
        assert_eq!(ops::rank(&m), 10);
        let t = m.transpose();
        assert_eq!(ops::rank(&t), 10);
    }
}
