//! The dense row-major [`Matrix`] type.

use core::fmt;

use sec_gf::GaloisField;

/// Errors produced by matrix construction and shape-sensitive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The requested dimensions do not match the supplied data length.
    DimensionMismatch {
        /// Number of rows requested.
        rows: usize,
        /// Number of columns requested.
        cols: usize,
        /// Length of the data vector supplied.
        data_len: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// A row or column index was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The exclusive bound it had to satisfy.
        bound: usize,
    },
    /// The matrix is singular where an invertible matrix was required.
    Singular,
    /// An operation required a square matrix but got a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { rows, cols, data_len } => write!(
                f,
                "matrix of shape {rows}x{cols} needs {} entries but {data_len} were supplied",
                rows * cols
            ),
            MatrixError::ShapeMismatch { left, right } => write!(
                f,
                "incompatible shapes {}x{} and {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::IndexOutOfRange { index, bound } => {
                write!(f, "index {index} out of range (bound {bound})")
            }
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense, row-major matrix over a Galois field.
///
/// # Example
///
/// ```rust
/// use sec_gf::{GaloisField, Gf256};
/// use sec_linalg::Matrix;
///
/// let m = Matrix::<Gf256>::identity(3);
/// let v: Vec<Gf256> = [1u64, 2, 3].iter().map(|&x| Gf256::from_u64(x)).collect();
/// assert_eq!(m.mul_vec(&v).unwrap(), v);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Matrix<F> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: GaloisField> Matrix<F> {
    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<F>) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::DimensionMismatch {
                rows,
                cols,
                data_len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if the rows are ragged.
    pub fn from_rows(rows: &[Vec<F>]) -> Result<Self, MatrixError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(MatrixError::ShapeMismatch {
                    left: (nrows, ncols),
                    right: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![F::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { F::ONE } else { F::ZERO })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, row: usize, col: usize) -> F {
        assert!(row < self.rows && col < self.cols, "matrix index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: F) {
        assert!(row < self.rows && col < self.cols, "matrix index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[F] {
        assert!(row < self.rows, "row index out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// A copy of one column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn col(&self, col: usize) -> Vec<F> {
        assert!(col < self.cols, "column index out of range");
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Iterator over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[F]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Row-major view of the underlying data.
    pub fn as_slice(&self) -> &[F] {
        &self.data
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] when the inner dimensions differ.
    pub fn mul_mat(&self, rhs: &Self) -> Result<Self, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * rhs.get(l, j));
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] when `v.len() != cols`.
    pub fn mul_vec(&self, v: &[F]) -> Result<Vec<F>, MatrixError> {
        if v.len() != self.cols {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v).fold(F::ZERO, |acc, (&a, &b)| acc + a * b))
            .collect())
    }

    /// New matrix consisting of the selected rows, in the given order
    /// (duplicates allowed).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfRange`] if any index is invalid.
    pub fn select_rows(&self, rows: &[usize]) -> Result<Self, MatrixError> {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            if r >= self.rows {
                return Err(MatrixError::IndexOutOfRange {
                    index: r,
                    bound: self.rows,
                });
            }
            data.extend_from_slice(self.row(r));
        }
        Ok(Self {
            rows: rows.len(),
            cols: self.cols,
            data,
        })
    }

    /// New matrix consisting of the selected columns, in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfRange`] if any index is invalid.
    pub fn select_cols(&self, cols: &[usize]) -> Result<Self, MatrixError> {
        for &c in cols {
            if c >= self.cols {
                return Err(MatrixError::IndexOutOfRange {
                    index: c,
                    bound: self.cols,
                });
            }
        }
        Ok(Self::from_fn(self.rows, cols.len(), |r, j| self.get(r, cols[j])))
    }

    /// Submatrix given by explicit row and column index sets.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfRange`] if any index is invalid.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Result<Self, MatrixError> {
        self.select_rows(rows)?.select_cols(cols)
    }

    /// Vertical concatenation `[self; bottom]`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] when the column counts differ.
    pub fn stack(&self, bottom: &Self) -> Result<Self, MatrixError> {
        if self.cols != bottom.cols {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: bottom.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&bottom.data);
        Ok(Self {
            rows: self.rows + bottom.rows,
            cols: self.cols,
            data,
        })
    }

    /// Horizontal concatenation `[self | right]`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] when the row counts differ.
    pub fn augment(&self, right: &Self) -> Result<Self, MatrixError> {
        if self.rows != right.rows {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: right.shape(),
            });
        }
        let mut out = Self::zeros(self.rows, self.cols + right.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(r, c, self.get(r, c));
            }
            for c in 0..right.cols {
                out.set(r, self.cols + c, right.get(r, c));
            }
        }
        Ok(out)
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of range");
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Multiplies a row by a scalar in place.
    pub(crate) fn scale_row(&mut self, row: usize, factor: F) {
        for c in 0..self.cols {
            let v = self.get(row, c);
            self.set(row, c, v * factor);
        }
    }

    /// Adds `factor * source_row` to `target_row` in place.
    pub(crate) fn add_scaled_row(&mut self, target_row: usize, source_row: usize, factor: F) {
        if factor.is_zero() {
            return;
        }
        for c in 0..self.cols {
            let v = self.get(target_row, c) + factor * self.get(source_row, c);
            self.set(target_row, c, v);
        }
    }

    /// `true` when every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|v| v.is_zero())
    }
}

impl<F: GaloisField> fmt::Display for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{} matrix]", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>6}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::Gf256;

    fn m(rows: usize, cols: usize, vals: &[u64]) -> Matrix<Gf256> {
        Matrix::from_vec(rows, cols, vals.iter().map(|&v| Gf256::from_u64(v)).collect()).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let a = m(2, 3, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(a.shape(), (2, 3));
        assert_eq!(a.get(1, 2), Gf256::from_u64(6));
        assert_eq!(
            a.row(0),
            &[Gf256::from_u64(1), Gf256::from_u64(2), Gf256::from_u64(3)]
        );
        assert_eq!(a.col(1), vec![Gf256::from_u64(2), Gf256::from_u64(5)]);
        assert!(!a.is_square());
        assert!(Matrix::<Gf256>::identity(4).is_square());
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = Matrix::<Gf256>::from_vec(2, 2, vec![Gf256::ZERO; 3]).unwrap_err();
        assert!(matches!(err, MatrixError::DimensionMismatch { .. }));
        assert!(err.to_string().contains("2x2"));
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        let rows = vec![vec![Gf256::ZERO; 2], vec![Gf256::ZERO; 3]];
        assert!(matches!(
            Matrix::from_rows(&rows),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = m(3, 3, &[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        let i = Matrix::<Gf256>::identity(3);
        assert_eq!(a.mul_mat(&i).unwrap(), a);
        assert_eq!(i.mul_mat(&a).unwrap(), a);
    }

    #[test]
    fn mul_vec_matches_mul_mat_with_column() {
        let a = m(2, 3, &[1, 2, 3, 4, 5, 6]);
        let v = vec![Gf256::from_u64(7), Gf256::from_u64(8), Gf256::from_u64(9)];
        let col = Matrix::from_vec(3, 1, v.clone()).unwrap();
        let prod = a.mul_mat(&col).unwrap();
        assert_eq!(a.mul_vec(&v).unwrap(), prod.col(0));
    }

    #[test]
    fn mul_shape_mismatch_errors() {
        let a = m(2, 3, &[0; 6]);
        let b = m(2, 3, &[0; 6]);
        assert!(matches!(a.mul_mat(&b), Err(MatrixError::ShapeMismatch { .. })));
        assert!(matches!(
            a.mul_vec(&[Gf256::ZERO; 2]),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), a.get(1, 2));
    }

    #[test]
    fn selection_and_submatrix() {
        let a = m(3, 3, &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let rows = a.select_rows(&[2, 0]).unwrap();
        assert_eq!(rows.row(0), a.row(2));
        assert_eq!(rows.row(1), a.row(0));
        let cols = a.select_cols(&[1]).unwrap();
        assert_eq!(cols.col(0), a.col(1));
        let sub = a.submatrix(&[0, 2], &[0, 2]).unwrap();
        assert_eq!(sub, m(2, 2, &[1, 3, 7, 9]));
        assert!(matches!(
            a.select_rows(&[5]),
            Err(MatrixError::IndexOutOfRange { index: 5, bound: 3 })
        ));
        assert!(matches!(
            a.select_cols(&[9]),
            Err(MatrixError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn stack_and_augment() {
        let a = m(1, 2, &[1, 2]);
        let b = m(1, 2, &[3, 4]);
        assert_eq!(a.stack(&b).unwrap(), m(2, 2, &[1, 2, 3, 4]));
        assert_eq!(a.augment(&b).unwrap(), m(1, 4, &[1, 2, 3, 4]));
        let c = m(2, 1, &[9, 9]);
        assert!(a.stack(&c).is_err());
        assert!(a.augment(&c).is_err());
    }

    #[test]
    fn swap_and_row_operations() {
        let mut a = m(2, 2, &[1, 2, 3, 4]);
        a.swap_rows(0, 1);
        assert_eq!(a, m(2, 2, &[3, 4, 1, 2]));
        a.swap_rows(1, 1);
        assert_eq!(a, m(2, 2, &[3, 4, 1, 2]));
        a.scale_row(0, Gf256::from_u64(2));
        assert_eq!(a.row(0), &[Gf256::from_u64(6), Gf256::from_u64(8)]);
        let before = a.clone();
        a.add_scaled_row(1, 0, Gf256::ZERO);
        assert_eq!(a, before);
        a.add_scaled_row(1, 0, Gf256::ONE);
        assert_eq!(a.get(1, 0), before.get(1, 0) + before.get(0, 0));
    }

    #[test]
    fn display_contains_shape_and_entries() {
        let a = m(2, 2, &[1, 2, 3, 4]);
        let s = format!("{a}");
        assert!(s.contains("2x2"));
        assert!(s.contains('4'));
    }

    #[test]
    fn zeros_and_is_zero() {
        assert!(Matrix::<Gf256>::zeros(3, 4).is_zero());
        assert!(!Matrix::<Gf256>::identity(2).is_zero());
    }
}
