//! Dense linear algebra over binary extension fields.
//!
//! This crate is the algebraic substrate of the SEC erasure-coding stack:
//! generator matrices, Gaussian elimination, rank and invertibility checks,
//! and the structured matrix families (Cauchy, Vandermonde) the paper uses to
//! build MDS codes satisfying its two design criteria:
//!
//! * **Criterion 1** — at least one `k × k` submatrix of the generator is
//!   invertible, so full (non-sparse) objects can be decoded from any `k`
//!   surviving coded symbols.
//! * **Criterion 2** — for every sparsity level `γ < k/2` there is a
//!   `2γ × k` submatrix in which *every* choice of `2γ` columns is linearly
//!   independent, so a `γ`-sparse delta is uniquely recoverable from just `2γ`
//!   coded symbols (Proposition 1 of the paper).
//!
//! The [`checks`] module provides direct verifiers for both criteria; the
//! [`cauchy`] module builds matrices that satisfy them by construction
//! (every square submatrix of a Cauchy matrix is invertible).
//!
//! # Example
//!
//! ```rust
//! use sec_gf::Gf256;
//! use sec_linalg::{cauchy::cauchy_matrix, checks, Matrix};
//!
//! // A (6, 3) non-systematic generator from a Cauchy matrix.
//! let g: Matrix<Gf256> = cauchy_matrix(6, 3).expect("field is large enough");
//! assert!(checks::has_invertible_k_submatrix(&g));
//! assert!(checks::all_columns_independent(&g.select_rows(&[0, 1]).unwrap()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

mod matrix;

pub mod cauchy;
pub mod checks;
pub mod combinatorics;
pub mod ops;
pub mod vandermonde;

pub use matrix::{Matrix, MatrixError};

#[cfg(test)]
mod proptests;
