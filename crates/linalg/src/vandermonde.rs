//! Vandermonde matrices — the classical alternative MDS construction, used by
//! the benches to compare against the Cauchy construction and by tests as an
//! independent source of Criterion-2-satisfying submatrices.
//!
//! A Vandermonde matrix `V[i][j] = x_i^j` with distinct evaluation points
//! `x_i` has every *maximal* square submatrix (any `k` rows of an `n × k`
//! matrix) invertible, so it is MDS as a generator. Unlike a Cauchy matrix,
//! *arbitrary* square submatrices are not guaranteed invertible, which is why
//! the paper prefers Cauchy matrices for SEC's Criterion 2.

use sec_gf::GaloisField;

use crate::cauchy::CauchyError;
use crate::Matrix;

/// Builds the `n × k` Vandermonde matrix `V[i][j] = x_i^j` from explicit,
/// distinct evaluation points.
///
/// # Errors
///
/// Returns [`CauchyError::InvalidPoints`] if the points are not distinct.
pub fn vandermonde_from_points<F: GaloisField>(
    points: &[F],
    k: usize,
) -> Result<Matrix<F>, CauchyError> {
    for (i, &a) in points.iter().enumerate() {
        if points[i + 1..].contains(&a) {
            return Err(CauchyError::InvalidPoints);
        }
    }
    Ok(Matrix::from_fn(points.len(), k, |i, j| points[i].pow(j as u64)))
}

/// Builds an `n × k` Vandermonde matrix with the canonical evaluation points
/// `0, 1, 2, …, n-1`.
///
/// # Errors
///
/// Returns [`CauchyError::FieldTooSmall`] when `n > q`.
pub fn vandermonde_matrix<F: GaloisField>(n: usize, k: usize) -> Result<Matrix<F>, CauchyError> {
    if n as u64 > F::ORDER {
        return Err(CauchyError::FieldTooSmall {
            rows: n,
            cols: k,
            field_order: F::ORDER,
        });
    }
    let points: Vec<F> = (0..n as u64).map(F::from_u64).collect();
    vandermonde_from_points(&points, k)
}

/// Closed-form determinant of a square Vandermonde matrix:
/// `Π_{i < j} (x_j - x_i)`.
pub fn vandermonde_determinant<F: GaloisField>(points: &[F]) -> F {
    let mut acc = F::ONE;
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            acc *= points[j] - points[i];
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinatorics::combinations;
    use crate::ops;
    use sec_gf::{GaloisField, Gf16, Gf256};

    #[test]
    fn shape_and_entries() {
        let v: Matrix<Gf256> = vandermonde_matrix(5, 3).unwrap();
        assert_eq!(v.shape(), (5, 3));
        let x = Gf256::from_u64(3);
        assert_eq!(v.get(3, 0), Gf256::ONE);
        assert_eq!(v.get(3, 1), x);
        assert_eq!(v.get(3, 2), x * x);
    }

    #[test]
    fn any_k_rows_are_invertible() {
        let v: Matrix<Gf16> = vandermonde_matrix(8, 4).unwrap();
        for rows in combinations(8, 4) {
            let sub = v.select_rows(&rows).unwrap();
            assert!(ops::is_invertible(&sub), "rows {rows:?} gave a singular matrix");
        }
    }

    #[test]
    fn determinant_closed_form_matches_elimination() {
        let points: Vec<Gf256> = [2u64, 5, 9, 77].iter().map(|&v| Gf256::from_u64(v)).collect();
        let v = vandermonde_from_points(&points, 4).unwrap();
        assert_eq!(ops::determinant(&v).unwrap(), vandermonde_determinant(&points));
    }

    #[test]
    fn duplicate_points_rejected() {
        let p = [Gf256::from_u64(1), Gf256::from_u64(1)];
        assert_eq!(
            vandermonde_from_points(&p, 2).unwrap_err(),
            CauchyError::InvalidPoints
        );
    }

    #[test]
    fn field_too_small_rejected() {
        assert!(matches!(
            vandermonde_matrix::<Gf16>(17, 3),
            Err(CauchyError::FieldTooSmall { .. })
        ));
        assert!(vandermonde_matrix::<Gf16>(16, 3).is_ok());
    }

    #[test]
    fn not_every_square_submatrix_is_invertible() {
        // Documents why Cauchy is preferred for Criterion 2: a Vandermonde
        // matrix that includes the zero evaluation point has singular proper
        // submatrices (e.g. the 1x1 submatrix picking row of point 0, col 1).
        let v: Matrix<Gf256> = vandermonde_matrix(4, 3).unwrap();
        let sub = v.submatrix(&[0], &[1]).unwrap();
        assert!(!ops::is_invertible(&sub));
    }
}
