//! Gaussian elimination and the operations built on it: reduced row-echelon
//! form, rank, determinant, inversion and linear solves.

use sec_gf::GaloisField;

use crate::{Matrix, MatrixError};

/// Result of running Gauss-Jordan elimination on a matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Echelon<F> {
    /// The reduced row-echelon form.
    pub rref: Matrix<F>,
    /// Column index of the pivot in each pivot row, in order.
    pub pivot_cols: Vec<usize>,
    /// Rank of the original matrix (number of pivots).
    pub rank: usize,
}

/// Computes the reduced row-echelon form of `m` together with its rank and
/// pivot columns.
pub fn rref<F: GaloisField>(m: &Matrix<F>) -> Echelon<F> {
    let mut a = m.clone();
    let (rows, cols) = a.shape();
    let mut pivot_cols = Vec::new();
    let mut pivot_row = 0usize;

    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        // Find a non-zero pivot in this column at or below pivot_row.
        let Some(src) = (pivot_row..rows).find(|&r| !a.get(r, col).is_zero()) else {
            continue;
        };
        a.swap_rows(pivot_row, src);
        let inv = a.get(pivot_row, col).inv().expect("pivot chosen to be non-zero");
        a.scale_row(pivot_row, inv);
        for r in 0..rows {
            if r != pivot_row {
                let factor = a.get(r, col);
                // Subtraction equals addition in characteristic 2.
                a.add_scaled_row(r, pivot_row, factor);
            }
        }
        pivot_cols.push(col);
        pivot_row += 1;
    }

    Echelon {
        rank: pivot_cols.len(),
        rref: a,
        pivot_cols,
    }
}

/// Rank of the matrix.
pub fn rank<F: GaloisField>(m: &Matrix<F>) -> usize {
    rref(m).rank
}

/// `true` when a square matrix has full rank (equivalently, is invertible).
/// Rectangular matrices return `false`.
pub fn is_invertible<F: GaloisField>(m: &Matrix<F>) -> bool {
    m.is_square() && rank(m) == m.rows()
}

/// `true` when the matrix has full rank `min(rows, cols)`.
pub fn is_full_rank<F: GaloisField>(m: &Matrix<F>) -> bool {
    rank(m) == m.rows().min(m.cols())
}

/// Determinant of a square matrix.
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] for rectangular input.
pub fn determinant<F: GaloisField>(m: &Matrix<F>) -> Result<F, MatrixError> {
    if !m.is_square() {
        return Err(MatrixError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    // Plain Gaussian elimination to upper-triangular form. Row swaps flip the
    // determinant's sign, but -1 = 1 in characteristic 2 so we can ignore them.
    let mut a = m.clone();
    let n = a.rows();
    let mut det = F::ONE;
    for col in 0..n {
        let Some(src) = (col..n).find(|&r| !a.get(r, col).is_zero()) else {
            return Ok(F::ZERO);
        };
        a.swap_rows(col, src);
        let pivot = a.get(col, col);
        det *= pivot;
        let inv = pivot.inv().expect("pivot is non-zero");
        for r in col + 1..n {
            let factor = a.get(r, col) * inv;
            a.add_scaled_row(r, col, factor);
        }
    }
    Ok(det)
}

/// Inverse of a square matrix.
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] for rectangular input and
/// [`MatrixError::Singular`] when no inverse exists.
pub fn invert<F: GaloisField>(m: &Matrix<F>) -> Result<Matrix<F>, MatrixError> {
    if !m.is_square() {
        return Err(MatrixError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    let n = m.rows();
    let augmented = m.augment(&Matrix::identity(n))?;
    let ech = rref(&augmented);
    if ech.rank < n || ech.pivot_cols.iter().take(n).enumerate().any(|(i, &c)| c != i) {
        return Err(MatrixError::Singular);
    }
    let right_cols: Vec<usize> = (n..2 * n).collect();
    ech.rref.select_cols(&right_cols)
}

/// Solves the linear system `a * x = b` for `x` when `a` is square and
/// invertible.
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`], [`MatrixError::Singular`] or
/// [`MatrixError::ShapeMismatch`] as appropriate.
pub fn solve<F: GaloisField>(a: &Matrix<F>, b: &[F]) -> Result<Vec<F>, MatrixError> {
    if b.len() != a.rows() {
        return Err(MatrixError::ShapeMismatch {
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let inv = invert(a)?;
    inv.mul_vec(b)
}

/// Solves a (possibly overdetermined) consistent system `a * x = b` by
/// Gauss-Jordan elimination on the augmented matrix, returning `None` when the
/// system is inconsistent or underdetermined.
///
/// The SEC sparse decoder uses this for recovering the non-zero delta entries
/// from an overdetermined set of `2γ` equations restricted to a candidate
/// support of size at most `γ`.
pub fn solve_consistent<F: GaloisField>(a: &Matrix<F>, b: &[F]) -> Option<Vec<F>> {
    if b.len() != a.rows() {
        return None;
    }
    let bcol = Matrix::from_vec(b.len(), 1, b.to_vec()).ok()?;
    let aug = a.augment(&bcol).ok()?;
    let ech = rref(&aug);
    let n = a.cols();
    // Inconsistent if some pivot lies in the augmented column.
    if ech.pivot_cols.contains(&n) {
        return None;
    }
    // Underdetermined if fewer pivots than unknowns.
    if ech.rank < n {
        return None;
    }
    let mut x = vec![F::ZERO; n];
    for (row, &col) in ech.pivot_cols.iter().enumerate() {
        x[col] = ech.rref.get(row, n);
    }
    Some(x)
}

/// Null-space basis of `m` as the rows of the returned matrix (may be empty).
///
/// Used by tests to verify Criterion-2 style independence claims: a set of
/// columns is linearly independent exactly when the corresponding restricted
/// map has a trivial null space.
pub fn null_space<F: GaloisField>(m: &Matrix<F>) -> Matrix<F> {
    let ech = rref(m);
    let n = m.cols();
    let pivots = &ech.pivot_cols;
    let free_cols: Vec<usize> = (0..n).filter(|c| !pivots.contains(c)).collect();
    let mut basis_rows: Vec<Vec<F>> = Vec::with_capacity(free_cols.len());
    for &free in &free_cols {
        let mut v = vec![F::ZERO; n];
        v[free] = F::ONE;
        for (row, &pc) in pivots.iter().enumerate() {
            // x_pc = -sum(free coefficients) = sum in char 2.
            v[pc] = ech.rref.get(row, free);
        }
        basis_rows.push(v);
    }
    if basis_rows.is_empty() {
        Matrix::zeros(0, n)
    } else {
        Matrix::from_rows(&basis_rows).expect("rows built with equal length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gf::{GaloisField, Gf16, Gf256};

    fn m(rows: usize, cols: usize, vals: &[u64]) -> Matrix<Gf256> {
        Matrix::from_vec(rows, cols, vals.iter().map(|&v| Gf256::from_u64(v)).collect()).unwrap()
    }

    #[test]
    fn rref_of_identity_is_identity() {
        let i = Matrix::<Gf256>::identity(4);
        let e = rref(&i);
        assert_eq!(e.rref, i);
        assert_eq!(e.rank, 4);
        assert_eq!(e.pivot_cols, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rank_detects_dependent_rows() {
        // Third row is the sum of the first two (char 2).
        let a = m(3, 3, &[1, 2, 3, 4, 5, 6, 1 ^ 4, 2 ^ 5, 3 ^ 6]);
        assert_eq!(rank(&a), 2);
        assert!(!is_invertible(&a));
        assert!(!is_full_rank(&a));
        assert_eq!(determinant(&a).unwrap(), Gf256::ZERO);
    }

    #[test]
    fn invert_round_trips() {
        let a = m(3, 3, &[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        let inv = invert(&a).unwrap();
        assert_eq!(a.mul_mat(&inv).unwrap(), Matrix::identity(3));
        assert_eq!(inv.mul_mat(&a).unwrap(), Matrix::identity(3));
    }

    #[test]
    fn invert_rejects_singular_and_rectangular() {
        let singular = m(2, 2, &[1, 1, 1, 1]);
        assert_eq!(invert(&singular).unwrap_err(), MatrixError::Singular);
        let rect = m(2, 3, &[0; 6]);
        assert!(matches!(invert(&rect), Err(MatrixError::NotSquare { .. })));
        assert!(matches!(determinant(&rect), Err(MatrixError::NotSquare { .. })));
    }

    #[test]
    fn determinant_multiplicative() {
        let a = m(3, 3, &[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        let b = m(3, 3, &[2, 0, 1, 1, 1, 0, 5, 3, 8]);
        let ab = a.mul_mat(&b).unwrap();
        assert_eq!(
            determinant(&ab).unwrap(),
            determinant(&a).unwrap() * determinant(&b).unwrap()
        );
    }

    #[test]
    fn determinant_of_identity_and_diagonal() {
        assert_eq!(determinant(&Matrix::<Gf256>::identity(5)).unwrap(), Gf256::ONE);
        let d = Matrix::<Gf256>::from_fn(3, 3, |r, c| {
            if r == c {
                Gf256::from_u64((r + 2) as u64)
            } else {
                Gf256::ZERO
            }
        });
        assert_eq!(
            determinant(&d).unwrap(),
            Gf256::from_u64(2) * Gf256::from_u64(3) * Gf256::from_u64(4)
        );
    }

    #[test]
    fn solve_recovers_known_vector() {
        let a = m(3, 3, &[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        let x: Vec<Gf256> = [9u64, 0, 7].iter().map(|&v| Gf256::from_u64(v)).collect();
        let b = a.mul_vec(&x).unwrap();
        assert_eq!(solve(&a, &b).unwrap(), x);
        assert!(matches!(
            solve(&a, &[Gf256::ZERO; 2]),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn solve_consistent_overdetermined() {
        // 4 equations, 2 unknowns, consistent by construction.
        let a = m(4, 2, &[1, 2, 3, 4, 5, 6, 7, 9]);
        let x = vec![Gf256::from_u64(11), Gf256::from_u64(5)];
        let b = a.mul_vec(&x).unwrap();
        assert_eq!(solve_consistent(&a, &b), Some(x));
        // Perturbing one equation makes it inconsistent.
        let mut bad = b.clone();
        bad[0] += Gf256::ONE;
        assert_eq!(solve_consistent(&a, &bad), None);
        // Wrong-length RHS is rejected.
        assert_eq!(solve_consistent(&a, &b[..3]), None);
    }

    #[test]
    fn solve_consistent_rejects_underdetermined() {
        let a = m(1, 2, &[1, 1]);
        assert_eq!(solve_consistent(&a, &[Gf256::from_u64(3)]), None);
    }

    #[test]
    fn null_space_dimension_matches_rank_nullity() {
        let a = m(3, 3, &[1, 2, 3, 4, 5, 6, 1 ^ 4, 2 ^ 5, 3 ^ 6]);
        let ns = null_space(&a);
        assert_eq!(ns.rows(), 3 - rank(&a));
        // Every basis vector is in the kernel.
        for r in 0..ns.rows() {
            let v = ns.row(r).to_vec();
            assert!(a.mul_vec(&v).unwrap().iter().all(|c| c.is_zero()));
        }
        // Full-rank matrix has empty null space.
        assert_eq!(null_space(&Matrix::<Gf256>::identity(3)).rows(), 0);
    }

    #[test]
    fn small_field_exhaustive_invertibility() {
        // Over GF(16), check that invert() agrees with determinant() != 0 for
        // a sample of 2x2 matrices.
        let mut checked = 0;
        for a in 0..16u64 {
            for b in (0..16u64).step_by(3) {
                for c in (0..16u64).step_by(5) {
                    for d in 0..16u64 {
                        let m = Matrix::<Gf16>::from_vec(
                            2,
                            2,
                            vec![
                                Gf16::from_u64(a),
                                Gf16::from_u64(b),
                                Gf16::from_u64(c),
                                Gf16::from_u64(d),
                            ],
                        )
                        .unwrap();
                        let det = determinant(&m).unwrap();
                        assert_eq!(invert(&m).is_ok(), !det.is_zero());
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 1000);
    }
}
