//! Property-based tests for the linear-algebra layer.

use proptest::prelude::*;

use sec_gf::{GaloisField, Gf256};

use crate::cauchy::cauchy_from_points;
use crate::{ops, Matrix};

fn gf256() -> impl Strategy<Value = Gf256> {
    (0u64..256).prop_map(Gf256::from_u64)
}

fn matrix(
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
) -> impl Strategy<Value = Matrix<Gf256>> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(gf256(), r * c).prop_map(move |data| {
            Matrix::from_vec(r, c, data).expect("generated data has matching length")
        })
    })
}

fn square_matrix(max: usize) -> impl Strategy<Value = Matrix<Gf256>> {
    (1..=max).prop_flat_map(|n| {
        prop::collection::vec(gf256(), n * n).prop_map(move |data| {
            Matrix::from_vec(n, n, data).expect("generated data has matching length")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in matrix(1..6, 1..6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matrix_multiplication_is_associative(
        a in matrix(1..4, 1..4),
        bdata in prop::collection::vec(gf256(), 16),
        cdata in prop::collection::vec(gf256(), 16),
    ) {
        // Shape-compatible chain: (r x c) * (c x d) * (d x e)
        let c_dim = a.cols();
        let d_dim = 1 + bdata.len() % 3;
        let e_dim = 1 + cdata.len() % 3;
        let b = Matrix::from_vec(c_dim, d_dim, bdata.into_iter().cycle().take(c_dim * d_dim).collect()).unwrap();
        let c = Matrix::from_vec(d_dim, e_dim, cdata.into_iter().cycle().take(d_dim * e_dim).collect()).unwrap();
        let left = a.mul_mat(&b).unwrap().mul_mat(&c).unwrap();
        let right = a.mul_mat(&b.mul_mat(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn rank_bounded_and_transpose_invariant(m in matrix(1..7, 1..7)) {
        let r = ops::rank(&m);
        prop_assert!(r <= m.rows().min(m.cols()));
        prop_assert_eq!(r, ops::rank(&m.transpose()));
    }

    #[test]
    fn rref_has_rank_many_pivots(m in matrix(1..6, 1..6)) {
        let e = ops::rref(&m);
        prop_assert_eq!(e.pivot_cols.len(), e.rank);
        // Pivot columns are strictly increasing and each pivot entry is one.
        for w in e.pivot_cols.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for (row, &col) in e.pivot_cols.iter().enumerate() {
            prop_assert_eq!(e.rref.get(row, col), Gf256::ONE);
        }
    }

    #[test]
    fn inverse_multiplies_to_identity(m in square_matrix(5)) {
        match ops::invert(&m) {
            Ok(inv) => {
                prop_assert_eq!(m.mul_mat(&inv).unwrap(), Matrix::identity(m.rows()));
                prop_assert_eq!(inv.mul_mat(&m).unwrap(), Matrix::identity(m.rows()));
                prop_assert!(!ops::determinant(&m).unwrap().is_zero());
            }
            Err(_) => {
                prop_assert_eq!(ops::determinant(&m).unwrap(), Gf256::ZERO);
            }
        }
    }

    #[test]
    fn solve_round_trips_through_mul(m in square_matrix(5), xs in prop::collection::vec(gf256(), 5)) {
        prop_assume!(ops::is_invertible(&m));
        let x: Vec<Gf256> = xs.into_iter().cycle().take(m.rows()).collect();
        let b = m.mul_vec(&x).unwrap();
        prop_assert_eq!(ops::solve(&m, &b).unwrap(), x);
    }

    #[test]
    fn null_space_vectors_are_in_kernel(m in matrix(1..6, 1..6)) {
        let ns = ops::null_space(&m);
        prop_assert_eq!(ns.rows(), m.cols() - ops::rank(&m));
        for r in 0..ns.rows() {
            let v = ns.row(r).to_vec();
            prop_assert!(m.mul_vec(&v).unwrap().iter().all(|c| c.is_zero()));
        }
    }

    #[test]
    fn random_cauchy_matrices_are_superregular(
        perm_seed in 0u64..1_000_000,
    ) {
        // Draw 4 + 3 distinct points pseudo-randomly from the seed.
        let mut points: Vec<u64> = (0..256).collect();
        // Simple deterministic shuffle driven by the seed (no RNG dependency here).
        let mut s = perm_seed;
        for i in (1..points.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s % (i as u64 + 1)) as usize;
            points.swap(i, j);
        }
        let h: Vec<Gf256> = points[..4].iter().map(|&v| Gf256::from_u64(v)).collect();
        let f: Vec<Gf256> = points[4..7].iter().map(|&v| Gf256::from_u64(v)).collect();
        let m = cauchy_from_points(&h, &f).unwrap();
        prop_assert!(crate::checks::is_superregular(&m));
    }
}
