//! Verifiers for the SEC design criteria and related structural properties of
//! generator matrices.
//!
//! These checks are exhaustive (they enumerate subsets), so they are intended
//! for code-design time and for tests — not for per-request hot paths. The
//! paper's parameters (`n ≤ 20`, `k ≤ 10`, `γ < k/2`) are comfortably within
//! range.

use sec_gf::GaloisField;

use crate::combinatorics::Combinations;
use crate::{ops, Matrix};

/// `true` if every set of `size` columns of `m` is linearly independent.
///
/// For a `2γ × k` matrix with `size = 2γ` this is exactly the hypothesis of
/// Proposition 1 of the paper (unique recovery of γ-sparse vectors).
pub fn columns_independent<F: GaloisField>(m: &Matrix<F>, size: usize) -> bool {
    if size > m.rows() || size > m.cols() {
        return false;
    }
    Combinations::new(m.cols(), size).all(|cols| {
        let sub = m.select_cols(&cols).expect("indices generated in range");
        ops::rank(&sub) == size
    })
}

/// `true` if *all* `min(rows, cols)`-column subsets of `m` are linearly
/// independent; for a `2γ × k` matrix (with `2γ ≤ k`) this is the Criterion-2
/// property of that submatrix.
pub fn all_columns_independent<F: GaloisField>(m: &Matrix<F>) -> bool {
    columns_independent(m, m.rows().min(m.cols()))
}

/// **Criterion 1**: does `g` (an `n × k` generator, `n ≥ k`) contain at least
/// one invertible `k × k` row-submatrix?
pub fn has_invertible_k_submatrix<F: GaloisField>(g: &Matrix<F>) -> bool {
    let k = g.cols();
    if g.rows() < k {
        return false;
    }
    // Rank k is equivalent to the existence of k linearly independent rows.
    ops::rank(g) == k
}

/// **Criterion 2** for one sparsity level: does `g` contain at least one
/// `2γ × k` row-submatrix in which every `2γ` columns are linearly
/// independent?
///
/// Returns the first satisfying row set found (in lexicographic order), or
/// `None` if none exists.
pub fn find_criterion2_rows<F: GaloisField>(g: &Matrix<F>, gamma: usize) -> Option<Vec<usize>> {
    let needed = 2 * gamma;
    if needed == 0 || needed > g.rows() || needed > g.cols() {
        return None;
    }
    Combinations::new(g.rows(), needed).find(|rows| {
        let sub = g.select_rows(rows).expect("indices generated in range");
        all_columns_independent(&sub)
    })
}

/// **Criterion 2** for one sparsity level, as a boolean.
pub fn satisfies_criterion2<F: GaloisField>(g: &Matrix<F>, gamma: usize) -> bool {
    find_criterion2_rows(g, gamma).is_some()
}

/// Counts how many `2γ`-row subsets of `g` satisfy the Criterion-2 column
/// independence property.
///
/// The paper's §V-A example: for the (6,3) code with γ = 1, **all 15** of the
/// 2-row subsets of the non-systematic Cauchy generator qualify, but only
/// **3** subsets of the systematic generator do.
pub fn count_criterion2_subsets<F: GaloisField>(g: &Matrix<F>, gamma: usize) -> usize {
    let needed = 2 * gamma;
    if needed == 0 || needed > g.rows() || needed > g.cols() {
        return 0;
    }
    Combinations::new(g.rows(), needed)
        .filter(|rows| {
            let sub = g.select_rows(rows).expect("indices generated in range");
            all_columns_independent(&sub)
        })
        .count()
}

/// All `k`-row subsets of `g` that form an invertible `k × k` matrix.
///
/// Used by the storage simulator to enumerate which surviving-node sets can
/// decode a fully-encoded object.
pub fn invertible_k_subsets<F: GaloisField>(g: &Matrix<F>) -> Vec<Vec<usize>> {
    let k = g.cols();
    if g.rows() < k {
        return Vec::new();
    }
    Combinations::new(g.rows(), k)
        .filter(|rows| {
            let sub = g.select_rows(rows).expect("indices generated in range");
            ops::is_invertible(&sub)
        })
        .collect()
}

/// `true` if the `n × k` generator is MDS: every `k`-row submatrix is
/// invertible, i.e. the code tolerates any `n - k` erasures.
pub fn is_mds<F: GaloisField>(g: &Matrix<F>) -> bool {
    let k = g.cols();
    if g.rows() < k {
        return false;
    }
    Combinations::new(g.rows(), k).all(|rows| {
        let sub = g.select_rows(&rows).expect("indices generated in range");
        ops::is_invertible(&sub)
    })
}

/// `true` if every square submatrix of `m` (of every size) is invertible —
/// the "superregular" property that Cauchy matrices enjoy.
///
/// Exponential in the matrix size; use only on small matrices in tests.
pub fn is_superregular<F: GaloisField>(m: &Matrix<F>) -> bool {
    let max = m.rows().min(m.cols());
    for size in 1..=max {
        for rows in Combinations::new(m.rows(), size) {
            for cols in Combinations::new(m.cols(), size) {
                let sub = m.submatrix(&rows, &cols).expect("indices generated in range");
                if !ops::is_invertible(&sub) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cauchy::{cauchy_matrix, cauchy_parity_block};
    use crate::combinatorics::binomial_exact;
    use crate::vandermonde::vandermonde_matrix;
    use sec_gf::{GaloisField, Gf1024, Gf16, Gf256};

    fn systematic_gen<F: GaloisField>(n: usize, k: usize) -> Matrix<F> {
        let b = cauchy_parity_block::<F>(n, k).unwrap();
        Matrix::identity(k).stack(&b).unwrap()
    }

    #[test]
    fn cauchy_generator_is_mds_and_superregular() {
        let g: Matrix<Gf256> = cauchy_matrix(6, 3).unwrap();
        assert!(is_mds(&g));
        assert!(is_superregular(&g));
        assert!(has_invertible_k_submatrix(&g));
    }

    #[test]
    fn systematic_cauchy_generator_is_mds_but_not_superregular() {
        let g: Matrix<Gf256> = systematic_gen(6, 3);
        assert!(is_mds(&g));
        // The identity block contains zero entries, hence singular 1x1 submatrices.
        assert!(!is_superregular(&g));
        assert!(has_invertible_k_submatrix(&g));
    }

    #[test]
    fn criterion2_subset_counts_match_paper_section_v() {
        // Paper §V-A, (6,3) code, γ = 1: non-systematic Cauchy generator has
        // all C(6,2) = 15 two-row subsets satisfying Criterion 2; the
        // systematic generator has only 3 (the ones drawn from the parity
        // block B).
        let gn: Matrix<Gf1024> = cauchy_matrix(6, 3).unwrap();
        assert_eq!(count_criterion2_subsets(&gn, 1), 15);
        assert_eq!(binomial_exact(6, 2), 15);

        let gs: Matrix<Gf1024> = systematic_gen(6, 3);
        assert_eq!(count_criterion2_subsets(&gs, 1), 3);
    }

    #[test]
    fn find_criterion2_rows_returns_valid_subset() {
        let g: Matrix<Gf256> = cauchy_matrix(10, 5).unwrap();
        for gamma in 1..=2usize {
            let rows = find_criterion2_rows(&g, gamma).expect("cauchy generator satisfies criterion 2");
            assert_eq!(rows.len(), 2 * gamma);
            let sub = g.select_rows(&rows).unwrap();
            assert!(all_columns_independent(&sub));
        }
        // γ = 0 and oversized γ are rejected.
        assert!(find_criterion2_rows(&g, 0).is_none());
        assert!(find_criterion2_rows(&g, 6).is_none());
    }

    #[test]
    fn systematic_identity_rows_fail_column_independence() {
        // Any two rows from the identity block have a zero 2x2 submatrix.
        let gs: Matrix<Gf256> = systematic_gen(6, 3);
        let ident_rows = gs.select_rows(&[0, 1]).unwrap();
        assert!(!all_columns_independent(&ident_rows));
        // While two parity rows succeed.
        let parity_rows = gs.select_rows(&[3, 4]).unwrap();
        assert!(all_columns_independent(&parity_rows));
    }

    #[test]
    fn columns_independent_size_handling() {
        let g: Matrix<Gf256> = cauchy_matrix(4, 3).unwrap();
        assert!(columns_independent(&g, 3));
        assert!(!columns_independent(&g, 4)); // larger than cols
        let two_rows = g.select_rows(&[0, 1]).unwrap();
        assert!(!columns_independent(&two_rows, 3)); // larger than rows
        assert!(columns_independent(&two_rows, 2));
    }

    #[test]
    fn invertible_k_subsets_counts_for_mds() {
        let g: Matrix<Gf256> = cauchy_matrix(6, 3).unwrap();
        // MDS: all C(6,3) = 20 subsets decode.
        assert_eq!(invertible_k_subsets(&g).len(), 20);
        let gs: Matrix<Gf256> = systematic_gen(6, 3);
        assert_eq!(invertible_k_subsets(&gs).len(), 20);
    }

    #[test]
    fn vandermonde_is_mds_but_not_superregular() {
        let v: Matrix<Gf16> = vandermonde_matrix(6, 3).unwrap();
        assert!(is_mds(&v));
        assert!(!is_superregular(&v));
    }

    #[test]
    fn short_wide_matrices_handled() {
        let g: Matrix<Gf256> = cauchy_matrix(2, 3).unwrap();
        assert!(!has_invertible_k_submatrix(&g));
        assert!(!is_mds(&g));
        assert!(invertible_k_subsets(&g).is_empty());
    }
}
