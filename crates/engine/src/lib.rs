//! The concurrent SEC serving layer.
//!
//! The whole point of Sparsity Exploiting Coding is that *reads are cheap*:
//! a `γ`-sparse delta costs `2γ` block reads instead of `k`, so a SEC
//! archive is a read-heavy serving system by design. The lower layers
//! (`sec-erasure`, `sec-versioning`, `sec-store`) expose retrieval through
//! `&self`, and this crate puts a long-lived engine on top of them:
//!
//! * [`SecEngine`] owns a `ByteVersionedArchive` behind an `RwLock` (shared
//!   for reads, exclusive only for appends and repairs) plus one `RwLock`'d
//!   storage node per codeword position — the *sharded lock* layout, so a
//!   retrieval locks exactly the nodes its read plan touches;
//! * read planning is **lock-free**: node liveness lives in an array of
//!   atomics outside the node locks, so planning a `2γ`-read sparse
//!   retrieval never contends with in-flight block reads;
//! * the node layout is **placement-generic** (§IV of the paper): every
//!   layer consults a shared [`Placement`] instead of assuming `node i ↔
//!   codeword position i`, so the same serving stack runs colocated (`n`
//!   shared nodes, the paper's resilience-optimal layout) or dispersed
//!   (`n` fresh nodes per stored entry, slabs appended on write without
//!   blocking in-flight readers) — under dispersed placement a node
//!   failure degrades exactly the one entry it hosts;
//! * an optional [`DeltaCache`] (shared-read LRU keyed by `(object,
//!   version)`) serves exact hits without touching a single node and lets
//!   nearby requests walk forward or backward from the *nearest* cached
//!   decoded base, paying only for the deltas in between;
//! * every I/O is accounted exactly as in the paper's model — the engine's
//!   read counts are bit-compatible with the single-threaded
//!   `ByteVersionedArchive` reference, which the concurrency test suite
//!   asserts under random failure patterns.
//!
//! # Example
//!
//! ```rust
//! use sec_engine::SecEngine;
//! use sec_erasure::GeneratorForm;
//! use sec_versioning::{ArchiveConfig, EncodingStrategy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)?;
//! let engine = SecEngine::new(config)?;
//!
//! let v1 = vec![7u8; 30];
//! let mut v2 = v1.clone();
//! v2[4] ^= 0x5A; // single-block edit: γ = 1
//! engine.append_version(&v1)?;
//! engine.append_version(&v2)?;
//!
//! // Retrieval takes `&self`: clone the engine into an `Arc` and serve
//! // any number of reader threads.
//! let r = engine.get_version(2)?;
//! assert_eq!(*r.data, v2);
//! assert_eq!(r.io_reads, 3 + 2); // k + 2γ block reads
//!
//! engine.fail_node(0)?;
//! engine.fail_node(5)?;
//! assert_eq!(*engine.get_version(2)?.data, v2); // MDS survives n−k failures
//! # Ok(())
//! # }
//! ```
//!
//! # Scaling out: [`SecCluster`]
//!
//! One engine serves one versioned object. A [`SecCluster`] hashes
//! [`ObjectId`]s across `S` independent shards — each with its own storage
//! nodes, liveness atomics and delta caches, all sharing a single set of
//! `GF(2^8)` multiplication tables — so independent objects append and
//! retrieve concurrently on different shards with zero shared locking:
//!
//! ```rust
//! use sec_engine::{ObjectId, SecCluster};
//! use sec_erasure::GeneratorForm;
//! use sec_versioning::{ArchiveConfig, EncodingStrategy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)?;
//! let cluster = SecCluster::new(config, 4)?;
//!
//! let wiki = ObjectId::from_name("wiki/Main_Page");
//! let v1 = vec![7u8; 30];
//! cluster.append_version(wiki, &v1)?;
//! assert_eq!(*cluster.get_version(wiki, 1)?.data, v1);
//!
//! // Failure injection is addressed as (shard, node) and is fallible: a
//! // typo'd address is an error, not a process abort.
//! let shard = cluster.shard_of(wiki);
//! cluster.fail_node(shard, 0)?;
//! assert!(cluster.fail_node(99, 0).is_err());
//! assert_eq!(*cluster.get_version(wiki, 1)?.data, v1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

mod cluster;
mod engine;
pub mod ordered;

pub use cluster::{ClusterError, ClusterMetrics, ObjectId, SecCluster, ShardMetrics};
pub use engine::{EngineMetrics, EnginePrefix, EngineRetrieval, SecEngine};
pub use sec_store::StoreError as EngineError;
// One source of truth for node placement: the engine and cluster consume
// `sec-store`'s `Placement` rather than growing a parallel notion of layout.
pub use sec_store::{Placement, PlacementStrategy};
pub use sec_versioning::{CacheStats, CheckpointPolicy, DeltaCache};
